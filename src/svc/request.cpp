#include "hslb/svc/request.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "hslb/common/numeric.hpp"

namespace hslb::svc {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kQueueFull:
      return "queue_full";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kShutdown:
      return "shutdown";
    case ErrorCode::kUnknownCase:
      return "unknown_case";
    case ErrorCode::kBadRequest:
      return "bad_request";
    case ErrorCode::kSolveFailed:
      return "solve_failed";
    case ErrorCode::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

const char* to_string(ServeLevel level) {
  switch (level) {
    case ServeLevel::kExact:
      return "exact";
    case ServeLevel::kStaleCache:
      return "stale-cache";
    case ServeLevel::kHeuristic:
      return "heuristic";
  }
  return "unknown";
}

std::string canonical_double(double value) {
  return common::shortest_double(value);
}

namespace {

/// Minimal JSON string escape for free-text fields (fault details carry
/// exception messages, which may contain quotes or backslashes).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void append_fit_options(std::ostringstream& os,
                        const perf::FitOptions& options) {
  os << "fit{c=" << canonical_double(options.c_min) << ','
     << canonical_double(options.c_max) << ",grid=" << options.c_grid
     << ",lm=" << options.lm_polish << ",ms=" << options.multistart
     << ",seed=" << options.seed << ",rel=" << options.relative_weighting
     << ",rob=" << options.robust_loss
     << ",huber=" << canonical_double(options.huber_delta) << '}';
}

}  // namespace

std::string canonical_key(const AllocationRequest& request) {
  std::ostringstream os;
  os << "case=" << request.case_name
     << ";layout=" << static_cast<int>(request.layout)
     << ";obj=" << core::to_string(request.objective)
     << ";N=" << request.total_nodes
     << ";tsync=" << canonical_double(request.tsync)
     << ";catm=" << request.constrain_atm
     << ";cocn=" << request.constrain_ocean << ";sos=" << request.use_sos
     << ";wall=" << canonical_double(request.max_wall_seconds)
     << ";nodes=" << request.max_nodes << ';';

  if (!request.fits.empty()) {
    // The solver consumes the fits; the fit options and samples are inert.
    os << "fits{";
    for (const auto& [kind, model] : request.fits) {  // std::map: key order
      const perf::PerfParams& p = model.params();
      os << cesm::to_string(kind) << ":a=" << canonical_double(p.a)
         << ",b=" << canonical_double(p.b) << ",c=" << canonical_double(p.c)
         << ",d=" << canonical_double(p.d) << ';';
    }
    os << '}';
    return os.str();
  }

  append_fit_options(os, request.fit_options);
  // Sample order is an artifact of how the campaign ran, not part of the
  // question: canonicalize by sorting before serialization.
  std::vector<cesm::BenchmarkSample> sorted = request.samples;
  std::sort(sorted.begin(), sorted.end(),
            [](const cesm::BenchmarkSample& a, const cesm::BenchmarkSample& b) {
              if (a.kind != b.kind) {
                return a.kind < b.kind;
              }
              if (a.nodes != b.nodes) {
                return a.nodes < b.nodes;
              }
              return a.seconds < b.seconds;
            });
  os << ";samples{";
  for (const cesm::BenchmarkSample& sample : sorted) {
    os << cesm::to_string(sample.kind) << ',' << sample.nodes << ','
       << canonical_double(sample.seconds) << ';';
  }
  os << '}';
  return os.str();
}

std::string to_json(const AllocationResponse& response) {
  std::ostringstream os;
  os << "{\"allocation\":{";
  bool first = true;
  for (const auto& [kind, nodes] : response.allocation.nodes) {
    if (!first) {
      os << ',';
    }
    first = false;
    os << '"' << cesm::to_string(kind) << "\":{\"nodes\":" << nodes
       << ",\"predicted_seconds\":"
       << canonical_double(response.allocation.predicted_seconds.at(kind))
       << '}';
  }
  os << "},\"predicted_total\":"
     << canonical_double(response.allocation.predicted_total)
     << ",\"tsync_used\":" << canonical_double(response.tsync_used)
     << ",\"solver_status\":\"" << minlp::to_string(response.solver_status)
     << "\",\"nodes_explored\":" << response.nodes_explored
     << ",\"degraded\":" << (response.degraded ? "true" : "false");
  // Ladder provenance only serializes on the brownout rungs, so exact
  // answers (the chaos-off universe) stay byte-identical to the pre-ladder
  // format.
  if (response.served != ServeLevel::kExact) {
    os << ",\"served\":\"" << to_string(response.served) << "\",\"fault\":\""
       << json_escape(response.fault_detail) << '"';
  }
  // Scenario-case payload, appended only when populated for the same
  // byte-identity reason.
  if (!response.scenario_nodes.empty()) {
    os << ",\"scenario\":{\"objective\":"
       << canonical_double(response.scenario_objective) << ",\"nodes\":{";
    bool first_comp = true;
    for (const auto& [name, nodes] : response.scenario_nodes) {
      if (!first_comp) {
        os << ',';
      }
      first_comp = false;
      os << '"' << json_escape(name) << "\":" << nodes;
    }
    os << "}}";
  }
  os << '}';
  return os.str();
}

std::uint64_t response_checksum(const AllocationResponse& response) {
  const std::string bytes = to_json(response);
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace hslb::svc
