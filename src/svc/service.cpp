#include "hslb/svc/service.hpp"

#include <utility>

#include "hslb/common/error.hpp"
#include "hslb/hslb/pipeline.hpp"

namespace hslb::svc {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// An already-resolved future for answers that never touch the queue
/// (cache hits, validation failures, shutdown).
ResponseFuture ready(SolveOutcome outcome) {
  std::promise<SolveOutcome> promise;
  promise.set_value(std::move(outcome));
  return promise.get_future().share();
}

SolveOutcome fail(ErrorCode code, std::string message) {
  return common::make_unexpected(Error{code, std::move(message)});
}

}  // namespace

AllocationService::AllocationService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache, config_.obs.metrics) {
  HSLB_REQUIRE(config_.workers >= 1, "service needs at least one worker");
  HSLB_REQUIRE(config_.queue_capacity >= 1,
               "service needs a positive queue capacity");
  if (config_.register_builtin_cases) {
    register_case("1deg", cesm::one_degree_case());
    register_case("eighth", cesm::eighth_degree_case());
  }
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AllocationService::~AllocationService() { shutdown(); }

void AllocationService::register_case(const std::string& key,
                                      cesm::CaseConfig config) {
  const std::lock_guard<std::mutex> lock(catalog_mutex_);
  catalog_[key] =
      std::make_shared<const cesm::CaseConfig>(std::move(config));
}

std::shared_ptr<const cesm::CaseConfig> AllocationService::find_case(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(catalog_mutex_);
  const auto it = catalog_.find(name);
  return it == catalog_.end() ? nullptr : it->second;
}

AllocationService::Ticket AllocationService::submit(
    const AllocationRequest& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->counter("svc.requests").add(1.0);
  }

  Ticket ticket;
  ticket.key = canonical_key(request);

  // --- Validate: typed errors resolve immediately, nothing queues. ---------
  if (request.total_nodes < 8) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    ticket.future = ready(fail(ErrorCode::kBadRequest,
                               "total_nodes must be at least 8"));
    return ticket;
  }
  if (request.fits.empty() && request.samples.empty()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    ticket.future = ready(fail(
        ErrorCode::kBadRequest,
        "request carries neither benchmark samples nor fitted curves"));
    return ticket;
  }
  if (!request.fits.empty()) {
    for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
      if (request.fits.count(kind) == 0) {
        failed_.fetch_add(1, std::memory_order_relaxed);
        ticket.future = ready(fail(
            ErrorCode::kBadRequest,
            std::string("fits are missing component ") +
                cesm::to_string(kind)));
        return ticket;
      }
    }
  }
  if (find_case(request.case_name) == nullptr) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    ticket.future = ready(fail(ErrorCode::kUnknownCase,
                               "no case registered under '" +
                                   request.case_name + "'"));
    return ticket;
  }

  // --- Cache. ---------------------------------------------------------------
  const Clock::time_point now = Clock::now();
  if (std::optional<AllocationResponse> cached = cache_.get(ticket.key, now)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    ticket.cache_hit = true;
    ticket.future = ready(SolveOutcome(std::move(*cached)));
    return ticket;
  }

  // --- Coalesce. ------------------------------------------------------------
  Coalescer::Join join = coalescer_.join(ticket.key);
  ticket.future = join.slot->future;
  if (!join.leader) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->counter("svc.coalesced").add(1.0);
    }
    ticket.coalesced = true;
    return ticket;
  }

  // --- Leader: enqueue, shedding on a full queue or a stopped service. ------
  Job job;
  job.key = ticket.key;
  job.request = request;
  job.slot = join.slot;
  job.submitted = now;
  job.deadline_seconds = request.deadline_seconds > 0.0
                             ? request.deadline_seconds
                             : config_.default_deadline_seconds;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      lock.unlock();
      coalescer_.complete(ticket.key,
                          fail(ErrorCode::kShutdown,
                               "service is shutting down"));
      return ticket;
    }
    if (queue_.size() >= config_.queue_capacity) {
      lock.unlock();
      shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
      if (config_.obs.metrics != nullptr) {
        config_.obs.metrics->counter("svc.shed.queue_full").add(1.0);
      }
      coalescer_.complete(
          ticket.key,
          fail(ErrorCode::kQueueFull,
               "submission queue is full (" +
                   std::to_string(config_.queue_capacity) + " pending)"));
      return ticket;
    }
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
  return ticket;
}

SolveOutcome AllocationService::solve(const AllocationRequest& request) {
  return submit(request).future.get();
}

void AllocationService::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }

    const Clock::time_point start = Clock::now();
    const double waited_seconds =
        std::chrono::duration<double>(start - job.submitted).count();
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->histogram("svc.queue.ms")
          .observe(ms_between(job.submitted, start));
    }
    if (job.deadline_seconds > 0.0 && waited_seconds > job.deadline_seconds) {
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      if (config_.obs.metrics != nullptr) {
        config_.obs.metrics->counter("svc.shed.deadline").add(1.0);
      }
      coalescer_.complete(
          job.key, fail(ErrorCode::kDeadlineExceeded,
                        "request waited " + std::to_string(waited_seconds) +
                            " s against a " +
                            std::to_string(job.deadline_seconds) +
                            " s deadline"));
      continue;
    }

    // A leader that queued behind an identical flight which completed in the
    // meantime finds the answer already cached: serve it without re-solving.
    if (std::optional<AllocationResponse> cached =
            cache_.get(job.key, start)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      coalescer_.complete(job.key, SolveOutcome(std::move(*cached)));
      continue;
    }

    SolveOutcome outcome = execute(job);
    if (outcome.has_value()) {
      solved_.fetch_add(1, std::memory_order_relaxed);
      if (config_.obs.metrics != nullptr) {
        config_.obs.metrics->counter("svc.solves").add(1.0);
        config_.obs.metrics->histogram("svc.solve.ms")
            .observe(ms_between(start, Clock::now()));
      }
      cache_.put(job.key, outcome.value(), Clock::now());
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
      if (config_.obs.metrics != nullptr) {
        config_.obs.metrics->counter("svc.solve_failures").add(1.0);
      }
    }
    coalescer_.complete(job.key, std::move(outcome));
  }
}

SolveOutcome AllocationService::execute(const Job& job) {
  const std::shared_ptr<const cesm::CaseConfig> case_config =
      find_case(job.request.case_name);
  if (case_config == nullptr) {
    return fail(ErrorCode::kUnknownCase,
                "no case registered under '" + job.request.case_name + "'");
  }

  // Per-call wiring only: the worker installs the service sinks around this
  // solve (thread-local), and every knob below lives in the call's own
  // config -- the reentrancy contract the pipeline documents.
  const obs::Install install(config_.obs);
  obs::ScopedSpan span("svc.solve");
  if (span.active()) {
    span.arg("case", job.request.case_name);
    span.arg("total_nodes", static_cast<long long>(job.request.total_nodes));
  }

  core::PipelineConfig config;
  config.case_config = *case_config;
  config.layout = job.request.layout;
  config.objective = job.request.objective;
  config.total_nodes = job.request.total_nodes;
  config.tsync = job.request.tsync;
  config.constrain_atm = job.request.constrain_atm;
  config.constrain_ocean = job.request.constrain_ocean;
  config.use_sos = job.request.use_sos;
  config.fit_options = job.request.fit_options;
  config.solver.max_wall_seconds = job.request.max_wall_seconds;
  config.solver.max_nodes = job.request.max_nodes;
  config.solver.threads = job.request.solver_threads;

  core::HslbResult result;
  try {
    if (!job.request.fits.empty()) {
      result = core::run_hslb_from_fits(config, job.request.fits);
    } else {
      result = core::run_hslb_from_samples(config, job.request.samples);
    }
  } catch (const std::exception& e) {
    // hslb::Error covers the library's own rejections (bad sample counts,
    // infeasible models); the broader net keeps a worker alive no matter
    // what a request provokes.
    return fail(ErrorCode::kSolveFailed, e.what());
  }

  AllocationResponse response;
  response.allocation = result.allocation;
  response.tsync_used = result.tsync_used;
  response.solver_status = result.solver_result.status;
  response.nodes_explored = result.solver_result.stats.nodes_explored;
  response.degraded = result.degraded;
  return SolveOutcome(std::move(response));
}

void AllocationService::shutdown() {
  std::deque<Job> drained;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_ && queue_.empty() && workers_.empty()) {
      return;
    }
    stopping_ = true;
    drained.swap(queue_);
  }
  queue_cv_.notify_all();
  for (Job& job : drained) {
    coalescer_.complete(job.key, fail(ErrorCode::kShutdown,
                                      "service shut down before the "
                                      "request was served"));
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
}

ServiceStats AllocationService::stats() const {
  ServiceStats out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  out.solved = solved_.load(std::memory_order_relaxed);
  out.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  out.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  return out;
}

std::size_t AllocationService::queue_depth() const {
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

}  // namespace hslb::svc
