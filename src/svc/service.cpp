#include "hslb/svc/service.hpp"

#include <algorithm>
#include <utility>

#include "hslb/common/error.hpp"
#include "hslb/hslb/pipeline.hpp"
#include "hslb/hslb/resilience.hpp"
#include "hslb/scen/build.hpp"

namespace hslb::svc {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// An already-resolved future for answers that never touch the queue
/// (cache hits, validation failures, shutdown).
ResponseFuture ready(SolveOutcome outcome) {
  std::promise<SolveOutcome> promise;
  promise.set_value(std::move(outcome));
  return promise.get_future().share();
}

SolveOutcome fail(ErrorCode code, std::string message,
                  std::string phase = std::string()) {
  return common::make_unexpected(
      Error{code, std::move(message), std::move(phase)});
}

}  // namespace

AllocationService::AllocationService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache, config_.obs.metrics) {
  HSLB_REQUIRE(config_.workers >= 1, "service needs at least one worker");
  HSLB_REQUIRE(config_.queue_capacity >= 1,
               "service needs a positive queue capacity");
  if (config_.chaos.enabled()) {
    chaos_ = std::make_unique<ChaosInjector>(config_.chaos);
  }
  if (obs::Registry* metrics = config_.obs.metrics) {
    // Pre-register every request-phase histogram so a scrape sees the full
    // schema (complete count=0 bucket ladders) before -- or without -- any
    // traffic exercising a phase.
    for (const char* name :
         {"svc.admission.ms", "svc.queue.ms", "svc.cache.lookup.ms",
          "svc.coalesce.wait.ms", "svc.request.ms", "svc.solve.ms"}) {
      metrics->histogram(name, obs::Registry::hdr_time_bounds());
    }
    metrics->gauge("svc.workers").set(static_cast<double>(config_.workers));
    // Ladder/breaker/chaos schema, pre-registered for the same reason.
    for (const char* name :
         {"svc.served.stale", "svc.served.heuristic", "svc.shed.breaker",
          "svc.breaker.trips", "svc.hedged_retries", "svc.chaos.injected"}) {
      metrics->counter(name);
    }
    if (config_.admission.enabled) {
      admission_ =
          std::make_unique<AdmissionController>(config_.admission, metrics);
    }
  }
  HSLB_REQUIRE(!config_.admission.enabled || admission_ != nullptr,
               "adaptive admission needs obs.metrics (its p99 source)");
  if (config_.register_builtin_cases) {
    register_case("1deg", cesm::one_degree_case());
    register_case("eighth", cesm::eighth_degree_case());
  }
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AllocationService::~AllocationService() { shutdown(); }

void AllocationService::register_case(const std::string& key,
                                      cesm::CaseConfig config) {
  const std::lock_guard<std::mutex> lock(catalog_mutex_);
  catalog_[key] =
      std::make_shared<const cesm::CaseConfig>(std::move(config));
}

std::shared_ptr<const cesm::CaseConfig> AllocationService::find_case(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(catalog_mutex_);
  const auto it = catalog_.find(name);
  return it == catalog_.end() ? nullptr : it->second;
}

void AllocationService::register_scenario(scen::Scenario scenario) {
  scenario.validate();
  ScenarioEntry entry;
  entry.fingerprint = scen::scenario_fingerprint(scenario);
  const std::string key = scenario.name;
  entry.scenario =
      std::make_shared<const scen::Scenario>(std::move(scenario));
  const std::lock_guard<std::mutex> lock(catalog_mutex_);
  scenario_catalog_[key] = std::move(entry);
}

std::shared_ptr<const scen::Scenario> AllocationService::find_scenario(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(catalog_mutex_);
  const auto it = scenario_catalog_.find(name);
  return it == scenario_catalog_.end() ? nullptr : it->second.scenario;
}

std::optional<AllocationService::ScenarioEntry>
AllocationService::find_scenario_entry(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(catalog_mutex_);
  const auto it = scenario_catalog_.find(name);
  if (it == scenario_catalog_.end()) {
    return std::nullopt;
  }
  return it->second;
}

AllocationService::Ticket AllocationService::submit(
    const AllocationRequest& request) {
  const long long request_id =
      submitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  obs::TraceSession* trace = config_.obs.trace;
  obs::Registry* metrics = config_.obs.metrics;
  if (metrics != nullptr) {
    metrics->counter("svc.requests").add(1.0);
  }

  // Open the request span.  Its id is allocated up front so phase events
  // can parent onto it before it is recorded; the event itself is recorded
  // by whichever thread resolves the request (close_request).
  const Clock::time_point entered = Clock::now();
  std::uint64_t request_span = 0;
  double request_start_us = 0.0;
  int submit_tid = 0;
  if (trace != nullptr) {
    request_span = trace->next_span_id();
    request_start_us = trace->now_us();
    submit_tid = trace->thread_id_for_current_thread();
  }

  Ticket ticket;
  ticket.request_id = request_id;
  ticket.key = canonical_key(request);
  // Scenario cases key on the scenario's fingerprint too: re-registering a
  // changed scenario under the same name must miss the old cache lines.
  const std::optional<ScenarioEntry> scenario_entry =
      find_scenario_entry(request.case_name);
  if (scenario_entry.has_value()) {
    ticket.key += "|scen:" + scenario_entry->fingerprint;
  }

  // Admission phase = validation; ends exactly once per request, on
  // whichever validation outcome is hit first.
  const auto admission_done = [&] {
    if (metrics != nullptr) {
      metrics->histogram("svc.admission.ms")
          .observe(ms_between(entered, Clock::now()));
    }
    record_phase("svc.phase.admission", request_span, request_start_us,
                 submit_tid);
  };
  const auto reject = [&](ErrorCode code,
                          std::string message) -> ResponseFuture {
    failed_.fetch_add(1, std::memory_order_relaxed);
    admission_done();
    close_request(request_span, request_id, request_start_us, submit_tid,
                  "rejected", 0, ms_between(entered, Clock::now()));
    return ready(fail(code, std::move(message), "admission"));
  };

  // --- Validate: typed errors resolve immediately, nothing queues.  A
  // --- scenario case carries its model in the catalog, so the timing-data
  // --- and machine-size checks of the classic path do not apply. -----------
  if (!scenario_entry.has_value()) {
    if (request.total_nodes < 8) {
      ticket.future = reject(ErrorCode::kBadRequest,
                             "total_nodes must be at least 8");
      return ticket;
    }
    if (request.fits.empty() && request.samples.empty()) {
      ticket.future = reject(
          ErrorCode::kBadRequest,
          "request carries neither benchmark samples nor fitted curves");
      return ticket;
    }
    if (!request.fits.empty()) {
      for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
        if (request.fits.count(kind) == 0) {
          ticket.future =
              reject(ErrorCode::kBadRequest,
                     std::string("fits are missing component ") +
                         cesm::to_string(kind));
          return ticket;
        }
      }
    }
    if (find_case(request.case_name) == nullptr) {
      ticket.future = reject(ErrorCode::kUnknownCase,
                             "no case registered under '" +
                                 request.case_name + "'");
      return ticket;
    }
  }
  admission_done();

  // --- Cache. ---------------------------------------------------------------
  const Clock::time_point now = Clock::now();
  const double cache_start_us = trace != nullptr ? trace->now_us() : 0.0;
  std::optional<AllocationResponse> cached = cache_.get(ticket.key, now);
  if (metrics != nullptr) {
    metrics->histogram("svc.cache.lookup.ms")
        .observe(ms_between(now, Clock::now()));
  }
  record_phase("svc.phase.cache", request_span, cache_start_us, submit_tid);
  if (cached.has_value()) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    ticket.cache_hit = true;
    close_request(request_span, request_id, request_start_us, submit_tid,
                  "cache_hit", 0, ms_between(entered, Clock::now()));
    ticket.future = ready(SolveOutcome(std::move(*cached)));
    return ticket;
  }

  // --- Coalesce. ------------------------------------------------------------
  Coalescer::Follower meta;
  if (trace != nullptr) {
    meta.request_span = request_span;
    meta.request_start_us = request_start_us;
    meta.wait_start_us = trace->now_us();
    meta.thread_id = submit_tid;
    meta.request_id = request_id;
  }
  Coalescer::Join join = coalescer_.join(ticket.key, meta);
  ticket.future = join.slot->future;
  if (!join.leader) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    if (metrics != nullptr) {
      metrics->counter("svc.coalesced").add(1.0);
    }
    ticket.coalesced = true;
    // The coalesce-wait phase and the request span stay open until the
    // leader's flight completes (complete_flight closes them).
    return ticket;
  }

  // --- Leader: adaptive admission, then enqueue (shedding on a full queue
  // --- or a stopped service). -----------------------------------------------
  const double deadline_seconds = request.deadline_seconds > 0.0
                                      ? request.deadline_seconds
                                      : config_.default_deadline_seconds;
  if (admission_ != nullptr) {
    const AdmissionDecision decision =
        admission_->admit(deadline_seconds, queue_depth());
    if (!decision.admit) {
      shed_overload_.fetch_add(1, std::memory_order_relaxed);
      complete_flight(
          ticket.key,
          fail(ErrorCode::kOverloaded,
               "measured p99 " + std::to_string(decision.p99_ms) +
                   " ms exceeds the admission budget " +
                   std::to_string(decision.budget_ms) + " ms",
               "admission"),
          "overload");
      close_request(request_span, request_id, request_start_us, submit_tid,
                    "overload", join.slot->followers,
                    ms_between(entered, Clock::now()));
      return ticket;
    }
  }
  Job job;
  job.key = ticket.key;
  job.request = request;
  job.slot = join.slot;
  job.submitted = now;
  job.deadline_seconds = deadline_seconds;
  job.request_id = request_id;
  job.request_span = request_span;
  job.request_start_us = request_start_us;
  job.queue_start_us = trace != nullptr ? trace->now_us() : 0.0;
  job.submit_tid = submit_tid;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      lock.unlock();
      complete_flight(ticket.key,
                      fail(ErrorCode::kShutdown, "service is shutting down",
                           "queue"),
                      "shutdown");
      close_request(request_span, request_id, request_start_us, submit_tid,
                    "shutdown", join.slot->followers,
                    ms_between(entered, Clock::now()));
      return ticket;
    }
    if (queue_.size() >= config_.queue_capacity) {
      lock.unlock();
      shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
      if (metrics != nullptr) {
        metrics->counter("svc.shed.queue_full").add(1.0);
      }
      complete_flight(
          ticket.key,
          fail(ErrorCode::kQueueFull,
               "submission queue is full (" +
                   std::to_string(config_.queue_capacity) + " pending)",
               "queue"),
          "queue_full");
      close_request(request_span, request_id, request_start_us, submit_tid,
                    "queue_full", join.slot->followers,
                    ms_between(entered, Clock::now()));
      return ticket;
    }
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
  return ticket;
}

SolveOutcome AllocationService::solve(const AllocationRequest& request) {
  return submit(request).future.get();
}

void AllocationService::worker_loop() {
  obs::TraceSession* trace = config_.obs.trace;
  obs::Registry* metrics = config_.obs.metrics;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }

    const Clock::time_point start = Clock::now();
    const int worker_tid =
        trace != nullptr ? trace->thread_id_for_current_thread() : 0;
    // The queue phase opened at enqueue time on the submitting thread and
    // closes here, on the worker that picked the job up.
    record_phase("svc.phase.queue", job.request_span, job.queue_start_us,
                 worker_tid);
    const double waited_seconds =
        std::chrono::duration<double>(start - job.submitted).count();
    if (metrics != nullptr) {
      metrics->histogram("svc.queue.ms")
          .observe(ms_between(job.submitted, start));
    }
    if (job.deadline_seconds > 0.0 && waited_seconds > job.deadline_seconds) {
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      if (metrics != nullptr) {
        metrics->counter("svc.shed.deadline").add(1.0);
      }
      complete_flight(
          job.key,
          fail(ErrorCode::kDeadlineExceeded,
               "request waited " + std::to_string(waited_seconds) +
                   " s against a " + std::to_string(job.deadline_seconds) +
                   " s deadline",
               "queue"),
          "deadline");
      close_request(job.request_span, job.request_id, job.request_start_us,
                    job.submit_tid, "deadline", job.slot->followers,
                    ms_between(job.submitted, Clock::now()));
      continue;
    }

    // A leader that queued behind an identical flight which completed in the
    // meantime finds the answer already cached: serve it without re-solving.
    const double recheck_start_us = trace != nullptr ? trace->now_us() : 0.0;
    std::optional<AllocationResponse> cached = cache_.get(job.key, start);
    if (metrics != nullptr) {
      metrics->histogram("svc.cache.lookup.ms")
          .observe(ms_between(start, Clock::now()));
    }
    record_phase("svc.phase.cache", job.request_span, recheck_start_us,
                 worker_tid);
    if (cached.has_value()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      complete_flight(job.key, SolveOutcome(std::move(*cached)),
                      "cache_hit");
      close_request(job.request_span, job.request_id, job.request_start_us,
                    job.submit_tid, "cache_hit", job.slot->followers,
                    ms_between(job.submitted, Clock::now()));
      continue;
    }

    // Solve phase: the id is allocated before the ladder runs so the
    // solver's own spans (svc.solve -> minlp.solve -> minlp.epoch) can nest
    // under it via the installed parent_span; the phase event is recorded
    // after.  The ladder (breaker gate, chaos-wrapped exact attempt, the
    // brownout rungs) all runs inside the phase.
    ServeResult served{fail(ErrorCode::kSolveFailed, "not executed", "solve"),
                       "failed"};
    {
      std::uint64_t solve_span = 0;
      double solve_start_us = 0.0;
      if (trace != nullptr && job.request_span != 0) {
        solve_span = trace->next_span_id();
        solve_start_us = trace->now_us();
      }
      obs::Options context = config_.obs;
      context.parent_span = solve_span;
      const obs::Install install(context);
      served = serve(job, waited_seconds);
      record_phase("svc.phase.solve", job.request_span, solve_start_us,
                   worker_tid, solve_span);
    }
    if (!served.outcome.has_value()) {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    const char* label = served.label;
    complete_flight(job.key, std::move(served.outcome), label);
    close_request(job.request_span, job.request_id, job.request_start_us,
                  job.submit_tid, label, job.slot->followers,
                  ms_between(job.submitted, Clock::now()));
  }
}

AllocationService::ServeResult AllocationService::serve(
    const Job& job, double waited_seconds) {
  obs::Registry* metrics = config_.obs.metrics;
  const Clock::time_point start = Clock::now();

  // --- Breaker gate + exact attempt. ----------------------------------------
  CircuitBreaker* breaker =
      config_.breaker_enabled ? &breaker_for(job.request.case_name) : nullptr;
  SolveOutcome outcome =
      fail(ErrorCode::kSolveFailed, "not attempted", "solve");
  double sim_stall_seconds = 0.0;
  int last_attempt = 0;
  bool attempted = false;
  if (breaker == nullptr || breaker->allow()) {
    attempted = true;
    outcome =
        attempt_exact(job, waited_seconds, &sim_stall_seconds, &last_attempt);
    if (breaker != nullptr) {
      const long long opened_before = breaker->stats().opened;
      breaker->record(outcome.has_value());
      if (metrics != nullptr && breaker->stats().opened > opened_before) {
        metrics->counter("svc.breaker.trips").add(1.0);
      }
    }
  } else {
    shed_breaker_.fetch_add(1, std::memory_order_relaxed);
    if (metrics != nullptr) {
      metrics->counter("svc.shed.breaker").add(1.0);
    }
    outcome = fail(ErrorCode::kSolveFailed,
                   "circuit breaker open for case '" + job.request.case_name +
                       "' (recent solves kept failing)",
                   "breaker");
  }

  if (outcome.has_value()) {
    solved_.fetch_add(1, std::memory_order_relaxed);
    if (metrics != nullptr) {
      metrics->counter("svc.solves").add(1.0);
      metrics->histogram("svc.solve.ms")
          .observe(ms_between(start, Clock::now()));
    }
    // Only exact answers enter the cache -- a brownout response must never
    // masquerade as a warm hit later.
    cache_.put(job.key, outcome.value(), Clock::now());
    if (chaos_ != nullptr &&
        chaos_->draw_poison(ChaosInjector::key_hash(job.key), last_attempt)) {
      count_chaos(ChaosKind::kCachePoison);
      cache_.poison(job.key);
    }
    return {std::move(outcome), "ok"};
  }
  if (attempted && metrics != nullptr) {
    metrics->counter("svc.solve_failures").add(1.0);
  }

  // --- Brownout rungs. ------------------------------------------------------
  if (config_.ladder_enabled) {
    const std::string& fault_detail = outcome.error().message;
    // Rung 2: an expired-but-checksummed cache entry, served stale.  Only
    // populated when the cache retains expired entries (keep_expired).
    std::optional<AllocationResponse> stale =
        cache_.get_stale(job.key, Clock::now());
    if (stale.has_value()) {
      stale->degraded = true;
      stale->served = ServeLevel::kStaleCache;
      stale->fault_detail = fault_detail;
      served_stale_.fetch_add(1, std::memory_order_relaxed);
      if (metrics != nullptr) {
        metrics->counter("svc.served.stale").add(1.0);
      }
      return {SolveOutcome(std::move(*stale)), "stale"};
    }
    // Rung 3: direct grid search over the allowed sets (fits-based requests
    // only -- a samples-only request has no curves without a fit pass).
    SolveOutcome heuristic = heuristic_serve(job);
    if (heuristic.has_value()) {
      heuristic->fault_detail = fault_detail;
      served_heuristic_.fetch_add(1, std::memory_order_relaxed);
      if (metrics != nullptr) {
        metrics->counter("svc.served.heuristic").add(1.0);
      }
      return {std::move(heuristic), "heuristic"};
    }
  }

  // --- Typed shed: the exact failure, root cause intact. --------------------
  const char* label =
      outcome.error().phase == "breaker" ? "breaker_open" : "failed";
  return {std::move(outcome), label};
}

SolveOutcome AllocationService::attempt_exact(const Job& job,
                                              double waited_seconds,
                                              double* sim_stall_seconds,
                                              int* last_attempt) {
  if (chaos_ == nullptr) {
    *last_attempt = next_attempt(job.key);
    return execute(job);
  }
  const std::uint64_t key_hash = ChaosInjector::key_hash(job.key);
  bool hedged = false;
  for (;;) {
    const int attempt = next_attempt(job.key);
    *last_attempt = attempt;
    const ChaosKind fault = chaos_->draw_solve(key_hash, attempt);
    SolveOutcome outcome =
        fail(ErrorCode::kSolveFailed, "not attempted", "solve");
    bool retryable = false;
    switch (fault) {
      case ChaosKind::kNone:
      case ChaosKind::kCachePoison:  // draw_solve never returns this
        outcome = execute(job);
        break;
      case ChaosKind::kSolveException:
        count_chaos(fault);
        outcome = fail(ErrorCode::kSolveFailed,
                       "chaos: injected solver exception (attempt " +
                           std::to_string(attempt) + ")",
                       "solve");
        break;
      case ChaosKind::kSolveStall:
        // Simulated-clock idiom: no real sleep; the stall's seconds are
        // charged against the request's deadline budget below.
        count_chaos(fault);
        *sim_stall_seconds += chaos_->spec().stall_seconds;
        outcome = fail(ErrorCode::kSolveFailed,
                       "chaos: solver stalled " +
                           std::to_string(chaos_->spec().stall_seconds) +
                           " s (simulated) past its budget",
                       "solve");
        break;
      case ChaosKind::kLeaderDeath:
        count_chaos(fault);
        retryable = true;
        outcome = fail(ErrorCode::kSolveFailed,
                       "chaos: coalescer leader died mid-solve", "solve");
        break;
      case ChaosKind::kWorkerAbort:
        count_chaos(fault);
        retryable = true;
        outcome = fail(ErrorCode::kSolveFailed,
                       "chaos: worker thread aborted mid-solve", "solve");
        break;
    }
    if (outcome.has_value() || !retryable || hedged || !config_.hedged_retry) {
      return outcome;
    }
    // Hedged retry: one extra exact attempt for deaths (the work was lost,
    // not wrong), and only while the deadline budget -- less queue wait and
    // simulated stall time -- still has room.
    if (job.deadline_seconds > 0.0 &&
        waited_seconds + *sim_stall_seconds >= job.deadline_seconds) {
      return outcome;
    }
    hedged = true;
    hedged_retries_.fetch_add(1, std::memory_order_relaxed);
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->counter("svc.hedged_retries").add(1.0);
    }
  }
}

SolveOutcome AllocationService::heuristic_serve(const Job& job) {
  // Scenario cases have their own ladder rung: the N-component greedy
  // allocation, valid for any corpus case (no fits required -- the curves
  // live in the catalog), so corpus traffic degrades instead of shedding.
  if (const std::shared_ptr<const scen::Scenario> scenario =
          find_scenario(job.request.case_name)) {
    try {
      const scen::ScenAllocation alloc = scen::heuristic_allocation(*scenario);
      AllocationResponse response;
      response.degraded = true;
      response.served = ServeLevel::kHeuristic;
      response.scenario_nodes = alloc.nodes;
      response.scenario_objective = alloc.objective;
      return SolveOutcome(std::move(response));
    } catch (const std::exception& e) {
      return fail(ErrorCode::kSolveFailed,
                  std::string("scenario heuristic fallback failed: ") +
                      e.what(),
                  "ladder");
    }
  }
  if (job.request.fits.empty()) {
    return fail(ErrorCode::kSolveFailed,
                "no fitted curves to grid-search (samples-only request)",
                "ladder");
  }
  const std::shared_ptr<const cesm::CaseConfig> case_config =
      find_case(job.request.case_name);
  if (case_config == nullptr) {
    return fail(ErrorCode::kUnknownCase,
                "no case registered under '" + job.request.case_name + "'",
                "ladder");
  }
  // Mirror the pipeline's spec assembly (run_hslb_from_fits + solve_step's
  // allowed-set and auto-tsync rules) so the grid search answers the same
  // question the solver would have.
  core::LayoutModelSpec spec;
  spec.layout = job.request.layout;
  spec.total_nodes = job.request.total_nodes;
  spec.objective = job.request.objective;
  spec.use_sos = job.request.use_sos;
  spec.min_nodes = case_config->min_nodes;
  for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
    spec.perf[kind] = job.request.fits.at(kind);  // validated at submit
  }
  if (job.request.constrain_atm) {
    spec.atm_allowed = case_config->atm_allowed;
  }
  if (job.request.constrain_ocean) {
    spec.ocn_allowed = case_config->ocn_allowed;
  }
  double tsync = job.request.tsync;
  if (tsync < 0.0) {
    const double ref = spec.perf.at(cesm::ComponentKind::kIce)(
        std::max(1.0, job.request.total_nodes / 2.0));
    tsync = std::max(1.0, 0.25 * ref);
  }
  spec.tsync = tsync;

  AllocationResponse response;
  try {
    response.allocation = core::heuristic_allocation(spec);
  } catch (const std::exception& e) {
    return fail(ErrorCode::kSolveFailed,
                std::string("heuristic fallback failed: ") + e.what(),
                "ladder");
  }
  response.tsync_used = tsync;
  response.nodes_explored = 0;
  response.degraded = true;
  response.served = ServeLevel::kHeuristic;
  return SolveOutcome(std::move(response));
}

CircuitBreaker& AllocationService::breaker_for(const std::string& case_name) {
  const std::lock_guard<std::mutex> lock(breaker_mutex_);
  std::unique_ptr<CircuitBreaker>& slot = breakers_[case_name];
  if (slot == nullptr) {
    slot = std::make_unique<CircuitBreaker>(config_.breaker);
  }
  return *slot;
}

int AllocationService::next_attempt(const std::string& key) {
  const std::lock_guard<std::mutex> lock(attempt_mutex_);
  return attempts_[key]++;
}

void AllocationService::count_chaos(ChaosKind kind) {
  chaos_injected_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Registry* metrics = config_.obs.metrics) {
    metrics->counter("svc.chaos.injected").add(1.0);
    metrics->counter(std::string("svc.chaos.") + to_string(kind)).add(1.0);
  }
}

std::optional<BreakerStats> AllocationService::breaker_stats(
    const std::string& case_name) const {
  const std::lock_guard<std::mutex> lock(breaker_mutex_);
  const auto it = breakers_.find(case_name);
  if (it == breakers_.end()) {
    return std::nullopt;
  }
  return it->second->stats();
}

void AllocationService::record_phase(const char* name,
                                     std::uint64_t request_span,
                                     double start_us, int thread_id,
                                     std::uint64_t span_id) const {
  obs::TraceSession* trace = config_.obs.trace;
  if (trace == nullptr || request_span == 0) {
    return;
  }
  obs::TraceEvent event;
  event.name = name;
  event.category = "svc";
  event.start_us = start_us;
  event.duration_us = trace->now_us() - start_us;
  event.thread_id = thread_id;
  event.id = span_id != 0 ? span_id : trace->next_span_id();
  event.parent = request_span;
  trace->record(std::move(event));
}

void AllocationService::close_request(std::uint64_t request_span,
                                      long long request_id, double start_us,
                                      int thread_id, const char* outcome,
                                      int followers,
                                      double fallback_total_ms) const {
  obs::TraceSession* trace = config_.obs.trace;
  double total_ms = fallback_total_ms;
  if (trace != nullptr && request_span != 0) {
    obs::TraceEvent event;
    event.name = "svc.request";
    event.category = "svc";
    event.start_us = start_us;
    event.duration_us = trace->now_us() - start_us;
    total_ms = event.duration_us / 1e3;
    event.thread_id = thread_id;
    event.id = request_span;
    event.args.emplace_back("id", std::to_string(request_id));
    event.args.emplace_back("outcome", outcome);
    if (followers > 0) {
      event.args.emplace_back("followers", std::to_string(followers));
    }
    trace->record(std::move(event));
  }
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->histogram("svc.request.ms").observe(total_ms);
  }
}

void AllocationService::complete_flight(const std::string& key,
                                        SolveOutcome outcome,
                                        const char* outcome_label) {
  const std::shared_ptr<Coalescer::Slot> slot =
      coalescer_.complete(key, std::move(outcome));
  if (slot == nullptr) {
    return;
  }
  obs::TraceSession* trace = config_.obs.trace;
  if (trace == nullptr) {
    return;  // followers only carry telemetry when tracing is on
  }
  for (const Coalescer::Follower& meta : slot->follower_meta) {
    record_phase("svc.phase.coalesce", meta.request_span,
                 meta.wait_start_us, meta.thread_id);
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->histogram("svc.coalesce.wait.ms")
          .observe((trace->now_us() - meta.wait_start_us) / 1e3);
    }
    close_request(meta.request_span, meta.request_id,
                  meta.request_start_us, meta.thread_id, outcome_label, 0,
                  (trace->now_us() - meta.request_start_us) / 1e3);
  }
}

SolveOutcome AllocationService::execute(const Job& job) {
  if (const std::shared_ptr<const scen::Scenario> scenario =
          find_scenario(job.request.case_name)) {
    return execute_scenario(job, *scenario);
  }
  const std::shared_ptr<const cesm::CaseConfig> case_config =
      find_case(job.request.case_name);
  if (case_config == nullptr) {
    return fail(ErrorCode::kUnknownCase,
                "no case registered under '" + job.request.case_name + "'",
                "solve");
  }

  // Per-call wiring only: the worker installs the service sinks around this
  // solve (thread-local), and every knob below lives in the call's own
  // config -- the reentrancy contract the pipeline documents.
  const obs::Install install(config_.obs);
  obs::ScopedSpan span("svc.solve");
  if (span.active()) {
    span.arg("case", job.request.case_name);
    span.arg("total_nodes", static_cast<long long>(job.request.total_nodes));
  }

  core::PipelineConfig config;
  config.case_config = *case_config;
  config.layout = job.request.layout;
  config.objective = job.request.objective;
  config.total_nodes = job.request.total_nodes;
  config.tsync = job.request.tsync;
  config.constrain_atm = job.request.constrain_atm;
  config.constrain_ocean = job.request.constrain_ocean;
  config.use_sos = job.request.use_sos;
  config.fit_options = job.request.fit_options;
  config.solver.max_wall_seconds = job.request.max_wall_seconds;
  config.solver.max_nodes = job.request.max_nodes;
  config.solver.threads = job.request.solver_threads;

  core::HslbResult result;
  try {
    if (!job.request.fits.empty()) {
      result = core::run_hslb_from_fits(config, job.request.fits);
    } else {
      result = core::run_hslb_from_samples(config, job.request.samples);
    }
  } catch (const std::exception& e) {
    // hslb::Error covers the library's own rejections (bad sample counts,
    // infeasible models); the broader net keeps a worker alive no matter
    // what a request provokes.
    return fail(ErrorCode::kSolveFailed, e.what(), "solve");
  }

  AllocationResponse response;
  response.allocation = result.allocation;
  response.tsync_used = result.tsync_used;
  response.solver_status = result.solver_result.status;
  response.nodes_explored = result.solver_result.stats.nodes_explored;
  response.degraded = result.degraded;
  return SolveOutcome(std::move(response));
}

SolveOutcome AllocationService::execute_scenario(
    const Job& job, const scen::Scenario& scenario) {
  const obs::Install install(config_.obs);
  obs::ScopedSpan span("svc.solve");
  if (span.active()) {
    span.arg("case", job.request.case_name);
    span.arg("components",
             static_cast<long long>(scenario.components.size()));
  }

  minlp::SolverOptions solver;
  solver.max_wall_seconds = job.request.max_wall_seconds;
  solver.max_nodes = job.request.max_nodes;
  solver.threads = job.request.solver_threads;
  solver.use_sos_branching = job.request.use_sos;

  try {
    scen::BuildOptions build_options;
    build_options.use_sos = job.request.use_sos;
    scen::ScenarioModelVars vars;
    const minlp::Model model =
        scen::build_scenario_model(scenario, &vars, build_options);
    const minlp::MinlpResult result = minlp::solve(model, solver);
    if (result.x.size() == 0) {
      return fail(ErrorCode::kSolveFailed,
                  std::string("scenario solve found no feasible point (") +
                      minlp::to_string(result.status) + ")",
                  "solve");
    }
    const scen::ScenAllocation alloc =
        extract_scenario_allocation(scenario, vars, result);
    AllocationResponse response;
    response.solver_status = result.status;
    response.nodes_explored = result.stats.nodes_explored;
    response.scenario_nodes = alloc.nodes;
    response.scenario_objective = alloc.objective;
    return SolveOutcome(std::move(response));
  } catch (const std::exception& e) {
    return fail(ErrorCode::kSolveFailed, e.what(), "solve");
  }
}

void AllocationService::shutdown() {
  std::deque<Job> drained;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_ && queue_.empty() && workers_.empty()) {
      return;
    }
    stopping_ = true;
    drained.swap(queue_);
  }
  queue_cv_.notify_all();
  for (Job& job : drained) {
    complete_flight(job.key,
                    fail(ErrorCode::kShutdown,
                         "service shut down before the request was served",
                         "queue"),
                    "shutdown");
    close_request(job.request_span, job.request_id, job.request_start_us,
                  job.submit_tid, "shutdown", job.slot->followers,
                  ms_between(job.submitted, Clock::now()));
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
}

ServiceStats AllocationService::stats() const {
  ServiceStats out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  out.solved = solved_.load(std::memory_order_relaxed);
  out.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  out.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  out.shed_overload = shed_overload_.load(std::memory_order_relaxed);
  out.shed_breaker = shed_breaker_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.served_stale = served_stale_.load(std::memory_order_relaxed);
  out.served_heuristic = served_heuristic_.load(std::memory_order_relaxed);
  out.hedged_retries = hedged_retries_.load(std::memory_order_relaxed);
  out.chaos_injected = chaos_injected_.load(std::memory_order_relaxed);
  return out;
}

std::size_t AllocationService::queue_depth() const {
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

}  // namespace hslb::svc
