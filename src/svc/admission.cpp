#include "hslb/svc/admission.hpp"

#include <cmath>

#include "hslb/common/error.hpp"

namespace hslb::svc {

AdmissionController::AdmissionController(AdmissionConfig config,
                                         obs::Registry* metrics)
    : config_(config), metrics_(metrics) {
  HSLB_REQUIRE(metrics_ != nullptr,
               "admission controller needs a metrics registry");
  HSLB_REQUIRE(config_.headroom > 0.0, "admission headroom must be positive");
  HSLB_REQUIRE(config_.min_observations >= 1,
               "admission min_observations must be positive");
  HSLB_REQUIRE(config_.refresh_interval >= 1,
               "admission refresh_interval must be positive");
  // Get-or-create with the telemetry layer's HDR edges so construction
  // order (controller vs. service telemetry) cannot fork the bounds.
  metrics_->histogram("svc.request.ms", obs::Registry::hdr_time_bounds());
  shed_counter_ = &metrics_->counter("svc.shed.overload");
  p99_gauge_ = &metrics_->gauge("svc.admission.p99_ms");
}

void AdmissionController::refresh_p99() {
  const std::lock_guard<std::mutex> lock(refresh_mutex_);
  obs::Histogram& histogram =
      metrics_->histogram("svc.request.ms", obs::Registry::hdr_time_bounds());
  obs::MetricsSnapshot::HistogramRow row;
  row.count = histogram.count();
  row.bounds = histogram.bounds();
  row.buckets = histogram.bucket_counts();
  double p99 = 0.0;
  if (row.count >= config_.min_observations) {
    p99 = obs::histogram_percentile(row, 0.99);
    if (std::isnan(p99)) {
      p99 = 0.0;
    }
  }
  p99_ms_.store(p99, std::memory_order_relaxed);
  if (p99_gauge_ != nullptr) {
    // +inf means "the tail escaped the histogram's last bucket"; export a
    // finite sentinel so the Prometheus text stays parseable.
    p99_gauge_->set(std::isinf(p99) ? 1e9 : p99);
  }
}

AdmissionDecision AdmissionController::admit(double deadline_seconds,
                                             std::size_t queue_depth) {
  AdmissionDecision out;
  out.budget_ms = config_.headroom * deadline_seconds * 1000.0;
  if (!config_.enabled) {
    return out;
  }
  const long long decision =
      decisions_.fetch_add(1, std::memory_order_relaxed);
  if (decision % config_.refresh_interval == 0) {
    refresh_p99();
  }
  out.p99_ms = p99_ms_.load(std::memory_order_relaxed);
  // p99 of +inf (tail past the last bucket edge) always sheds; p99 of 0
  // (too few observations) never does.
  if (queue_depth >= config_.min_queue_depth && out.budget_ms > 0.0 &&
      out.p99_ms > out.budget_ms) {
    out.admit = false;
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (shed_counter_ != nullptr) {
      shed_counter_->add(1.0);
    }
  }
  return out;
}

double AdmissionController::last_p99_ms() const {
  return p99_ms_.load(std::memory_order_relaxed);
}

long long AdmissionController::shed_count() const {
  return shed_.load(std::memory_order_relaxed);
}

}  // namespace hslb::svc
