#include "hslb/svc/chaos.hpp"

#include "hslb/common/error.hpp"
#include "hslb/common/rng.hpp"

namespace hslb::svc {

const char* to_string(ChaosKind kind) {
  switch (kind) {
    case ChaosKind::kNone:
      return "none";
    case ChaosKind::kSolveException:
      return "solve-exception";
    case ChaosKind::kSolveStall:
      return "solve-stall";
    case ChaosKind::kCachePoison:
      return "cache-poison";
    case ChaosKind::kLeaderDeath:
      return "leader-death";
    case ChaosKind::kWorkerAbort:
      return "worker-abort";
  }
  return "unknown";
}

bool ChaosSpec::enabled() const {
  return solve_rate() + cache_poison_prob > 0.0;
}

double ChaosSpec::solve_rate() const {
  return solve_exception_prob + solve_stall_prob + leader_death_prob +
         worker_abort_prob;
}

ChaosSpec ChaosSpec::uniform(double rate, std::uint64_t seed) {
  HSLB_REQUIRE(rate >= 0.0 && rate <= 1.0,
               "chaos rate must be a probability");
  ChaosSpec spec;
  spec.solve_exception_prob = 0.35 * rate;
  spec.solve_stall_prob = 0.25 * rate;
  spec.leader_death_prob = 0.15 * rate;
  spec.worker_abort_prob = 0.10 * rate;
  spec.cache_poison_prob = 0.15 * rate;
  spec.seed = seed;
  return spec;
}

ChaosInjector::ChaosInjector(ChaosSpec spec) : spec_(spec) {
  HSLB_REQUIRE(spec_.solve_rate() <= 1.0,
               "chaos solve-fault probabilities must sum to at most 1");
  HSLB_REQUIRE(spec_.cache_poison_prob >= 0.0 &&
                   spec_.cache_poison_prob <= 1.0,
               "cache poison probability must be a probability");
  HSLB_REQUIRE(spec_.stall_seconds >= 0.0,
               "stall_seconds must be nonnegative");
}

bool ChaosInjector::in_fault_window(int attempt) const {
  if (attempt < spec_.exempt_first_attempts) {
    return false;
  }
  return spec_.max_fault_attempts < 0 ||
         attempt < spec_.exempt_first_attempts + spec_.max_fault_attempts;
}

ChaosKind ChaosInjector::draw_solve(std::uint64_t key_hash,
                                    int attempt) const {
  if (spec_.solve_rate() <= 0.0 || !in_fault_window(attempt)) {
    return ChaosKind::kNone;
  }
  common::Rng rng(cesm::mix_fault_key(
      spec_.seed, key_hash, 0x50ull + static_cast<std::uint64_t>(attempt)));
  const double u = rng.uniform();
  double edge = spec_.solve_exception_prob;
  if (u < edge) {
    return ChaosKind::kSolveException;
  }
  edge += spec_.solve_stall_prob;
  if (u < edge) {
    return ChaosKind::kSolveStall;
  }
  edge += spec_.leader_death_prob;
  if (u < edge) {
    return ChaosKind::kLeaderDeath;
  }
  edge += spec_.worker_abort_prob;
  if (u < edge) {
    return ChaosKind::kWorkerAbort;
  }
  return ChaosKind::kNone;
}

bool ChaosInjector::draw_poison(std::uint64_t key_hash, int attempt) const {
  if (spec_.cache_poison_prob <= 0.0 || !in_fault_window(attempt)) {
    return false;
  }
  common::Rng rng(cesm::mix_fault_key(
      spec_.seed, key_hash, 0xB0ull + static_cast<std::uint64_t>(attempt)));
  return rng.uniform() < spec_.cache_poison_prob;
}

std::uint64_t ChaosInjector::key_hash(const std::string& key) {
  // FNV-1a, the same fingerprint primitive the report library uses.
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace hslb::svc
