#include "hslb/svc/cache.hpp"

#include <functional>
#include <utility>

#include "hslb/common/error.hpp"

namespace hslb::svc {

SolveCache::SolveCache(CacheConfig config, obs::Registry* metrics)
    : config_(config) {
  HSLB_REQUIRE(config_.capacity >= 1, "cache capacity must be positive");
  if (config_.shards < 1) {
    config_.shards = 1;
  }
  if (config_.shards > config_.capacity) {
    config_.shards = config_.capacity;  // every shard can hold an entry
  }
  per_shard_capacity_ =
      (config_.capacity + config_.shards - 1) / config_.shards;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (metrics != nullptr) {
    hit_counter_ = &metrics->counter("svc.cache.hits");
    miss_counter_ = &metrics->counter("svc.cache.misses");
    evict_counter_ = &metrics->counter("svc.cache.evictions");
    expire_counter_ = &metrics->counter("svc.cache.expirations");
    stale_counter_ = &metrics->counter("svc.cache.stale_hits");
    poison_counter_ = &metrics->counter("svc.cache.poison_detected");
    size_gauge_ = &metrics->gauge("svc.cache.size");
  }
}

SolveCache::Shard& SolveCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool SolveCache::expired(const Entry& entry, Clock::time_point now) const {
  if (config_.ttl_seconds <= 0.0) {
    return false;
  }
  return std::chrono::duration<double>(now - entry.inserted).count() >
         config_.ttl_seconds;
}

void SolveCache::count_poison() {
  poison_detected_.fetch_add(1, std::memory_order_relaxed);
  if (poison_counter_ != nullptr) {
    poison_counter_->add(1.0);
  }
}

std::optional<AllocationResponse> SolveCache::get(const std::string& key,
                                                  Clock::time_point now) {
  Shard& shard = shard_for(key);
  std::optional<AllocationResponse> out;
  bool count_expired = false;
  bool poisoned = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      Entry& entry = *it->second;
      if (response_checksum(entry.response) != entry.checksum) {
        // Poisoned shard: drop the entry; the caller re-solves.
        poisoned = true;
        shard.lru.erase(it->second);
        shard.index.erase(it);
      } else if (expired(entry, now)) {
        count_expired = !entry.expired_counted;
        if (config_.keep_expired) {
          // Retained for get_stale; expiration is tallied once per entry.
          entry.expired_counted = true;
        } else {
          shard.lru.erase(it->second);
          shard.index.erase(it);
        }
      } else {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        out = entry.response;
      }
    }
  }
  if (out.has_value()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hit_counter_ != nullptr) {
      hit_counter_->add(1.0);
    }
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (miss_counter_ != nullptr) {
      miss_counter_->add(1.0);
    }
    if (count_expired) {
      expirations_.fetch_add(1, std::memory_order_relaxed);
      if (expire_counter_ != nullptr) {
        expire_counter_->add(1.0);
      }
    }
    if (poisoned) {
      count_poison();
    }
  }
  if (size_gauge_ != nullptr) {
    size_gauge_->set(static_cast<double>(size()));
  }
  return out;
}

std::optional<AllocationResponse> SolveCache::get_stale(
    const std::string& key, Clock::time_point now, double* stale_seconds) {
  Shard& shard = shard_for(key);
  std::optional<AllocationResponse> out;
  bool poisoned = false;
  double past_ttl = 0.0;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      Entry& entry = *it->second;
      if (response_checksum(entry.response) != entry.checksum) {
        poisoned = true;
        shard.lru.erase(it->second);
        shard.index.erase(it);
      } else {
        if (config_.ttl_seconds > 0.0) {
          const double age =
              std::chrono::duration<double>(now - entry.inserted).count();
          past_ttl = age > config_.ttl_seconds ? age - config_.ttl_seconds
                                               : 0.0;
        }
        // No LRU refresh: a stale serve should not outcompete fresh
        // entries for residency.
        out = entry.response;
      }
    }
  }
  if (out.has_value()) {
    stale_hits_.fetch_add(1, std::memory_order_relaxed);
    if (stale_counter_ != nullptr) {
      stale_counter_->add(1.0);
    }
    if (stale_seconds != nullptr) {
      *stale_seconds = past_ttl;
    }
  } else if (poisoned) {
    count_poison();
    if (size_gauge_ != nullptr) {
      size_gauge_->set(static_cast<double>(size()));
    }
  }
  return out;
}

void SolveCache::put(const std::string& key, AllocationResponse response,
                     Clock::time_point now) {
  const std::uint64_t checksum = response_checksum(response);
  Shard& shard = shard_for(key);
  long long evicted = 0;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      Entry& entry = *it->second;
      entry.response = std::move(response);
      entry.inserted = now;
      entry.checksum = checksum;
      entry.expired_counted = false;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, std::move(response), now, checksum,
                                 /*expired_counted=*/false});
      shard.index[key] = shard.lru.begin();
      while (shard.lru.size() > per_shard_capacity_) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        ++evicted;
      }
    }
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    if (evict_counter_ != nullptr) {
      evict_counter_->add(static_cast<double>(evicted));
    }
  }
  if (size_gauge_ != nullptr) {
    size_gauge_->set(static_cast<double>(size()));
  }
}

bool SolveCache::poison(const std::string& key) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    return false;
  }
  // Garble the stored answer without refreshing the checksum: the next
  // lookup's verification must catch the mismatch.
  AllocationResponse& stored = it->second->response;
  stored.nodes_explored = ~stored.nodes_explored;
  stored.tsync_used = -stored.tsync_used - 1.0;
  return true;
}

CacheStats SolveCache::stats() const {
  CacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.expirations = expirations_.load(std::memory_order_relaxed);
  out.stale_hits = stale_hits_.load(std::memory_order_relaxed);
  out.poison_detected = poison_detected_.load(std::memory_order_relaxed);
  out.size = size();
  return out;
}

std::size_t SolveCache::size() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace hslb::svc
