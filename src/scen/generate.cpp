#include "hslb/scen/generate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "hslb/common/error.hpp"
#include "hslb/common/rng.hpp"
#include "hslb/scen/build.hpp"
#include "hslb/scen/parse.hpp"

namespace hslb::scen {

std::vector<Family> corpus_families() {
  static const char* kSizes[] = {"small", "medium", "large"};
  std::vector<Family> families;
  for (int size = 0; size < 3; ++size) {
    for (int hetero = 0; hetero < 2; ++hetero) {
      for (int memcomm = 0; memcomm < 2; ++memcomm) {
        Family family;
        family.name = std::string(kSizes[size]) + "_" +
                      (hetero ? "hetero" : "homog") + "_" +
                      (memcomm ? "memcomm" : "plain");
        family.size_grade = size;
        family.heterogeneous = hetero != 0;
        family.memcomm = memcomm != 0;
        families.push_back(std::move(family));
      }
    }
  }
  return families;
}

namespace {

/// Component-name pool: cyclic CESM-flavored names with a numeric suffix.
std::string component_name(int j) {
  static const char* kStems[] = {"atm", "ocn", "ice", "lnd",
                                 "rof", "glc", "wav", "cpl"};
  const int stem = j % 8;
  const int round = j / 8;
  std::string name = kStems[stem];
  if (round > 0) {
    name += std::to_string(round + 1);
  }
  return name;
}

CurveSpec random_pow_curve(common::Rng* rng, int size_grade, double speed) {
  static const double kWorkLo[] = {2000.0, 8000.0, 20000.0};
  static const double kWorkHi[] = {20000.0, 60000.0, 150000.0};
  CurveSpec curve;
  curve.kind = CurveKind::kPow;
  curve.pow.a =
      speed * std::floor(rng->uniform(kWorkLo[size_grade], kWorkHi[size_grade]));
  // c >= 1 keeps the curve convex, so both solvers stay exact on every
  // generated model.
  curve.pow.b = speed * std::floor(rng->uniform(0.0, 40.0) * 1000.0) / 1000.0;
  curve.pow.c = std::floor(rng->uniform(1.0, 1.4) * 100.0) / 100.0;
  curve.pow.d = speed * std::floor(rng->uniform(1.0, 30.0) * 10.0) / 10.0;
  return curve;
}

/// Sample a convex pow curve at increasing knots; a convex function sampled
/// at increasing points has nondecreasing secant slopes, so the interpolant
/// stays convex by construction.
CurveSpec piecewise_from(const CurveSpec& base, common::Rng* rng,
                         int machine_nodes) {
  CurveSpec curve;
  curve.kind = CurveKind::kPiecewise;
  const int knots = static_cast<int>(rng->uniform_int(4, 6));
  std::vector<int> ns;
  ns.push_back(1);
  for (int i = 1; i < knots; ++i) {
    const double frac = static_cast<double>(i) / (knots - 1);
    const int n = std::max(
        ns.back() + 1,
        static_cast<int>(std::lround(1.0 + frac * (machine_nodes - 1))));
    ns.push_back(n);
  }
  for (const int n : ns) {
    CurvePoint pt;
    pt.nodes = static_cast<double>(n);
    pt.seconds =
        std::floor(base(static_cast<double>(n)) * 1000.0) / 1000.0;
    curve.points.push_back(pt);
  }
  return curve;
}

/// Recursive series-parallel tree over the index range [lo, hi): sequential
/// groups at even depth, concurrent at odd, with 2-3 random cuts per level.
ScheduleNode random_schedule(common::Rng* rng, int lo, int hi, int depth) {
  const int count = hi - lo;
  if (count == 1) {
    return ScheduleNode::leaf(lo);
  }
  const int groups =
      count == 2 ? 2 : static_cast<int>(rng->uniform_int(2, std::min(3, count)));
  // Random contiguous partition of [lo, hi) into `groups` nonempty chunks.
  std::vector<int> cuts;
  cuts.push_back(lo);
  std::vector<int> interior;
  for (int v = lo + 1; v < hi; ++v) {
    interior.push_back(v);
  }
  for (int g = 1; g < groups; ++g) {
    const std::size_t pick = static_cast<std::size_t>(
        rng->uniform_int(0, static_cast<std::int64_t>(interior.size()) - 1));
    cuts.push_back(interior[pick]);
    interior.erase(interior.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  cuts.push_back(hi);
  std::sort(cuts.begin(), cuts.end());
  std::vector<ScheduleNode> children;
  for (std::size_t g = 0; g + 1 < cuts.size(); ++g) {
    children.push_back(random_schedule(rng, cuts[g], cuts[g + 1], depth + 1));
  }
  return depth % 2 == 0 ? ScheduleNode::sequential(std::move(children))
                        : ScheduleNode::concurrent(std::move(children));
}

/// Exact separable optimum: the flat-sequential no-comm objective splits
/// into independent one-dimensional minimizations solved by integer scan.
double planted_optimum(const Scenario& scenario) {
  double total = 0.0;
  for (std::size_t j = 0; j < scenario.components.size(); ++j) {
    double best = lp::kInf;
    for (const int n : candidate_nodes(scenario, static_cast<int>(j))) {
      best = std::min(best,
                      scenario.components[j].curve(static_cast<double>(n)));
    }
    total += best;
  }
  return total;
}

double combine_times(const Scenario& scenario, const ScheduleNode& node,
                     const std::vector<double>& t_min) {
  switch (node.kind) {
    case ScheduleNode::Kind::kComponent:
      return t_min[static_cast<std::size_t>(node.component)];
    case ScheduleNode::Kind::kSequential: {
      double total = 0.0;
      for (const ScheduleNode& child : node.children) {
        total += combine_times(scenario, child, t_min);
      }
      return total;
    }
    case ScheduleNode::Kind::kConcurrent: {
      double worst = 0.0;
      for (const ScheduleNode& child : node.children) {
        worst = std::max(worst, combine_times(scenario, child, t_min));
      }
      return worst;
    }
  }
  return 0.0;
}

/// Certified lower bound: substitute every component's unconstrained minimum
/// time into the schedule combine (each leaf is individually lower-bounded,
/// and both combines are monotone), plus the comm penalty at the floors.
double certified_bound(const Scenario& scenario) {
  std::vector<double> t_min(scenario.components.size(), 0.0);
  for (std::size_t j = 0; j < scenario.components.size(); ++j) {
    double best = lp::kInf;
    for (const int n : candidate_nodes(scenario, static_cast<int>(j))) {
      best = std::min(best,
                      scenario.components[j].curve(static_cast<double>(n)));
    }
    t_min[j] = best;
  }
  double bound = combine_times(scenario, scenario.schedule, t_min);
  for (const CommEdge& edge : scenario.comm) {
    const std::vector<int> floors_a =
        candidate_nodes(scenario, edge.a);
    const std::vector<int> floors_b =
        candidate_nodes(scenario, edge.b);
    bound += edge.seconds_per_node *
             (floors_a.front() + floors_b.front());
  }
  return bound;
}

Scenario generate_one(const Family& family, int index,
                      const GenerateOptions& options) {
  const std::uint64_t sub_seed =
      options.seed ^
      (0x9E3779B97F4A7C15ull *
       static_cast<std::uint64_t>(
           (family.size_grade * 4 + (family.heterogeneous ? 2 : 0) +
            (family.memcomm ? 1 : 0)) *
               1000 +
           index + 1));
  common::Rng rng(sub_seed);

  static const int kCompLo[] = {3, 6, 10};
  static const int kCompHi[] = {5, 9, 14};
  static const int kNodeLo[] = {24, 96, 256};
  static const int kNodeHi[] = {64, 192, 512};
  static const int kCores[] = {4, 8, 16};

  Scenario scenario;
  scenario.name = family.name + "_" + std::to_string(index);
  scenario.machine.nodes = static_cast<int>(
      rng.uniform_int(kNodeLo[family.size_grade], kNodeHi[family.size_grade]));
  scenario.machine.cores_per_node =
      kCores[rng.uniform_int(0, 2)];
  if (family.memcomm) {
    scenario.machine.mem_gb_per_node = 64.0;
  }

  // Every third scenario is separable: flat sequential schedule, no comm,
  // pow/commpow-only convex curves -- its optimum is planted exactly.
  const bool separable = index % 3 == 0;
  const int count = static_cast<int>(
      rng.uniform_int(kCompLo[family.size_grade], kCompHi[family.size_grade]));

  for (int j = 0; j < count; ++j) {
    ScenComponent comp;
    comp.name = component_name(j);
    const double speed =
        family.heterogeneous
            ? std::floor(rng.uniform(0.5, 2.0) * 100.0) / 100.0
            : 1.0;
    const CurveSpec base = random_pow_curve(&rng, family.size_grade, speed);
    const double kind_draw = rng.uniform();
    if (separable) {
      comp.curve = base;
      if (kind_draw < 0.3) {
        comp.curve.kind = CurveKind::kCommPow;
        comp.curve.comm_per_node =
            std::floor(rng.uniform(0.001, 0.05) * 10000.0) / 10000.0;
      }
    } else if (kind_draw < 0.15) {
      comp.curve = piecewise_from(base, &rng, scenario.machine.nodes);
    } else if (kind_draw < 0.4) {
      comp.curve = base;
      comp.curve.kind = CurveKind::kCommPow;
      comp.curve.comm_per_node =
          std::floor(rng.uniform(0.001, 0.05) * 10000.0) / 10000.0;
    } else {
      comp.curve = base;
    }
    if (rng.uniform() < 0.2) {
      comp.min_nodes = static_cast<int>(rng.uniform_int(2, 4));
    }
    if (family.memcomm && rng.uniform() < 0.5) {
      comp.mem_gb =
          std::floor(rng.uniform(32.0, 64.0 * 6.0) * 10.0) / 10.0;
    }
    if (!separable && rng.uniform() < 0.15) {
      // Power-of-two allocation menu (exercises the SOS1 branching path).
      for (int v = 1; v <= scenario.machine.nodes; v *= 2) {
        if (v >= comp.min_nodes) {
          comp.allowed.push_back(v);
        }
      }
    }
    scenario.components.push_back(std::move(comp));
  }

  if (separable) {
    std::vector<ScheduleNode> leaves;
    for (int j = 0; j < count; ++j) {
      leaves.push_back(ScheduleNode::leaf(j));
    }
    scenario.schedule = count == 1 ? ScheduleNode::leaf(0)
                                   : ScheduleNode::sequential(std::move(leaves));
  } else {
    scenario.schedule = random_schedule(&rng, 0, count, 0);
    if (family.memcomm) {
      for (int j = 0; j + 1 < count; ++j) {
        if (rng.uniform() < 0.6) {
          CommEdge edge;
          edge.a = j;
          edge.b = j + 1;
          edge.seconds_per_node =
              std::floor(rng.uniform(0.002, 0.03) * 10000.0) / 10000.0;
          scenario.comm.push_back(edge);
        }
      }
    }
  }

  scenario.validate();
  if (separable) {
    scenario.expect.optimum = planted_optimum(scenario);
  } else {
    scenario.expect.bound = certified_bound(scenario);
    scenario.expect.incumbent = heuristic_allocation(scenario).objective;
  }
  return scenario;
}

std::string scenario_filename(const GeneratedScenario& entry) {
  char index[8];
  std::snprintf(index, sizeof(index), "%03d", entry.index_in_family);
  return "scen_" + entry.family + "_" + index + ".scen";
}

}  // namespace

std::vector<GeneratedScenario> generate_corpus(
    const GenerateOptions& options) {
  HSLB_REQUIRE(options.scenarios_per_family >= 1,
               "need at least one scenario per family");
  std::vector<GeneratedScenario> corpus;
  for (const Family& family : corpus_families()) {
    for (int index = 0; index < options.scenarios_per_family; ++index) {
      GeneratedScenario entry;
      entry.scenario = generate_one(family, index, options);
      entry.family = family.name;
      entry.index_in_family = index;
      corpus.push_back(std::move(entry));
    }
  }
  return corpus;
}

report::ResultSet corpus_manifest(
    const std::vector<GeneratedScenario>& corpus,
    const GenerateOptions& options) {
  report::ResultSet manifest;
  manifest.bench = "scen_corpus_manifest";
  manifest.title = "scenario corpus manifest";
  manifest.reference =
      "generalized N-component layouts (paper Sec. III layouts 1-3)";
  manifest.add_scalar("corpus", "seed", static_cast<double>(options.seed), "");
  manifest.add_scalar("corpus", "scenarios",
                      static_cast<double>(corpus.size()), "");
  manifest.add_scalar("corpus", "families",
                      static_cast<double>(corpus_families().size()), "");
  for (const GeneratedScenario& entry : corpus) {
    const double x = static_cast<double>(entry.index_in_family);
    const Scenario& s = entry.scenario;
    manifest.add(entry.family, x, "components",
                 static_cast<double>(s.components.size()), "",
                 report::Stability::kDeterministic, "index");
    manifest.add(entry.family, x, "machine_nodes",
                 static_cast<double>(s.machine.nodes), "nodes");
    manifest.add(entry.family, x, "planted",
                 s.expect.optimum.has_value() ? 1.0 : 0.0, "");
    if (s.expect.optimum.has_value()) {
      manifest.add(entry.family, x, "optimum_s", *s.expect.optimum, "s");
    }
    if (s.expect.bound.has_value()) {
      manifest.add(entry.family, x, "bound_s", *s.expect.bound, "s");
    }
    if (s.expect.incumbent.has_value()) {
      manifest.add(entry.family, x, "incumbent_s", *s.expect.incumbent, "s");
    }
  }
  manifest.canonicalize();
  return manifest;
}

bool write_corpus(const std::string& directory,
                  const std::vector<GeneratedScenario>& corpus,
                  const GenerateOptions& options) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return false;
  }
  for (const GeneratedScenario& entry : corpus) {
    const std::string path =
        (std::filesystem::path(directory) / scenario_filename(entry)).string();
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      return false;
    }
    out << print_scenario(entry.scenario, true);
    if (!out) {
      return false;
    }
  }
  return report::write_file(
      corpus_manifest(corpus, options),
      (std::filesystem::path(directory) / "corpus.json").string());
}

common::Expected<std::vector<Scenario>, CorpusLoadError> load_corpus(
    const std::string& directory) {
  std::error_code ec;
  std::vector<std::string> paths;
  for (const auto& dirent :
       std::filesystem::directory_iterator(directory, ec)) {
    if (dirent.path().extension() == ".scen") {
      paths.push_back(dirent.path().string());
    }
  }
  if (ec) {
    return common::make_unexpected(
        CorpusLoadError{directory, "cannot read directory: " + ec.message()});
  }
  std::sort(paths.begin(), paths.end());
  std::vector<Scenario> scenarios;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return common::make_unexpected(
          CorpusLoadError{path, "cannot open file"});
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = try_parse_scenario(text.str());
    if (!parsed) {
      return common::make_unexpected(
          CorpusLoadError{path, parsed.error().to_string()});
    }
    scenarios.push_back(std::move(parsed.value()));
  }
  if (scenarios.empty()) {
    return common::make_unexpected(
        CorpusLoadError{directory, "no .scen files found"});
  }
  return scenarios;
}

}  // namespace hslb::scen
