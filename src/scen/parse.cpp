#include "hslb/scen/parse.hpp"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "hslb/common/error.hpp"

namespace hslb::scen {

std::string ScenarioParseError::to_string() const {
  std::string out = "scenario parse error";
  if (line > 0) {
    out += " at line " + std::to_string(line);
  }
  out += ": " + message;
  if (!line_text.empty()) {
    out += "\n  | " + line_text;
  }
  return out;
}

namespace {

using common::make_unexpected;

struct Line {
  int number = 0;
  std::string text;
  std::vector<std::string> tokens;
};

ScenarioParseError error_at(const Line& line, std::string message) {
  return ScenarioParseError{std::move(message), line.number, line.text};
}

std::vector<std::string> split_ws(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

bool parse_number(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    return false;
  }
  *out = value;
  return true;
}

bool parse_int(const std::string& text, int* out) {
  double value = 0.0;
  if (!parse_number(text, &value)) {
    return false;
  }
  const int as_int = static_cast<int>(value);
  if (static_cast<double>(as_int) != value) {
    return false;
  }
  *out = as_int;
  return true;
}

/// Split "key=value"; returns false when there is no '='.
bool split_kv(const std::string& token, std::string* key, std::string* value) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    return false;
  }
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

std::vector<std::string> split_on(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

// --- Schedule expression parsing -------------------------------------------
//   expr := seq ('|' seq)*
//   seq  := atom ('->' atom)*
//   atom := name | '(' expr ')'

struct SchedTokens {
  std::vector<std::string> tokens;
  std::size_t pos = 0;

  bool done() const { return pos >= tokens.size(); }
  const std::string& peek() const { return tokens[pos]; }
  std::string next() { return tokens[pos++]; }
};

/// Tokenize a schedule expression: parens are their own tokens; '|' and '->'
/// and component names split on whitespace or paren boundaries.
std::vector<std::string> tokenize_schedule(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  const auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (const char ch : text) {
    if (ch == ' ' || ch == '\t') {
      flush();
    } else if (ch == '(' || ch == ')') {
      flush();
      tokens.push_back(std::string(1, ch));
    } else {
      current.push_back(ch);
    }
  }
  flush();
  return tokens;
}

ScenExpected<ScheduleNode> parse_expr(SchedTokens* toks, const Scenario& s,
                                      const Line& line);

ScenExpected<ScheduleNode> parse_atom(SchedTokens* toks, const Scenario& s,
                                      const Line& line) {
  if (toks->done()) {
    return make_unexpected(
        error_at(line, "schedule expression ended unexpectedly"));
  }
  const std::string token = toks->next();
  if (token == "(") {
    auto inner = parse_expr(toks, s, line);
    if (!inner) {
      return inner;
    }
    if (toks->done() || toks->next() != ")") {
      return make_unexpected(error_at(line, "unbalanced '(' in schedule"));
    }
    return inner;
  }
  if (token == ")" || token == "|" || token == "->") {
    return make_unexpected(
        error_at(line, "unexpected '" + token + "' in schedule"));
  }
  const int j = s.component_index(token);
  if (j < 0) {
    return make_unexpected(
        error_at(line, "schedule references unknown component '" + token +
                           "'"));
  }
  return ScheduleNode::leaf(j);
}

ScenExpected<ScheduleNode> parse_seq(SchedTokens* toks, const Scenario& s,
                                     const Line& line) {
  auto first = parse_atom(toks, s, line);
  if (!first) {
    return first;
  }
  std::vector<ScheduleNode> children;
  children.push_back(std::move(first.value()));
  while (!toks->done() && toks->peek() == "->") {
    toks->next();
    auto next = parse_atom(toks, s, line);
    if (!next) {
      return next;
    }
    children.push_back(std::move(next.value()));
  }
  if (children.size() == 1) {
    return std::move(children.front());
  }
  return ScheduleNode::sequential(std::move(children));
}

ScenExpected<ScheduleNode> parse_expr(SchedTokens* toks, const Scenario& s,
                                      const Line& line) {
  auto first = parse_seq(toks, s, line);
  if (!first) {
    return first;
  }
  std::vector<ScheduleNode> children;
  children.push_back(std::move(first.value()));
  while (!toks->done() && toks->peek() == "|") {
    toks->next();
    auto next = parse_seq(toks, s, line);
    if (!next) {
      return next;
    }
    children.push_back(std::move(next.value()));
  }
  if (children.size() == 1) {
    return std::move(children.front());
  }
  return ScheduleNode::concurrent(std::move(children));
}

// --- Directive parsers ------------------------------------------------------

ScenExpected<bool> parse_machine(const Line& line, ScenMachine* machine) {
  bool saw_nodes = false;
  for (std::size_t i = 1; i < line.tokens.size(); ++i) {
    std::string key;
    std::string value;
    if (!split_kv(line.tokens[i], &key, &value)) {
      return make_unexpected(error_at(
          line, "expected key=value, got '" + line.tokens[i] + "'"));
    }
    if (key == "nodes") {
      if (!parse_int(value, &machine->nodes) || machine->nodes < 1) {
        return make_unexpected(
            error_at(line, "machine nodes must be a positive integer"));
      }
      saw_nodes = true;
    } else if (key == "cores_per_node") {
      if (!parse_int(value, &machine->cores_per_node) ||
          machine->cores_per_node < 1) {
        return make_unexpected(
            error_at(line, "cores_per_node must be a positive integer"));
      }
    } else if (key == "mem_gb_per_node") {
      if (!parse_number(value, &machine->mem_gb_per_node) ||
          machine->mem_gb_per_node < 0.0) {
        return make_unexpected(
            error_at(line, "mem_gb_per_node must be a nonnegative number"));
      }
    } else {
      return make_unexpected(
          error_at(line, "unknown machine key '" + key + "'"));
    }
  }
  if (!saw_nodes) {
    return make_unexpected(error_at(line, "machine needs nodes=<count>"));
  }
  return true;
}

ScenExpected<ScenComponent> parse_component(const Line& line) {
  if (line.tokens.size() < 3) {
    return make_unexpected(
        error_at(line, "component needs a name and curve=<kind>"));
  }
  ScenComponent comp;
  comp.name = line.tokens[1];
  if (comp.name.find('=') != std::string::npos) {
    return make_unexpected(
        error_at(line, "component needs a name before its keys"));
  }
  bool saw_curve = false;
  for (std::size_t i = 2; i < line.tokens.size(); ++i) {
    std::string key;
    std::string value;
    if (!split_kv(line.tokens[i], &key, &value)) {
      return make_unexpected(error_at(
          line, "expected key=value, got '" + line.tokens[i] + "'"));
    }
    if (key == "curve") {
      if (value == "pow") {
        comp.curve.kind = CurveKind::kPow;
      } else if (value == "commpow") {
        comp.curve.kind = CurveKind::kCommPow;
      } else if (value == "piecewise") {
        comp.curve.kind = CurveKind::kPiecewise;
      } else {
        return make_unexpected(error_at(
            line, "unknown curve kind '" + value +
                      "' (want pow, commpow, or piecewise)"));
      }
      saw_curve = true;
    } else if (key == "a" || key == "b" || key == "c" || key == "d") {
      double num = 0.0;
      if (!parse_number(value, &num)) {
        return make_unexpected(
            error_at(line, "bad number for " + key + "=" + value));
      }
      if (key == "a") {
        comp.curve.pow.a = num;
      } else if (key == "b") {
        comp.curve.pow.b = num;
      } else if (key == "c") {
        comp.curve.pow.c = num;
      } else {
        comp.curve.pow.d = num;
      }
    } else if (key == "e") {
      if (!parse_number(value, &comp.curve.comm_per_node)) {
        return make_unexpected(
            error_at(line, "bad number for e=" + value));
      }
    } else if (key == "points") {
      for (const std::string& part : split_on(value, ',')) {
        const std::vector<std::string> pair = split_on(part, ':');
        CurvePoint pt;
        if (pair.size() != 2 || !parse_number(pair[0], &pt.nodes) ||
            !parse_number(pair[1], &pt.seconds)) {
          return make_unexpected(error_at(
              line, "bad piecewise knot '" + part + "' (want n:seconds)"));
        }
        comp.curve.points.push_back(pt);
      }
    } else if (key == "min_nodes") {
      if (!parse_int(value, &comp.min_nodes) || comp.min_nodes < 1) {
        return make_unexpected(
            error_at(line, "min_nodes must be a positive integer"));
      }
    } else if (key == "mem_gb") {
      if (!parse_number(value, &comp.mem_gb) || comp.mem_gb < 0.0) {
        return make_unexpected(
            error_at(line, "mem_gb must be a nonnegative number"));
      }
    } else if (key == "allowed") {
      for (const std::string& part : split_on(value, ',')) {
        int v = 0;
        if (!parse_int(part, &v) || v < 1) {
          return make_unexpected(error_at(
              line, "allowed counts must be positive integers, got '" +
                        part + "'"));
        }
        comp.allowed.push_back(v);
      }
    } else {
      return make_unexpected(
          error_at(line, "unknown component key '" + key + "'"));
    }
  }
  if (!saw_curve) {
    return make_unexpected(error_at(line, "component needs curve=<kind>"));
  }
  if (comp.curve.kind == CurveKind::kPiecewise) {
    if (comp.curve.points.size() < 2) {
      return make_unexpected(
          error_at(line, "piecewise curve needs points= with >= 2 knots"));
    }
  } else if (!comp.curve.points.empty()) {
    return make_unexpected(
        error_at(line, "points= is only valid with curve=piecewise"));
  }
  return comp;
}

/// drift <component> [rate=<r>] [noise=<s>] [shifts=<step>:<factor>,...]
/// The component must already be declared (same rule as comm edges).
ScenExpected<DriftSpec> parse_drift(const Line& line, const Scenario& s) {
  if (line.tokens.size() < 2) {
    return make_unexpected(
        error_at(line, "drift needs a component name"));
  }
  DriftSpec spec;
  spec.component = s.component_index(line.tokens[1]);
  if (spec.component < 0) {
    return make_unexpected(
        error_at(line, "drift references an unknown component"));
  }
  for (std::size_t i = 2; i < line.tokens.size(); ++i) {
    std::string key;
    std::string value;
    if (!split_kv(line.tokens[i], &key, &value)) {
      return make_unexpected(error_at(
          line, "expected key=value, got '" + line.tokens[i] + "'"));
    }
    if (key == "rate") {
      if (!parse_number(value, &spec.rate)) {
        return make_unexpected(error_at(line, "bad number for rate=" + value));
      }
    } else if (key == "noise") {
      if (!parse_number(value, &spec.noise) || spec.noise < 0.0 ||
          spec.noise >= 1.0) {
        return make_unexpected(
            error_at(line, "drift noise must be a number in [0, 1)"));
      }
    } else if (key == "shifts") {
      for (const std::string& part : split_on(value, ',')) {
        const std::vector<std::string> pair = split_on(part, ':');
        DriftShift shift;
        if (pair.size() != 2 || !parse_int(pair[0], &shift.step) ||
            !parse_number(pair[1], &shift.factor) || shift.step < 0 ||
            shift.factor <= 0.0) {
          return make_unexpected(error_at(
              line, "bad drift shift '" + part + "' (want step:factor)"));
        }
        spec.shifts.push_back(shift);
      }
    } else {
      return make_unexpected(error_at(line, "unknown drift key '" + key + "'"));
    }
  }
  return spec;
}

ScenExpected<bool> parse_expect(const Line& line, Expectations* expect) {
  if (line.tokens.size() < 2) {
    return make_unexpected(
        error_at(line, "expect needs optimum= or bound=/incumbent="));
  }
  for (std::size_t i = 1; i < line.tokens.size(); ++i) {
    std::string key;
    std::string value;
    double num = 0.0;
    if (!split_kv(line.tokens[i], &key, &value) ||
        !parse_number(value, &num)) {
      return make_unexpected(error_at(
          line, "expected key=<number>, got '" + line.tokens[i] + "'"));
    }
    if (key == "optimum") {
      expect->optimum = num;
    } else if (key == "bound") {
      expect->bound = num;
    } else if (key == "incumbent") {
      expect->incumbent = num;
    } else {
      return make_unexpected(
          error_at(line, "unknown expect key '" + key + "'"));
    }
  }
  return true;
}

}  // namespace

ScenExpected<Scenario> try_parse_scenario(const std::string& text) {
  Scenario scenario;
  bool saw_scenario = false;
  bool saw_machine = false;
  bool saw_schedule = false;
  Line schedule_line;  // deferred: schedule may name later components

  std::istringstream in(text);
  std::string raw;
  int number = 0;
  while (std::getline(in, raw)) {
    ++number;
    if (!raw.empty() && raw.back() == '\r') {
      raw.pop_back();
    }
    Line line{number, raw, split_ws(raw)};
    if (line.tokens.empty() || line.tokens.front()[0] == '#') {
      continue;
    }
    const std::string& directive = line.tokens.front();
    if (directive == "scenario") {
      if (saw_scenario) {
        return make_unexpected(error_at(line, "duplicate scenario line"));
      }
      if (line.tokens.size() != 2) {
        return make_unexpected(
            error_at(line, "scenario needs exactly one name"));
      }
      scenario.name = line.tokens[1];
      saw_scenario = true;
    } else if (directive == "machine") {
      if (saw_machine) {
        return make_unexpected(error_at(line, "duplicate machine line"));
      }
      auto ok = parse_machine(line, &scenario.machine);
      if (!ok) {
        return make_unexpected(std::move(ok.error()));
      }
      saw_machine = true;
    } else if (directive == "component") {
      auto comp = parse_component(line);
      if (!comp) {
        return make_unexpected(std::move(comp.error()));
      }
      if (scenario.component_index(comp->name) >= 0) {
        return make_unexpected(
            error_at(line, "duplicate component '" + comp->name + "'"));
      }
      scenario.components.push_back(std::move(comp.value()));
    } else if (directive == "comm") {
      if (line.tokens.size() != 4) {
        return make_unexpected(
            error_at(line, "comm needs: comm <a> <b> <seconds_per_node>"));
      }
      CommEdge edge;
      edge.a = scenario.component_index(line.tokens[1]);
      edge.b = scenario.component_index(line.tokens[2]);
      if (edge.a < 0 || edge.b < 0) {
        return make_unexpected(
            error_at(line, "comm references an unknown component"));
      }
      if (!parse_number(line.tokens[3], &edge.seconds_per_node) ||
          edge.seconds_per_node < 0.0) {
        return make_unexpected(
            error_at(line, "comm cost must be a nonnegative number"));
      }
      scenario.comm.push_back(edge);
    } else if (directive == "schedule") {
      if (saw_schedule) {
        return make_unexpected(error_at(line, "duplicate schedule line"));
      }
      if (line.tokens.size() < 2) {
        return make_unexpected(error_at(line, "schedule needs an expression"));
      }
      schedule_line = line;
      saw_schedule = true;
    } else if (directive == "drift") {
      auto spec = parse_drift(line, scenario);
      if (!spec) {
        return make_unexpected(std::move(spec.error()));
      }
      scenario.drift.push_back(std::move(spec.value()));
    } else if (directive == "expect") {
      auto ok = parse_expect(line, &scenario.expect);
      if (!ok) {
        return make_unexpected(std::move(ok.error()));
      }
    } else {
      return make_unexpected(
          error_at(line, "unknown directive '" + directive + "'"));
    }
  }

  if (!saw_scenario) {
    return make_unexpected(
        ScenarioParseError{"missing scenario <name> line", 0, ""});
  }
  if (!saw_machine) {
    return make_unexpected(
        ScenarioParseError{"missing machine line", 0, ""});
  }
  if (scenario.components.empty()) {
    return make_unexpected(
        ScenarioParseError{"scenario has no components", 0, ""});
  }
  if (!saw_schedule) {
    return make_unexpected(
        ScenarioParseError{"missing schedule line", 0, ""});
  }

  SchedTokens toks;
  toks.tokens = tokenize_schedule(
      schedule_line.text.substr(schedule_line.text.find("schedule") + 8));
  auto tree = parse_expr(&toks, scenario, schedule_line);
  if (!tree) {
    return make_unexpected(std::move(tree.error()));
  }
  if (!toks.done()) {
    return make_unexpected(error_at(
        schedule_line, "trailing '" + toks.peek() + "' after schedule"));
  }
  scenario.schedule = std::move(tree.value());

  try {
    scenario.validate();
  } catch (const InvalidArgument& ex) {
    return make_unexpected(ScenarioParseError{ex.what(), 0, ""});
  }
  return scenario;
}

Scenario parse_scenario(const std::string& text) {
  auto result = try_parse_scenario(text);
  if (!result) {
    throw InvalidArgument(result.error().to_string());
  }
  return std::move(result.value());
}

}  // namespace hslb::scen
