#include "hslb/scen/build.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"

namespace hslb::scen {

namespace {

/// The (time, requirement) variable pair a schedule subtree lowers to.
struct Lowered {
  std::size_t time_var = 0;
  std::size_t req_var = 0;
};

struct LowerContext {
  const Scenario* scenario = nullptr;
  minlp::Model* model = nullptr;
  const ScenarioModelVars* vars = nullptr;
  int group_counter = 0;
};

Lowered lower(LowerContext* ctx, const ScheduleNode& node) {
  if (node.kind == ScheduleNode::Kind::kComponent) {
    const std::size_t j = static_cast<std::size_t>(node.component);
    return Lowered{ctx->vars->times[j], ctx->vars->nodes[j]};
  }
  std::vector<Lowered> children;
  children.reserve(node.children.size());
  for (const ScheduleNode& child : node.children) {
    children.push_back(lower(ctx, child));
  }
  const std::string tag = std::to_string(ctx->group_counter++);
  const bool seq = node.kind == ScheduleNode::Kind::kSequential;
  const double nodes = static_cast<double>(ctx->scenario->machine.nodes);
  const std::size_t g = ctx->model->add_variable(
      (seq ? "G_seq" : "G_conc") + tag, minlp::VarType::kContinuous, 0.0,
      lp::kInf);
  const std::size_t r = ctx->model->add_variable(
      (seq ? "R_seq" : "R_conc") + tag, minlp::VarType::kContinuous, 0.0,
      nodes);
  if (seq) {
    // Time adds: G >= sum of child times.
    std::vector<std::pair<std::size_t, double>> row;
    row.emplace_back(g, 1.0);
    for (const Lowered& child : children) {
      row.emplace_back(child.time_var, -1.0);
    }
    ctx->model->add_linear(std::move(row), 0.0, lp::kInf, "seq_time" + tag);
    // Nodes are reused: R >= each child's requirement.
    for (std::size_t i = 0; i < children.size(); ++i) {
      ctx->model->add_linear({{r, 1.0}, {children[i].req_var, -1.0}}, 0.0,
                             lp::kInf,
                             "seq_req" + tag + "_" + std::to_string(i));
    }
  } else {
    // Time is the slowest child: G >= each child's time.
    for (std::size_t i = 0; i < children.size(); ++i) {
      ctx->model->add_linear({{g, 1.0}, {children[i].time_var, -1.0}}, 0.0,
                             lp::kInf,
                             "conc_time" + tag + "_" + std::to_string(i));
    }
    // Simultaneous occupancy: R >= sum of child requirements.
    std::vector<std::pair<std::size_t, double>> row;
    row.emplace_back(r, 1.0);
    for (const Lowered& child : children) {
      row.emplace_back(child.req_var, -1.0);
    }
    ctx->model->add_linear(std::move(row), 0.0, lp::kInf, "conc_req" + tag);
  }
  return Lowered{g, r};
}

}  // namespace

minlp::Model build_scenario_model(const Scenario& scenario,
                                  ScenarioModelVars* vars,
                                  const BuildOptions& options) {
  HSLB_REQUIRE(vars != nullptr, "build_scenario_model needs an output struct");
  scenario.validate();

  minlp::Model model;
  vars->nodes.clear();
  vars->times.clear();
  const double machine_nodes = static_cast<double>(scenario.machine.nodes);
  for (std::size_t j = 0; j < scenario.components.size(); ++j) {
    const ScenComponent& comp = scenario.components[j];
    const double lo =
        static_cast<double>(scenario.floor_of(static_cast<int>(j)));
    const std::size_t n = model.add_variable(
        "n_" + comp.name, minlp::VarType::kInteger, lo, machine_nodes);
    const std::size_t t = model.add_variable(
        "t_" + comp.name, minlp::VarType::kContinuous, 0.0, lp::kInf);
    model.add_link(t, n, comp.curve.as_univariate(), "fit_" + comp.name);
    if (!comp.allowed.empty()) {
      std::vector<double> values;
      for (const int v : candidate_nodes(scenario, static_cast<int>(j))) {
        values.push_back(static_cast<double>(v));
      }
      model.restrict_to_set(n, values, options.use_sos, "set_" + comp.name);
    }
    vars->nodes.push_back(n);
    vars->times.push_back(t);
  }

  LowerContext ctx{&scenario, &model, vars, 0};
  const Lowered root = lower(&ctx, scenario.schedule);
  vars->total_time = root.time_var;

  // Machine capacity: the schedule's peak requirement fits the machine.
  model.add_linear({{root.req_var, 1.0}}, -lp::kInf, machine_nodes,
                   "capacity");

  expr::Expr objective = model.var(root.time_var);
  for (const CommEdge& edge : scenario.comm) {
    objective =
        objective +
        edge.seconds_per_node *
            (model.var(vars->nodes[static_cast<std::size_t>(edge.a)]) +
             model.var(vars->nodes[static_cast<std::size_t>(edge.b)]));
  }
  model.minimize(objective);
  return model;
}

ScenAllocation extract_scenario_allocation(const Scenario& scenario,
                                           const ScenarioModelVars& vars,
                                           const minlp::MinlpResult& result) {
  HSLB_REQUIRE(result.x.size() > 0,
               "cannot extract an allocation from an empty result");
  ScenAllocation alloc;
  std::vector<int> nodes(scenario.components.size(), 0);
  for (std::size_t j = 0; j < scenario.components.size(); ++j) {
    const int n = static_cast<int>(
        std::llround(result.x[vars.nodes[j]]));
    nodes[j] = n;
    alloc.nodes[scenario.components[j].name] = n;
    alloc.seconds[scenario.components[j].name] =
        scenario.components[j].curve(static_cast<double>(n));
  }
  alloc.schedule_seconds = schedule_time(scenario, nodes);
  alloc.comm_penalty_seconds = comm_penalty(scenario, nodes);
  alloc.objective = alloc.schedule_seconds + alloc.comm_penalty_seconds;
  return alloc;
}

ScenAllocation heuristic_allocation(const Scenario& scenario) {
  scenario.validate();
  const std::size_t count = scenario.components.size();

  // Admissible counts per component, and each component's cursor into them.
  std::vector<std::vector<int>> candidates(count);
  std::vector<std::size_t> cursor(count, 0);
  std::vector<int> nodes(count);
  for (std::size_t j = 0; j < count; ++j) {
    candidates[j] = candidate_nodes(scenario, static_cast<int>(j));
    HSLB_REQUIRE(!candidates[j].empty(),
                 "no admissible node count for component '" +
                     scenario.components[j].name + "'");
    nodes[j] = candidates[j].front();
  }
  HSLB_REQUIRE(schedule_requirement(scenario, nodes) <= scenario.machine.nodes,
               "floor allocation does not fit the machine");

  // Greedy steepest descent over single-component increments: grant nodes to
  // whichever component's next admissible count most improves the objective
  // while the schedule still fits.  Deterministic (ties break on the lowest
  // component index).
  double current = evaluate_objective(scenario, nodes);
  while (true) {
    int best_j = -1;
    double best_obj = current;
    for (std::size_t j = 0; j < count; ++j) {
      if (cursor[j] + 1 >= candidates[j].size()) {
        continue;
      }
      const int prev = nodes[j];
      nodes[j] = candidates[j][cursor[j] + 1];
      if (schedule_requirement(scenario, nodes) <= scenario.machine.nodes) {
        const double obj = evaluate_objective(scenario, nodes);
        if (obj < best_obj - 1e-12) {
          best_obj = obj;
          best_j = static_cast<int>(j);
        }
      }
      nodes[j] = prev;
    }
    if (best_j < 0) {
      break;
    }
    ++cursor[static_cast<std::size_t>(best_j)];
    nodes[static_cast<std::size_t>(best_j)] =
        candidates[static_cast<std::size_t>(best_j)]
                  [cursor[static_cast<std::size_t>(best_j)]];
    current = best_obj;
  }

  ScenAllocation alloc;
  for (std::size_t j = 0; j < count; ++j) {
    alloc.nodes[scenario.components[j].name] = nodes[j];
    alloc.seconds[scenario.components[j].name] =
        scenario.components[j].curve(static_cast<double>(nodes[j]));
  }
  alloc.schedule_seconds = schedule_time(scenario, nodes);
  alloc.comm_penalty_seconds = comm_penalty(scenario, nodes);
  alloc.objective = alloc.schedule_seconds + alloc.comm_penalty_seconds;
  return alloc;
}

bool nlp_bb_eligible(const Scenario& scenario) {
  for (const ScenComponent& comp : scenario.components) {
    if (!comp.allowed.empty()) {
      return false;  // solve_nlp_bb rejects SOS1 sets
    }
    if (comp.curve.kind == CurveKind::kPiecewise) {
      return false;  // no symbolic form for the NLP relaxations
    }
    if (!comp.curve.is_convex()) {
      return false;
    }
  }
  return true;
}

}  // namespace hslb::scen
