#include "hslb/scen/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "hslb/common/error.hpp"
#include "hslb/common/numeric.hpp"

namespace hslb::scen {

const char* to_string(CurveKind kind) {
  switch (kind) {
    case CurveKind::kPow:
      return "pow";
    case CurveKind::kCommPow:
      return "commpow";
    case CurveKind::kPiecewise:
      return "piecewise";
  }
  return "unknown";
}

namespace {

/// Piecewise-linear evaluation with boundary-slope extension.  Knots are
/// validated (>= 2, strictly increasing n) before use.
double piecewise_value(const std::vector<CurvePoint>& pts, double n) {
  const std::size_t last = pts.size() - 1;
  if (n <= pts.front().nodes) {
    const double slope = (pts[1].seconds - pts[0].seconds) /
                         (pts[1].nodes - pts[0].nodes);
    return pts[0].seconds + slope * (n - pts[0].nodes);
  }
  if (n >= pts[last].nodes) {
    const double slope = (pts[last].seconds - pts[last - 1].seconds) /
                         (pts[last].nodes - pts[last - 1].nodes);
    return pts[last].seconds + slope * (n - pts[last].nodes);
  }
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (n <= pts[i].nodes) {
      const double slope = (pts[i].seconds - pts[i - 1].seconds) /
                           (pts[i].nodes - pts[i - 1].nodes);
      return pts[i - 1].seconds + slope * (n - pts[i - 1].nodes);
    }
  }
  return pts[last].seconds;
}

double piecewise_deriv(const std::vector<CurvePoint>& pts, double n) {
  const std::size_t last = pts.size() - 1;
  if (n <= pts.front().nodes) {
    return (pts[1].seconds - pts[0].seconds) / (pts[1].nodes - pts[0].nodes);
  }
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (n <= pts[i].nodes) {
      return (pts[i].seconds - pts[i - 1].seconds) /
             (pts[i].nodes - pts[i - 1].nodes);
    }
  }
  return (pts[last].seconds - pts[last - 1].seconds) /
         (pts[last].nodes - pts[last - 1].nodes);
}

}  // namespace

double CurveSpec::operator()(double n) const {
  switch (kind) {
    case CurveKind::kPow:
      return perf::PerfModel(pow)(n);
    case CurveKind::kCommPow:
      return perf::PerfModel(pow)(n) + comm_per_node * n;
    case CurveKind::kPiecewise:
      return piecewise_value(points, n);
  }
  return 0.0;
}

double CurveSpec::deriv(double n) const {
  switch (kind) {
    case CurveKind::kPow:
      return perf::PerfModel(pow).deriv(n);
    case CurveKind::kCommPow:
      return perf::PerfModel(pow).deriv(n) + comm_per_node;
    case CurveKind::kPiecewise:
      return piecewise_deriv(points, n);
  }
  return 0.0;
}

bool CurveSpec::is_convex() const {
  switch (kind) {
    case CurveKind::kPow:
    case CurveKind::kCommPow:
      // The linear comm term never changes curvature.
      return perf::PerfModel(pow).is_convex();
    case CurveKind::kPiecewise: {
      for (std::size_t i = 2; i < points.size(); ++i) {
        const double s0 = (points[i - 1].seconds - points[i - 2].seconds) /
                          (points[i - 1].nodes - points[i - 2].nodes);
        const double s1 = (points[i].seconds - points[i - 1].seconds) /
                          (points[i].nodes - points[i - 1].nodes);
        if (s1 < s0 - 1e-12 * std::max(1.0, std::fabs(s0))) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

minlp::UnivariateFn CurveSpec::as_univariate() const {
  minlp::UnivariateFn fn;
  const CurveSpec self = *this;  // curves are small value types; capture a copy
  fn.value = [self](double n) { return self(n); };
  fn.deriv = [self](double n) { return self.deriv(n); };
  fn.curvature =
      is_convex() ? minlp::Curvature::kConvex : minlp::Curvature::kAuto;
  if (kind == CurveKind::kPow) {
    const perf::PerfModel model(pow);
    fn.as_expr = [model](const expr::Expr& n) { return model.as_expr(n); };
  } else if (kind == CurveKind::kCommPow) {
    const perf::PerfModel model(pow);
    const double e = comm_per_node;
    fn.as_expr = [model, e](const expr::Expr& n) {
      return model.as_expr(n) + e * n;
    };
  }
  return fn;
}

ScheduleNode ScheduleNode::leaf(int component_index) {
  ScheduleNode node;
  node.kind = Kind::kComponent;
  node.component = component_index;
  return node;
}

ScheduleNode ScheduleNode::sequential(std::vector<ScheduleNode> children) {
  ScheduleNode node;
  node.kind = Kind::kSequential;
  node.children = std::move(children);
  return node;
}

ScheduleNode ScheduleNode::concurrent(std::vector<ScheduleNode> children) {
  ScheduleNode node;
  node.kind = Kind::kConcurrent;
  node.children = std::move(children);
  return node;
}

int Scenario::component_index(const std::string& component_name) const {
  for (std::size_t j = 0; j < components.size(); ++j) {
    if (components[j].name == component_name) {
      return static_cast<int>(j);
    }
  }
  return -1;
}

int Scenario::floor_of(int j) const {
  const ScenComponent& comp = components.at(static_cast<std::size_t>(j));
  int lo = std::max(1, comp.min_nodes);
  if (comp.mem_gb > 0.0 && machine.mem_gb_per_node > 0.0) {
    lo = std::max(
        lo, static_cast<int>(std::ceil(comp.mem_gb / machine.mem_gb_per_node -
                                       1e-9)));
  }
  return lo;
}

namespace {

void count_leaves(const ScheduleNode& node, std::vector<int>* uses) {
  if (node.kind == ScheduleNode::Kind::kComponent) {
    if (node.component >= 0 &&
        node.component < static_cast<int>(uses->size())) {
      ++(*uses)[static_cast<std::size_t>(node.component)];
    }
    return;
  }
  for (const ScheduleNode& child : node.children) {
    count_leaves(child, uses);
  }
}

double time_of(const Scenario& scenario, const ScheduleNode& node,
               const std::vector<int>& nodes) {
  switch (node.kind) {
    case ScheduleNode::Kind::kComponent:
      return scenario.components[static_cast<std::size_t>(node.component)]
          .curve(static_cast<double>(
              nodes[static_cast<std::size_t>(node.component)]));
    case ScheduleNode::Kind::kSequential: {
      double total = 0.0;
      for (const ScheduleNode& child : node.children) {
        total += time_of(scenario, child, nodes);
      }
      return total;
    }
    case ScheduleNode::Kind::kConcurrent: {
      double worst = 0.0;
      for (const ScheduleNode& child : node.children) {
        worst = std::max(worst, time_of(scenario, child, nodes));
      }
      return worst;
    }
  }
  return 0.0;
}

int requirement_of(const ScheduleNode& node, const std::vector<int>& nodes) {
  switch (node.kind) {
    case ScheduleNode::Kind::kComponent:
      return nodes[static_cast<std::size_t>(node.component)];
    case ScheduleNode::Kind::kSequential: {
      int peak = 0;
      for (const ScheduleNode& child : node.children) {
        peak = std::max(peak, requirement_of(child, nodes));
      }
      return peak;
    }
    case ScheduleNode::Kind::kConcurrent: {
      int total = 0;
      for (const ScheduleNode& child : node.children) {
        total += requirement_of(child, nodes);
      }
      return total;
    }
  }
  return 0;
}

}  // namespace

void Scenario::validate() const {
  HSLB_REQUIRE(!name.empty(), "scenario needs a name");
  HSLB_REQUIRE(machine.nodes >= 1, "machine needs at least one node");
  HSLB_REQUIRE(machine.cores_per_node >= 1,
               "machine needs at least one core per node");
  HSLB_REQUIRE(!components.empty(), "scenario needs at least one component");
  for (std::size_t j = 0; j < components.size(); ++j) {
    const ScenComponent& comp = components[j];
    HSLB_REQUIRE(!comp.name.empty(), "component needs a name");
    for (std::size_t k = j + 1; k < components.size(); ++k) {
      HSLB_REQUIRE(components[k].name != comp.name,
                   "duplicate component name '" + comp.name + "'");
    }
    const perf::PerfParams& p = comp.curve.pow;
    if (comp.curve.kind != CurveKind::kPiecewise) {
      HSLB_REQUIRE(p.a >= 0.0 && p.b >= 0.0 && p.d >= 0.0,
                   "curve coefficients must be nonnegative");
      HSLB_REQUIRE(comp.curve.comm_per_node >= 0.0,
                   "comm-per-node coefficient must be nonnegative");
    } else {
      HSLB_REQUIRE(comp.curve.points.size() >= 2,
                   "piecewise curve needs at least two knots");
      for (std::size_t i = 1; i < comp.curve.points.size(); ++i) {
        HSLB_REQUIRE(
            comp.curve.points[i].nodes > comp.curve.points[i - 1].nodes,
            "piecewise knots must have strictly increasing node counts");
      }
      for (const CurvePoint& pt : comp.curve.points) {
        HSLB_REQUIRE(pt.nodes > 0.0 && pt.seconds >= 0.0,
                     "piecewise knots need positive nodes and nonnegative"
                     " seconds");
      }
      HSLB_REQUIRE(comp.curve.is_convex(),
                   "piecewise curve must be convex (nondecreasing slopes)");
    }
    const int lo = floor_of(static_cast<int>(j));
    HSLB_REQUIRE(lo <= machine.nodes,
                 "allocation floor of '" + comp.name +
                     "' exceeds the machine");
    if (!comp.allowed.empty()) {
      bool any = false;
      for (const int v : comp.allowed) {
        any = any || (v >= lo && v <= machine.nodes);
      }
      HSLB_REQUIRE(any, "no allowed count of '" + comp.name +
                            "' fits the machine");
    }
  }
  for (const CommEdge& edge : comm) {
    HSLB_REQUIRE(edge.a >= 0 && edge.a < static_cast<int>(components.size()) &&
                     edge.b >= 0 &&
                     edge.b < static_cast<int>(components.size()),
                 "comm edge references an unknown component");
    HSLB_REQUIRE(edge.a != edge.b, "comm edge connects a component to itself");
    HSLB_REQUIRE(edge.seconds_per_node >= 0.0,
                 "comm cost must be nonnegative");
  }
  std::vector<bool> drifted(components.size(), false);
  for (const DriftSpec& spec : drift) {
    HSLB_REQUIRE(spec.component >= 0 &&
                     spec.component < static_cast<int>(components.size()),
                 "drift references an unknown component");
    HSLB_REQUIRE(!drifted[static_cast<std::size_t>(spec.component)],
                 "duplicate drift line for component '" +
                     components[static_cast<std::size_t>(spec.component)]
                         .name + "'");
    drifted[static_cast<std::size_t>(spec.component)] = true;
    HSLB_REQUIRE(std::isfinite(spec.rate), "drift rate must be finite");
    HSLB_REQUIRE(spec.noise >= 0.0 && spec.noise < 1.0,
                 "drift noise must be in [0, 1)");
    int previous = -1;
    for (const DriftShift& shift : spec.shifts) {
      HSLB_REQUIRE(shift.step > previous,
                   "drift shifts must have strictly increasing steps");
      HSLB_REQUIRE(shift.step >= 0, "drift shift steps must be nonnegative");
      HSLB_REQUIRE(shift.factor > 0.0 && std::isfinite(shift.factor),
                   "drift shift factors must be positive");
      previous = shift.step;
    }
  }
  std::vector<int> uses(components.size(), 0);
  count_leaves(schedule, &uses);
  for (std::size_t j = 0; j < components.size(); ++j) {
    HSLB_REQUIRE(uses[j] == 1, "schedule must reference component '" +
                                   components[j].name + "' exactly once");
  }
  // The minimal allocation must fit, or no feasible point exists.
  std::vector<int> floors(components.size());
  for (std::size_t j = 0; j < components.size(); ++j) {
    floors[j] = floor_of(static_cast<int>(j));
    if (!components[j].allowed.empty()) {
      int lowest = 0;
      for (const int v : components[j].allowed) {
        if (v >= floors[j] && v <= machine.nodes &&
            (lowest == 0 || v < lowest)) {
          lowest = v;
        }
      }
      floors[j] = lowest;
    }
  }
  HSLB_REQUIRE(requirement_of(schedule, floors) <= machine.nodes,
               "floor allocation already exceeds the machine");
}

double schedule_time(const Scenario& scenario, const std::vector<int>& nodes) {
  HSLB_REQUIRE(nodes.size() == scenario.components.size(),
               "allocation size mismatch");
  return time_of(scenario, scenario.schedule, nodes);
}

int schedule_requirement(const Scenario& scenario,
                         const std::vector<int>& nodes) {
  HSLB_REQUIRE(nodes.size() == scenario.components.size(),
               "allocation size mismatch");
  return requirement_of(scenario.schedule, nodes);
}

double comm_penalty(const Scenario& scenario, const std::vector<int>& nodes) {
  double total = 0.0;
  for (const CommEdge& edge : scenario.comm) {
    total += edge.seconds_per_node *
             (nodes[static_cast<std::size_t>(edge.a)] +
              nodes[static_cast<std::size_t>(edge.b)]);
  }
  return total;
}

double evaluate_objective(const Scenario& scenario,
                          const std::vector<int>& nodes) {
  return schedule_time(scenario, nodes) + comm_penalty(scenario, nodes);
}

bool is_separable(const Scenario& scenario) {
  if (!scenario.comm.empty()) {
    return false;
  }
  if (scenario.components.size() == 1) {
    return scenario.schedule.kind == ScheduleNode::Kind::kComponent;
  }
  if (scenario.schedule.kind != ScheduleNode::Kind::kSequential) {
    return false;
  }
  for (const ScheduleNode& child : scenario.schedule.children) {
    if (child.kind != ScheduleNode::Kind::kComponent) {
      return false;
    }
  }
  return true;
}

std::vector<int> candidate_nodes(const Scenario& scenario, int j) {
  const int lo = scenario.floor_of(j);
  const int hi = scenario.machine.nodes;
  const ScenComponent& comp =
      scenario.components[static_cast<std::size_t>(j)];
  std::vector<int> out;
  if (comp.allowed.empty()) {
    out.reserve(static_cast<std::size_t>(std::max(0, hi - lo + 1)));
    for (int n = lo; n <= hi; ++n) {
      out.push_back(n);
    }
  } else {
    for (const int v : comp.allowed) {
      if (v >= lo && v <= hi) {
        out.push_back(v);
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

// --- Canonical printer ------------------------------------------------------

namespace {

void print_schedule(const Scenario& scenario, const ScheduleNode& node,
                    std::string* out) {
  const auto print_child = [&](const ScheduleNode& child) {
    const bool group = child.kind != ScheduleNode::Kind::kComponent;
    if (group) {
      out->push_back('(');
    }
    print_schedule(scenario, child, out);
    if (group) {
      out->push_back(')');
    }
  };
  switch (node.kind) {
    case ScheduleNode::Kind::kComponent:
      *out += scenario.components[static_cast<std::size_t>(node.component)]
                  .name;
      return;
    case ScheduleNode::Kind::kSequential:
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) {
          *out += " -> ";
        }
        print_child(node.children[i]);
      }
      return;
    case ScheduleNode::Kind::kConcurrent:
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) {
          *out += " | ";
        }
        print_child(node.children[i]);
      }
      return;
  }
}

std::string num(double value) { return common::shortest_double(value); }

}  // namespace

std::string print_scenario(const Scenario& scenario, bool with_expectations) {
  std::string out;
  out += "scenario " + scenario.name + "\n";
  out += "machine nodes=" + std::to_string(scenario.machine.nodes) +
         " cores_per_node=" + std::to_string(scenario.machine.cores_per_node);
  if (scenario.machine.mem_gb_per_node > 0.0) {
    out += " mem_gb_per_node=" + num(scenario.machine.mem_gb_per_node);
  }
  out += "\n";
  for (const ScenComponent& comp : scenario.components) {
    out += "component " + comp.name + " curve=" + to_string(comp.curve.kind);
    if (comp.curve.kind == CurveKind::kPiecewise) {
      out += " points=";
      for (std::size_t i = 0; i < comp.curve.points.size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += num(comp.curve.points[i].nodes) + ":" +
               num(comp.curve.points[i].seconds);
      }
    } else {
      out += " a=" + num(comp.curve.pow.a) + " b=" + num(comp.curve.pow.b) +
             " c=" + num(comp.curve.pow.c) + " d=" + num(comp.curve.pow.d);
      if (comp.curve.kind == CurveKind::kCommPow) {
        out += " e=" + num(comp.curve.comm_per_node);
      }
    }
    if (comp.min_nodes > 1) {
      out += " min_nodes=" + std::to_string(comp.min_nodes);
    }
    if (comp.mem_gb > 0.0) {
      out += " mem_gb=" + num(comp.mem_gb);
    }
    if (!comp.allowed.empty()) {
      out += " allowed=";
      for (std::size_t i = 0; i < comp.allowed.size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += std::to_string(comp.allowed[i]);
      }
    }
    out += "\n";
  }
  for (const CommEdge& edge : scenario.comm) {
    out += "comm " +
           scenario.components[static_cast<std::size_t>(edge.a)].name + " " +
           scenario.components[static_cast<std::size_t>(edge.b)].name + " " +
           num(edge.seconds_per_node) + "\n";
  }
  out += "schedule ";
  print_schedule(scenario, scenario.schedule, &out);
  out += "\n";
  for (const DriftSpec& spec : scenario.drift) {
    out += "drift " +
           scenario.components[static_cast<std::size_t>(spec.component)].name;
    if (spec.rate != 0.0) {
      out += " rate=" + num(spec.rate);
    }
    if (spec.noise > 0.0) {
      out += " noise=" + num(spec.noise);
    }
    if (!spec.shifts.empty()) {
      out += " shifts=";
      for (std::size_t i = 0; i < spec.shifts.size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += std::to_string(spec.shifts[i].step) + ":" +
               num(spec.shifts[i].factor);
      }
    }
    out += "\n";
  }
  if (with_expectations) {
    if (scenario.expect.optimum.has_value()) {
      out += "expect optimum=" + num(*scenario.expect.optimum) + "\n";
    }
    if (scenario.expect.bound.has_value() ||
        scenario.expect.incumbent.has_value()) {
      out += "expect";
      if (scenario.expect.bound.has_value()) {
        out += " bound=" + num(*scenario.expect.bound);
      }
      if (scenario.expect.incumbent.has_value()) {
        out += " incumbent=" + num(*scenario.expect.incumbent);
      }
      out += "\n";
    }
  }
  return out;
}

std::string scenario_fingerprint(const Scenario& scenario) {
  const std::string canonical = print_scenario(scenario, false);
  std::uint64_t hash = 14695981039346656037ull;
  for (const char ch : canonical) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace hslb::scen
