#include "hslb/obs/attribution.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <unordered_map>

#include "hslb/common/numeric.hpp"
#include "hslb/common/table.hpp"

namespace hslb::obs {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kAdmission:
      return "admission";
    case Phase::kQueue:
      return "queue";
    case Phase::kCache:
      return "cache";
    case Phase::kCoalesce:
      return "coalesce";
    case Phase::kSolveLp:
      return "solve.lp";
    case Phase::kSolveOther:
      return "solve.other";
    case Phase::kOther:
      return "other";
  }
  return "?";
}

namespace {

double find_number(const report::Json& object, const std::string& key,
                   double fallback) {
  const report::Json* value = object.find(key);
  return value != nullptr && value->is_number() ? value->as_number()
                                                : fallback;
}

std::string find_string(const report::Json& object, const std::string& key) {
  const report::Json* value = object.find(key);
  return value != nullptr && value->is_string() ? value->as_string()
                                                : std::string();
}

}  // namespace

common::Expected<std::vector<TraceEvent>, std::string> parse_chrome_trace(
    const std::string& json_text) {
  const auto parsed = report::parse_json(json_text);
  if (!parsed) {
    return common::make_unexpected("trace JSON parse error at line " +
                                   std::to_string(parsed.error().line) +
                                   ": " + parsed.error().message);
  }
  const report::Json* events = parsed->find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return common::make_unexpected(
        std::string("trace file has no traceEvents array"));
  }
  std::vector<TraceEvent> out;
  out.reserve(events->size());
  for (std::size_t i = 0; i < events->size(); ++i) {
    const report::Json& entry = events->at(i);
    if (!entry.is_object() || find_string(entry, "ph") != "X") {
      continue;  // counter samples and metadata records
    }
    TraceEvent e;
    e.name = find_string(entry, "name");
    e.category = find_string(entry, "cat");
    e.start_us = find_number(entry, "ts", 0.0);
    e.duration_us = find_number(entry, "dur", 0.0);
    e.thread_id = static_cast<int>(find_number(entry, "tid", 0.0));
    const report::Json* args = entry.find("args");
    if (args != nullptr && args->is_object()) {
      for (const auto& [key, value] : args->items()) {
        if (key == "depth" && value.is_number()) {
          e.depth = static_cast<int>(value.as_number());
        } else if (key == "span" && value.is_number()) {
          e.id = static_cast<std::uint64_t>(value.as_number());
        } else if (key == "parent" && value.is_number()) {
          e.parent = static_cast<std::uint64_t>(value.as_number());
        } else if (value.is_string()) {
          e.args.emplace_back(key, value.as_string());
        } else if (value.is_number()) {
          e.args.emplace_back(key,
                              common::shortest_double(value.as_number()));
        }
      }
    }
    out.push_back(std::move(e));
  }
  return out;
}

namespace {

const std::string* find_arg(const TraceEvent& event, const std::string& key) {
  for (const auto& [k, v] : event.args) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

/// Per-request share vector: phases as fractions of total latency, with
/// kOther the residual so the vector sums to exactly 1.  If attributed time
/// exceeds the total (cross-thread clock skew), the attributed phases are
/// scaled down instead of going negative.
std::array<double, kPhaseCount> shares_of(const RequestTimeline& request) {
  std::array<double, kPhaseCount> share{};
  if (request.total_ms <= 0.0) {
    share[static_cast<std::size_t>(Phase::kOther)] = 1.0;
    return share;
  }
  double attributed = 0.0;
  for (std::size_t p = 0; p + 1 < kPhaseCount; ++p) {
    share[p] = request.phase_ms[p] / request.total_ms;
    attributed += share[p];
  }
  if (attributed > 1.0) {
    for (std::size_t p = 0; p + 1 < kPhaseCount; ++p) {
      share[p] /= attributed;
    }
    attributed = 1.0;
  }
  share[static_cast<std::size_t>(Phase::kOther)] = 1.0 - attributed;
  return share;
}

}  // namespace

Attribution attribute_phases(const std::vector<TraceEvent>& events,
                             double workers) {
  Attribution out;
  std::unordered_map<std::uint64_t, std::vector<const TraceEvent*>> children;
  for (const TraceEvent& e : events) {
    if (e.parent != 0) {
      children[e.parent].push_back(&e);
    }
  }

  // Trace-wide LP engine rollup: every minlp.epoch span, whether or not it
  // hangs under a svc.request (a standalone solver trace has none).
  const auto arg_number = [](const TraceEvent& e, const char* key) {
    const std::string* v = find_arg(e, key);
    return v != nullptr ? std::strtod(v->c_str(), nullptr) : 0.0;
  };
  for (const TraceEvent& e : events) {
    if (e.name != "minlp.epoch") {
      continue;
    }
    out.lp.epochs += 1;
    out.lp.lp_ms += arg_number(e, "lp_ms");
    out.lp.factor_ms += arg_number(e, "factor_ms");
    out.lp.update_ms += arg_number(e, "update_ms");
    out.lp.pivot_ms += arg_number(e, "pivot_ms");
    out.lp.eta_updates += static_cast<long>(arg_number(e, "eta_updates"));
    out.lp.refactorizations +=
        static_cast<long>(arg_number(e, "refactorizations"));
    out.lp.factor_inherits +=
        static_cast<long>(arg_number(e, "factor_inherits"));
    out.lp.bt_fallbacks += static_cast<long>(arg_number(e, "bt_fallbacks"));
  }

  double wall_start = std::numeric_limits<double>::infinity();
  double wall_end = -std::numeric_limits<double>::infinity();
  for (const TraceEvent& e : events) {
    if (e.name != "svc.request") {
      continue;
    }
    RequestTimeline r;
    r.span = e.id;
    r.start_us = e.start_us;
    r.total_ms = e.duration_us / 1e3;
    if (const std::string* id = find_arg(e, "id")) {
      r.label = *id;
    }
    wall_start = std::min(wall_start, e.start_us);
    wall_end = std::max(wall_end, e.start_us + e.duration_us);

    double solve_ms = 0.0;
    const auto direct = children.find(e.id);
    if (direct != children.end()) {
      for (const TraceEvent* child : direct->second) {
        const double ms = child->duration_us / 1e3;
        if (child->name == "svc.phase.admission") {
          r.phase_ms[static_cast<std::size_t>(Phase::kAdmission)] += ms;
        } else if (child->name == "svc.phase.queue") {
          r.phase_ms[static_cast<std::size_t>(Phase::kQueue)] += ms;
        } else if (child->name == "svc.phase.cache") {
          r.phase_ms[static_cast<std::size_t>(Phase::kCache)] += ms;
        } else if (child->name == "svc.phase.coalesce") {
          r.phase_ms[static_cast<std::size_t>(Phase::kCoalesce)] += ms;
        } else if (child->name == "svc.phase.solve") {
          solve_ms += ms;
        }
      }
    }
    // LP time inside the solve phase: minlp.epoch descendants carry their
    // summed LP wall time as an "lp_ms" arg.
    double lp_ms = 0.0;
    std::vector<std::uint64_t> frontier{e.id};
    while (!frontier.empty()) {
      const std::uint64_t id = frontier.back();
      frontier.pop_back();
      const auto it = children.find(id);
      if (it == children.end()) {
        continue;
      }
      for (const TraceEvent* child : it->second) {
        if (child->name == "minlp.epoch") {
          if (const std::string* tag = find_arg(*child, "lp_ms")) {
            lp_ms += std::strtod(tag->c_str(), nullptr);
          }
        }
        if (child->id != 0) {
          frontier.push_back(child->id);
        }
      }
    }
    const double solve_lp = std::min(lp_ms, solve_ms);
    r.phase_ms[static_cast<std::size_t>(Phase::kSolveLp)] = solve_lp;
    r.phase_ms[static_cast<std::size_t>(Phase::kSolveOther)] =
        solve_ms - solve_lp;
    double attributed = 0.0;
    for (std::size_t p = 0; p + 1 < kPhaseCount; ++p) {
      attributed += r.phase_ms[p];
    }
    r.phase_ms[static_cast<std::size_t>(Phase::kOther)] =
        std::max(0.0, r.total_ms - attributed);
    out.requests.push_back(std::move(r));
  }

  std::sort(out.requests.begin(), out.requests.end(),
            [](const RequestTimeline& a, const RequestTimeline& b) {
              return a.total_ms != b.total_ms ? a.total_ms < b.total_ms
                                              : a.span < b.span;
            });

  const std::size_t n = out.requests.size();
  if (n > 0) {
    for (const double q : {0.5, 0.9, 0.99}) {
      const std::size_t rank = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(q * static_cast<double>(n))));
      const std::size_t index = rank - 1;
      // Average shares over a deterministic window (+-5% of the sample)
      // around the rank so single-request noise does not flip the verdict.
      const std::size_t half = std::max<std::size_t>(1, n / 20);
      const std::size_t lo = index >= half ? index - half : 0;
      const std::size_t hi = std::min(n - 1, index + half);
      PercentileAttribution pa;
      pa.quantile = q;
      pa.latency_ms = out.requests[index].total_ms;
      for (std::size_t i = lo; i <= hi; ++i) {
        const auto share = shares_of(out.requests[i]);
        for (std::size_t p = 0; p < kPhaseCount; ++p) {
          pa.share[p] += share[p];
        }
      }
      const double window = static_cast<double>(hi - lo + 1);
      for (std::size_t p = 0; p < kPhaseCount; ++p) {
        pa.share[p] /= window;
      }
      out.percentiles.push_back(pa);
    }
  }

  // Queueing sanity check: arrivals over the trace wall span vs the mean
  // worker-side (cache + solve) service time.
  QueueingCheck& queueing = out.queueing;
  queueing.workers = workers;
  queueing.utilization = std::numeric_limits<double>::quiet_NaN();
  if (n > 0 && wall_end > wall_start) {
    queueing.wall_s = (wall_end - wall_start) / 1e6;
    queueing.arrival_rate_hz = static_cast<double>(n) / queueing.wall_s;
    double worker_ms_total = 0.0;
    std::size_t worker_requests = 0;
    for (const RequestTimeline& r : out.requests) {
      const double worker_ms =
          r.phase_ms[static_cast<std::size_t>(Phase::kCache)] +
          r.phase_ms[static_cast<std::size_t>(Phase::kSolveLp)] +
          r.phase_ms[static_cast<std::size_t>(Phase::kSolveOther)];
      if (worker_ms > 0.0) {
        worker_ms_total += worker_ms;
        ++worker_requests;
      }
    }
    if (worker_requests > 0 && worker_ms_total > 0.0) {
      queueing.per_worker_service_rate_hz =
          1e3 * static_cast<double>(worker_requests) / worker_ms_total;
    }
    if (workers > 0.0 && queueing.per_worker_service_rate_hz > 0.0) {
      queueing.utilization = queueing.arrival_rate_hz /
                             (workers * queueing.per_worker_service_rate_hz);
    }
  }
  if (std::isnan(queueing.utilization)) {
    queueing.verdict = "unknown";
  } else if (queueing.utilization >= 0.9) {
    queueing.verdict = "saturated";
  } else if (queueing.utilization >= 0.7) {
    queueing.verdict = "near-saturation";
  } else {
    queueing.verdict = "headroom";
  }

  if (!out.percentiles.empty()) {
    const PercentileAttribution& p99 = out.percentiles.back();
    std::size_t best = 0;
    for (std::size_t p = 1; p < kPhaseCount; ++p) {
      if (p99.share[p] > p99.share[best]) {
        best = p;
      }
    }
    out.dominant_p99_phase = phase_name(static_cast<Phase>(best));
    out.verdict = "p99 " + common::format_fixed(p99.latency_ms, 1) +
                  " ms is dominated by " + out.dominant_p99_phase + " (" +
                  common::format_fixed(100.0 * p99.share[best], 1) +
                  "% of request time); queueing check: " + queueing.verdict;
  } else {
    out.dominant_p99_phase = "none";
    out.verdict = "no svc.request spans in trace";
  }
  return out;
}

common::Table attribution_table(const Attribution& attribution) {
  common::Table table({"percentile", "latency,ms", "admission%", "queue%",
                       "cache%", "coalesce%", "solve.lp%", "solve.other%",
                       "other%"});
  table.set_align(0, common::Align::kLeft);
  for (const PercentileAttribution& pa : attribution.percentiles) {
    table.add_row();
    table.cell("p" + std::to_string(static_cast<long long>(
                         std::round(pa.quantile * 100.0))));
    table.cell(pa.latency_ms, 3);
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      table.cell(100.0 * pa.share[p], 1);
    }
  }
  return table;
}

namespace {

report::Json number_or_null(double value) {
  return std::isnan(value) ? report::Json::null()
                           : report::Json::number(value);
}

}  // namespace

report::Json attribution_json(const Attribution& attribution) {
  report::Json out = report::Json::object();
  out.set("requests",
          report::Json::integer(
              static_cast<long long>(attribution.requests.size())));
  out.set("dominant_p99_phase",
          report::Json::string(attribution.dominant_p99_phase));
  out.set("verdict", report::Json::string(attribution.verdict));

  report::Json queueing = report::Json::object();
  queueing.set("wall_s", number_or_null(attribution.queueing.wall_s));
  queueing.set("arrival_rate_hz",
               number_or_null(attribution.queueing.arrival_rate_hz));
  queueing.set(
      "per_worker_service_rate_hz",
      number_or_null(attribution.queueing.per_worker_service_rate_hz));
  queueing.set("workers", number_or_null(attribution.queueing.workers));
  queueing.set("utilization",
               number_or_null(attribution.queueing.utilization));
  queueing.set("verdict",
               report::Json::string(attribution.queueing.verdict));
  out.set("queueing", std::move(queueing));

  report::Json lp = report::Json::object();
  lp.set("epochs", report::Json::integer(attribution.lp.epochs));
  lp.set("lp_ms", report::Json::number(attribution.lp.lp_ms));
  lp.set("factor_ms", report::Json::number(attribution.lp.factor_ms));
  lp.set("update_ms", report::Json::number(attribution.lp.update_ms));
  lp.set("pivot_ms", report::Json::number(attribution.lp.pivot_ms));
  lp.set("eta_updates", report::Json::integer(attribution.lp.eta_updates));
  lp.set("refactorizations",
         report::Json::integer(attribution.lp.refactorizations));
  lp.set("factor_inherits",
         report::Json::integer(attribution.lp.factor_inherits));
  lp.set("bt_fallbacks", report::Json::integer(attribution.lp.bt_fallbacks));
  out.set("lp_engine", std::move(lp));

  report::Json percentiles = report::Json::array();
  for (const PercentileAttribution& pa : attribution.percentiles) {
    report::Json row = report::Json::object();
    row.set("q", report::Json::number(pa.quantile));
    row.set("latency_ms", number_or_null(pa.latency_ms));
    report::Json shares = report::Json::object();
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      shares.set(phase_name(static_cast<Phase>(p)),
                 report::Json::number(pa.share[p]));
    }
    row.set("shares", std::move(shares));
    percentiles.push_back(std::move(row));
  }
  out.set("percentiles", std::move(percentiles));
  return out;
}

}  // namespace hslb::obs
