#include "hslb/obs/exposition.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "hslb/common/error.hpp"
#include "hslb/common/numeric.hpp"

namespace hslb::obs {

namespace {

std::string format_value(double value) {
  if (std::isinf(value)) {
    return value > 0 ? "+Inf" : "-Inf";
  }
  return common::shortest_double(value);
}

}  // namespace

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " counter\n";
    os << p << ' ' << format_value(value) << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " gauge\n";
    os << p << ' ' << format_value(value) << '\n';
  }
  for (const MetricsSnapshot::HistogramRow& row : snapshot.histograms) {
    const std::string p = prometheus_name(row.name);
    os << "# TYPE " << p << " histogram\n";
    // The full ladder renders even at count=0 so every scrape exposes the
    // same series set (schema-stable scrapes).
    long long cumulative = 0;
    for (std::size_t b = 0; b < row.buckets.size(); ++b) {
      cumulative += row.buckets[b];
      const std::string le = b < row.bounds.size()
                                 ? common::shortest_double(row.bounds[b])
                                 : std::string("+Inf");
      os << p << "_bucket{le=\"" << le << "\"} " << cumulative << '\n';
    }
    os << p << "_sum " << format_value(row.sum) << '\n';
    os << p << "_count " << row.count << '\n';
  }
  return os.str();
}

namespace {

/// In-flight histogram assembly while parsing exposition text.
struct HistogramBuild {
  std::vector<double> bounds;
  std::vector<long long> cumulative;
  double sum = 0.0;
  long long count = 0;
  bool saw_count = false;
};

bool parse_double(const std::string& text, double* out) {
  if (text == "+Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && end != text.c_str();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

common::Expected<MetricsSnapshot, std::string> parse_prometheus(
    const std::string& text) {
  MetricsSnapshot out;
  // TYPE declarations in appearance order drive the output layout; sample
  // lines fill the declared slots.
  std::vector<std::pair<std::string, std::string>> declared;  // name, kind
  std::map<std::string, std::string> kind_of;
  std::map<std::string, HistogramBuild> builds;
  std::map<std::string, double> scalar_values;

  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    const auto fail = [&](const std::string& why) {
      return common::make_unexpected("metrics line " +
                                     std::to_string(line_no) + ": " + why);
    };
    if (line[0] == '#') {
      std::istringstream header(line);
      std::string hash, keyword, name, kind;
      header >> hash >> keyword >> name >> kind;
      if (keyword == "TYPE") {
        if (name.empty() || kind.empty()) {
          return fail("malformed TYPE header");
        }
        declared.emplace_back(name, kind);
        kind_of[name] = kind;
      }
      continue;  // other comments are legal and ignored
    }
    // Sample line: name[{labels}] value
    const std::size_t space = line.find_last_of(' ');
    if (space == std::string::npos || space + 1 >= line.size()) {
      return fail("expected 'name value'");
    }
    const std::string series = line.substr(0, space);
    double value = 0.0;
    if (!parse_double(line.substr(space + 1), &value)) {
      return fail("unparseable value");
    }
    const std::size_t brace = series.find('{');
    const std::string series_name =
        brace == std::string::npos ? series : series.substr(0, brace);
    if (ends_with(series_name, "_bucket") && brace != std::string::npos) {
      const std::string base = series_name.substr(0, series_name.size() - 7);
      const std::size_t le_start = series.find("le=\"", brace);
      const std::size_t le_end =
          le_start == std::string::npos ? std::string::npos
                                        : series.find('"', le_start + 4);
      if (le_end == std::string::npos) {
        return fail("bucket line without le label");
      }
      double edge = 0.0;
      if (!parse_double(series.substr(le_start + 4, le_end - le_start - 4),
                        &edge)) {
        return fail("unparseable le edge");
      }
      HistogramBuild& build = builds[base];
      if (!std::isinf(edge)) {
        build.bounds.push_back(edge);
      }
      build.cumulative.push_back(static_cast<long long>(value));
      continue;
    }
    if (ends_with(series_name, "_sum") &&
        kind_of.count(series_name.substr(0, series_name.size() - 4)) > 0 &&
        kind_of[series_name.substr(0, series_name.size() - 4)] ==
            "histogram") {
      builds[series_name.substr(0, series_name.size() - 4)].sum = value;
      continue;
    }
    if (ends_with(series_name, "_count") &&
        kind_of.count(series_name.substr(0, series_name.size() - 6)) > 0 &&
        kind_of[series_name.substr(0, series_name.size() - 6)] ==
            "histogram") {
      HistogramBuild& build =
          builds[series_name.substr(0, series_name.size() - 6)];
      build.count = static_cast<long long>(value);
      build.saw_count = true;
      continue;
    }
    scalar_values[series_name] = value;
  }

  for (const auto& [name, kind] : declared) {
    if (kind == "counter" || kind == "gauge") {
      const auto it = scalar_values.find(name);
      if (it == scalar_values.end()) {
        return common::make_unexpected("declared " + kind + " " + name +
                                       " has no sample line");
      }
      (kind == "counter" ? out.counters : out.gauges)
          .emplace_back(name, it->second);
      continue;
    }
    if (kind == "histogram") {
      const auto it = builds.find(name);
      if (it == builds.end() || it->second.cumulative.empty() ||
          !it->second.saw_count) {
        return common::make_unexpected("declared histogram " + name +
                                       " is incomplete");
      }
      const HistogramBuild& build = it->second;
      if (build.cumulative.size() != build.bounds.size() + 1) {
        return common::make_unexpected("histogram " + name +
                                       " is missing its +Inf bucket");
      }
      MetricsSnapshot::HistogramRow row;
      row.name = name;
      row.count = build.count;
      row.sum = build.sum;
      row.bounds = build.bounds;
      row.buckets.resize(build.cumulative.size());
      long long previous = 0;
      for (std::size_t b = 0; b < build.cumulative.size(); ++b) {
        if (build.cumulative[b] < previous) {
          return common::make_unexpected("histogram " + name +
                                         " has a non-monotone bucket ladder");
        }
        row.buckets[b] = build.cumulative[b] - previous;
        previous = build.cumulative[b];
      }
      out.histograms.push_back(std::move(row));
      continue;
    }
    return common::make_unexpected("unsupported TYPE kind '" + kind + "'");
  }
  return out;
}

bool write_metrics_file(const std::string& path,
                        const MetricsSnapshot& snapshot) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    out << render_prometheus(snapshot);
    if (!out) {
      return false;
    }
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

struct ExpositionServer::Impl {
  int listen_fd = -1;
  std::atomic<bool> stopping{false};
  std::thread loop;
};

namespace {

/// Push the whole payload even when the kernel takes it in pieces: send()
/// on a socket may accept only part of a multi-KB scrape (small send
/// buffers, slow readers) and may be interrupted by a signal before
/// accepting anything.  EINTR retries; a short send resumes at the first
/// unsent byte.  MSG_NOSIGNAL turns a dead peer into EPIPE instead of a
/// process-killing SIGPIPE.  Returns false when the peer is gone.
bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return false;  // peer went away; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ExpositionServer::ExpositionServer(const Registry* registry, int port)
    : impl_(new Impl), registry_(registry) {
  HSLB_REQUIRE(registry != nullptr, "ExpositionServer needs a registry");
  HSLB_REQUIRE(port >= 0 && port <= 65535, "port out of range");
  impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  HSLB_REQUIRE(impl_->listen_fd >= 0, "socket() failed");
  const int reuse = 1;
  ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse,
               sizeof reuse);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(impl_->listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(impl_->listen_fd, 16) != 0) {
    const int saved = errno;
    ::close(impl_->listen_fd);
    delete impl_;
    impl_ = nullptr;
    throw Error("metrics port bind failed: " +
                std::string(std::strerror(saved)));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                &bound_len);
  port_ = static_cast<int>(ntohs(bound.sin_port));

  impl_->loop = std::thread([impl = impl_, registry = registry_] {
    while (!impl->stopping.load(std::memory_order_acquire)) {
      const int client = ::accept(impl->listen_fd, nullptr, nullptr);
      if (client < 0) {
        if (impl->stopping.load(std::memory_order_acquire)) {
          break;
        }
        continue;
      }
      // Drain whatever request line arrived; every path serves /metrics.
      char buffer[1024];
      const ssize_t drained = ::read(client, buffer, sizeof buffer);
      static_cast<void>(drained);
      const std::string body = render_prometheus(registry->snapshot());
      std::ostringstream response;
      response << "HTTP/1.0 200 OK\r\n"
               << "Content-Type: text/plain; version=0.0.4\r\n"
               << "Content-Length: " << body.size() << "\r\n"
               << "Connection: close\r\n\r\n"
               << body;
      write_all(client, response.str());
      ::close(client);
    }
  });
}

void ExpositionServer::stop() {
  if (impl_ == nullptr) {
    return;
  }
  impl_->stopping.store(true, std::memory_order_release);
  ::shutdown(impl_->listen_fd, SHUT_RDWR);
  if (impl_->loop.joinable()) {
    impl_->loop.join();
  }
  ::close(impl_->listen_fd);
  delete impl_;
  impl_ = nullptr;
}

ExpositionServer::~ExpositionServer() { stop(); }

}  // namespace hslb::obs
