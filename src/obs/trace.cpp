#include "hslb/obs/obs.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace hslb::obs {
namespace {

/// Per-thread span nesting level.  Process-wide rather than per-session:
/// only one session is active at a time in practice, and an overlayed
/// session still wants globally consistent nesting.
thread_local int t_depth = 0;

/// Id of the innermost open span on this thread (0 = none).  ScopedSpan
/// maintains it; Install seeds it from Options::parent_span so spans opened
/// on a worker thread nest under the span that dispatched the work.
thread_local std::uint64_t t_parent_span = 0;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", value);
  return buf;
}

}  // namespace

TraceSession::TraceSession() : epoch_(std::chrono::steady_clock::now()) {}

double TraceSession::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint64_t TraceSession::next_span_id() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

int TraceSession::thread_id_for_current_thread() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = thread_ids_.try_emplace(
      std::this_thread::get_id(), static_cast<int>(thread_ids_.size()));
  return it->second;
}

void TraceSession::record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceSession::record_counter(const std::string& name, double value) {
  const double ts = now_us();
  const int tid = thread_id_for_current_thread();
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.push_back(CounterSample{name, ts, value, tid});
}

std::vector<TraceEvent> TraceSession::events() const {
  std::vector<TraceEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = events_;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_us < b.start_us;
            });
  return out;
}

std::vector<CounterSample> TraceSession::counter_samples() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::string TraceSession::to_chrome_json() const {
  const std::vector<TraceEvent> spans = events();
  const std::vector<CounterSample> counters = counter_samples();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : spans) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\n{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << json_escape(e.category) << "\",\"ph\":\"X\",\"ts\":"
       << json_number(e.start_us) << ",\"dur\":" << json_number(e.duration_us)
       << ",\"pid\":1,\"tid\":" << e.thread_id;
    os << ",\"args\":{\"depth\":" << e.depth << ",\"span\":" << e.id
       << ",\"parent\":" << e.parent;
    for (const auto& [key, value] : e.args) {
      os << ",\"" << json_escape(key) << "\":\"" << json_escape(value)
         << "\"";
    }
    os << "}}";
  }
  for (const CounterSample& c : counters) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\n{\"name\":\"" << json_escape(c.name)
       << "\",\"ph\":\"C\",\"ts\":" << json_number(c.timestamp_us)
       << ",\"pid\":1,\"tid\":" << c.thread_id << ",\"args\":{\"value\":"
       << json_number(c.value) << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

std::string TraceSession::flame_summary() const {
  struct Agg {
    long long count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
    int min_depth = 1 << 20;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& e : events()) {
    Agg& agg = by_name[e.name];
    ++agg.count;
    agg.total_us += e.duration_us;
    agg.max_us = std::max(agg.max_us, e.duration_us);
    agg.min_depth = std::min(agg.min_depth, e.depth);
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  common::Table table({"span", "count", "total,ms", "mean,ms", "max,ms"});
  table.set_align(0, common::Align::kLeft);
  for (const auto& [name, agg] : rows) {
    table.add_row();
    // Indent by the shallowest depth the span was seen at, flame-style.
    table.cell(std::string(static_cast<std::size_t>(
                               std::min(agg.min_depth, 8) * 2),
                           ' ') +
               name);
    table.cell(agg.count);
    table.cell(agg.total_us / 1e3, 3);
    table.cell(agg.total_us / 1e3 / static_cast<double>(agg.count), 3);
    table.cell(agg.max_us / 1e3, 3);
  }
  return table.to_text();
}

ScopedSpan::ScopedSpan(std::string name, std::string category)
    : ScopedSpan(current_trace(), std::move(name), std::move(category)) {}

ScopedSpan::ScopedSpan(TraceSession* session, std::string name,
                       std::string category)
    : session_(session) {
  if (session_ == nullptr) {
    return;
  }
  event_.name = std::move(name);
  event_.category = std::move(category);
  event_.thread_id = session_->thread_id_for_current_thread();
  event_.depth = t_depth++;
  event_.id = session_->next_span_id();
  event_.parent = t_parent_span;
  previous_parent_ = t_parent_span;
  t_parent_span = event_.id;
  event_.start_us = session_->now_us();
}

ScopedSpan::~ScopedSpan() {
  if (session_ == nullptr) {
    return;
  }
  --t_depth;
  t_parent_span = previous_parent_;
  event_.duration_us = session_->now_us() - event_.start_us;
  session_->record(std::move(event_));
}

void ScopedSpan::arg(std::string key, std::string value) {
  if (session_ != nullptr) {
    event_.args.emplace_back(std::move(key), std::move(value));
  }
}

void ScopedSpan::arg(std::string key, double value) {
  arg(std::move(key), common::format_fixed(value, 3));
}

void ScopedSpan::arg(std::string key, long long value) {
  arg(std::move(key), std::to_string(value));
}

namespace {

// The installed context is per-thread.  It used to be a pair of process-wide
// atomics, which made concurrent Install/restore pairs from different threads
// (the allocation service's workers, each running a pipeline with its own
// sinks) corrupt each other's saved "previous" pointers.  Thread-local slots
// make Install reentrant by construction; code that fans work out to other
// threads (the OpenMP campaign loops, the service worker pool) captures
// current_context() and re-installs it on the worker.
thread_local TraceSession* t_trace = nullptr;
thread_local Registry* t_metrics = nullptr;

}  // namespace

TraceSession* current_trace() { return t_trace; }

Registry* current_metrics() { return t_metrics; }

std::uint64_t current_span() { return t_parent_span; }

Options current_context() {
  return Options{t_trace, t_metrics, t_parent_span};
}

Install::Install(const Options& options)
    : previous_trace_(t_trace),
      previous_metrics_(t_metrics),
      previous_parent_span_(t_parent_span) {
  if (options.trace != nullptr) {
    t_trace = options.trace;
  }
  if (options.metrics != nullptr) {
    t_metrics = options.metrics;
  }
  if (options.parent_span != 0) {
    t_parent_span = options.parent_span;
  }
}

Install::Install(TraceSession* trace, Registry* metrics)
    : Install(Options{trace, metrics, 0}) {}

Install::~Install() {
  t_trace = previous_trace_;
  t_metrics = previous_metrics_;
  t_parent_span = previous_parent_span_;
}

}  // namespace hslb::obs
