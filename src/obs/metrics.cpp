#include "hslb/obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>

#include "hslb/common/error.hpp"

namespace hslb::obs {

namespace {

/// Per-thread shard assignment: threads are striped round-robin over the
/// fixed shard set once, at first observe(), so the hot path is a plain
/// thread-local load -- no hashing, no modulo of a thread id.
std::size_t shard_index_for_current_thread() {
  static std::atomic<std::size_t> next_thread{0};
  thread_local const std::size_t index =
      next_thread.fetch_add(1, std::memory_order_relaxed) %
      Histogram::kShards;
  return index;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), shards_(new Shard[kShards]) {
  HSLB_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be ascending");
  const std::size_t buckets = bounds_.size() + 1;
  for (std::size_t s = 0; s < kShards; ++s) {
    shards_[s].buckets.reset(new std::atomic<long long>[buckets]);
    for (std::size_t b = 0; b < buckets; ++b) {
      shards_[s].buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

Histogram::Shard& Histogram::shard_for_current_thread() {
  return shards_[shard_index_for_current_thread()];
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  Shard& shard = shard_for_current_thread();
  shard.buckets[index].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

long long Histogram::count() const {
  long long total = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    total += shards_[s].count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (std::size_t s = 0; s < kShards; ++s) {
    total += shards_[s].sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::mean() const {
  const long long n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

std::vector<long long> Histogram::bucket_counts() const {
  std::vector<long long> out(bounds_.size() + 1, 0);
  for (std::size_t s = 0; s < kShards; ++s) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b] += shards_[s].buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::string prometheus_name(const std::string& name) {
  std::string out = "hslb_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(keep ? c : '_');
  }
  return out;
}

namespace {

bool name_matches(const std::string& have, const std::string& want) {
  return have == want || have == prometheus_name(want) ||
         prometheus_name(have) == want;
}

}  // namespace

const MetricsSnapshot::HistogramRow* MetricsSnapshot::find_histogram(
    const std::string& name) const {
  for (const HistogramRow& row : histograms) {
    if (name_matches(row.name, name)) {
      return &row;
    }
  }
  return nullptr;
}

double MetricsSnapshot::counter_value(const std::string& name,
                                      double fallback) const {
  for (const auto& [have, value] : counters) {
    if (name_matches(have, name)) {
      return value;
    }
  }
  return fallback;
}

double MetricsSnapshot::gauge_value(const std::string& name,
                                    double fallback) const {
  for (const auto& [have, value] : gauges) {
    if (name_matches(have, name)) {
      return value;
    }
  }
  return fallback;
}

double histogram_percentile(const MetricsSnapshot::HistogramRow& row,
                            double q) {
  HSLB_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0, 1]");
  long long total = 0;
  for (const long long c : row.buckets) {
    total += c;
  }
  if (total == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const long long rank = std::max<long long>(
      1, static_cast<long long>(std::ceil(q * static_cast<double>(total))));
  long long cumulative = 0;
  for (std::size_t b = 0; b < row.buckets.size(); ++b) {
    cumulative += row.buckets[b];
    if (cumulative >= rank) {
      return b < row.bounds.size()
                 ? row.bounds[b]
                 : std::numeric_limits<double>::infinity();
    }
  }
  return std::numeric_limits<double>::infinity();
}

MetricsSnapshot::HistogramRow merge(const MetricsSnapshot::HistogramRow& a,
                                    const MetricsSnapshot::HistogramRow& b) {
  HSLB_REQUIRE(a.bounds == b.bounds,
               "cannot merge histograms with different bounds");
  HSLB_REQUIRE(a.buckets.size() == b.buckets.size(),
               "cannot merge histograms with different bucket counts");
  MetricsSnapshot::HistogramRow out = a;
  out.count += b.count;
  out.sum += b.sum;
  for (std::size_t i = 0; i < out.buckets.size(); ++i) {
    out.buckets[i] += b.buckets[i];
  }
  return out;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.count = histogram->count();
    row.sum = histogram->sum();
    row.bounds = histogram->bounds();
    row.buckets = histogram->bucket_counts();
    out.histograms.push_back(std::move(row));
  }
  return out;
}

namespace {

/// Integral counters print without decimals; times etc. keep three.
std::string format_metric(double value) {
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  return common::format_fixed(value, 3);
}

}  // namespace

common::Table Registry::counters_table() const {
  const MetricsSnapshot snap = snapshot();
  common::Table table({"metric", "kind", "value"});
  for (const auto& [name, value] : snap.counters) {
    table.add_row();
    table.cell(name);
    table.cell(std::string("counter"));
    table.cell(format_metric(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    table.add_row();
    table.cell(name);
    table.cell(std::string("gauge"));
    table.cell(format_metric(value));
  }
  return table;
}

common::Table Registry::histograms_table() const {
  const MetricsSnapshot snap = snapshot();
  common::Table table({"histogram", "count", "sum", "mean", "buckets"});
  for (const auto& row : snap.histograms) {
    table.add_row();
    table.cell(row.name);
    table.cell(static_cast<long long>(row.count));
    table.cell(row.sum, 3);
    table.cell(row.count > 0 ? row.sum / static_cast<double>(row.count) : 0.0,
               4);
    std::ostringstream os;
    for (std::size_t i = 0; i < row.buckets.size(); ++i) {
      if (row.buckets[i] == 0) {
        continue;
      }
      if (os.tellp() > 0) {
        os << ' ';
      }
      if (i < row.bounds.size()) {
        os << "<=" << common::format_fixed(row.bounds[i], row.bounds[i] < 1.0 ? 3 : 0)
           << ":" << row.buckets[i];
      } else {
        os << ">last:" << row.buckets[i];
      }
    }
    // Zero-observation histograms still render a row ("count=0" rather than
    // a bare dash) so report output stays schema-stable across runs that
    // never exercised an instrument.
    table.cell(os.tellp() > 0 ? os.str() : std::string("count=0"));
  }
  return table;
}

std::vector<double> Registry::default_time_bounds() {
  // Log-spaced milliseconds: 10us .. 10s.
  return {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0};
}

namespace {

std::vector<double> one_two_five(double first, double last) {
  std::vector<double> out;
  for (double decade = first; decade < last * 1.0001; decade *= 10.0) {
    for (const double mantissa : {1.0, 2.0, 5.0}) {
      const double edge = decade * mantissa;
      if (edge > last * 1.0001) {
        break;
      }
      out.push_back(edge);
    }
  }
  return out;
}

}  // namespace

std::vector<double> Registry::hdr_time_bounds() {
  // 1-2-5 per decade, 0.001 ms (1 us) .. 1e5 ms (100 s): 25 edges.
  return one_two_five(1e-3, 1e5);
}

std::vector<double> Registry::hdr_count_bounds() {
  // 1-2-5 per decade, 1 .. 1e6: 19 edges.
  return one_two_five(1.0, 1e6);
}

}  // namespace hslb::obs
