#include "hslb/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "hslb/common/error.hpp"

namespace hslb::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  HSLB_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be ascending");
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::mean() const {
  const long long n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

std::vector<long long> Histogram::bucket_counts() const {
  std::vector<long long> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.count = histogram->count();
    row.sum = histogram->sum();
    row.bounds = histogram->bounds();
    row.buckets = histogram->bucket_counts();
    out.histograms.push_back(std::move(row));
  }
  return out;
}

namespace {

/// Integral counters print without decimals; times etc. keep three.
std::string format_metric(double value) {
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  return common::format_fixed(value, 3);
}

}  // namespace

common::Table Registry::counters_table() const {
  const MetricsSnapshot snap = snapshot();
  common::Table table({"metric", "kind", "value"});
  for (const auto& [name, value] : snap.counters) {
    table.add_row();
    table.cell(name);
    table.cell(std::string("counter"));
    table.cell(format_metric(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    table.add_row();
    table.cell(name);
    table.cell(std::string("gauge"));
    table.cell(format_metric(value));
  }
  return table;
}

common::Table Registry::histograms_table() const {
  const MetricsSnapshot snap = snapshot();
  common::Table table({"histogram", "count", "sum", "mean", "buckets"});
  for (const auto& row : snap.histograms) {
    table.add_row();
    table.cell(row.name);
    table.cell(static_cast<long long>(row.count));
    table.cell(row.sum, 3);
    table.cell(row.count > 0 ? row.sum / static_cast<double>(row.count) : 0.0,
               4);
    std::ostringstream os;
    for (std::size_t i = 0; i < row.buckets.size(); ++i) {
      if (row.buckets[i] == 0) {
        continue;
      }
      if (os.tellp() > 0) {
        os << ' ';
      }
      if (i < row.bounds.size()) {
        os << "<=" << common::format_fixed(row.bounds[i], row.bounds[i] < 1.0 ? 3 : 0)
           << ":" << row.buckets[i];
      } else {
        os << ">last:" << row.buckets[i];
      }
    }
    table.cell(os.tellp() > 0 ? os.str() : std::string("-"));
  }
  return table;
}

std::vector<double> Registry::default_time_bounds() {
  // Log-spaced milliseconds: 10us .. 10s.
  return {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0};
}

}  // namespace hslb::obs
