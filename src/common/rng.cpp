#include "hslb/common/rng.hpp"

#include <cmath>

#include "hslb/common/error.hpp"

namespace hslb::common {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  HSLB_REQUIRE(lo <= hi, "uniform(lo, hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  HSLB_REQUIRE(lo <= hi, "uniform_int(lo, hi) needs lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling for an unbiased draw.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = next_u64();
  while (draw >= limit) {
    draw = next_u64();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double r2 = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    r2 = u * u + v * v;
  } while (r2 >= 1.0 || r2 == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(r2) / r2);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  HSLB_REQUIRE(stddev >= 0.0, "normal() needs stddev >= 0");
  return mean + stddev * normal();
}

double Rng::lognormal_noise(double cv) {
  HSLB_REQUIRE(cv >= 0.0, "lognormal_noise() needs cv >= 0");
  if (cv == 0.0) {
    return 1.0;
  }
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = -0.5 * sigma2;  // makes E[exp(N(mu, sigma))] == 1
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

Rng Rng::split() {
  return Rng(next_u64());
}

}  // namespace hslb::common
