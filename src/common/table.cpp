#include "hslb/common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "hslb/common/error.hpp"

namespace hslb::common {

std::string format_fixed(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HSLB_REQUIRE(!headers_.empty(), "a table needs at least one column");
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void Table::set_align(std::size_t column, Align align) {
  HSLB_REQUIRE(column < aligns_.size(), "column index out of range");
  aligns_[column] = align;
}

void Table::add_row() {
  rows_.emplace_back();
}

void Table::cell(std::string value) {
  HSLB_REQUIRE(!rows_.empty(), "call add_row() before cell()");
  HSLB_REQUIRE(rows_.back().size() < headers_.size(),
               "row already has a cell for every column");
  rows_.back().push_back(std::move(value));
}

void Table::cell(double value, int precision) {
  cell(format_fixed(value, precision));
}

void Table::cell(long long value) {
  cell(std::to_string(value));
}

void Table::cell_missing() {
  cell(std::string("-"));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto pad = [&](const std::string& text, std::size_t c) {
    const std::size_t fill = widths[c] - std::min(widths[c], text.size());
    return aligns_[c] == Align::kLeft ? text + std::string(fill, ' ')
                                      : std::string(fill, ' ') + text;
  };

  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "" : "  ") << pad(headers_[c], c);
  }
  os << '\n';
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < row.size() ? row[c] : std::string();
      os << (c == 0 ? "" : "  ") << pad(text, c);
    }
    os << '\n';
  }
  return os.str();
}

std::string Table::to_csv() const {
  const auto quote = [](const std::string& text) {
    if (text.find_first_of(",\"\n") == std::string::npos) {
      return text;
    }
    std::string out = "\"";
    for (char ch : text) {
      if (ch == '"') {
        out += '"';
      }
      out += ch;
    }
    out += '"';
    return out;
  };

  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "" : ",") << quote(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << quote(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.to_text();
}

}  // namespace hslb::common
