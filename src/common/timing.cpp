// Intentionally header-only; this translation unit anchors the library and
// gives the header a home for any future out-of-line additions.
#include "hslb/common/timing.hpp"
