#include "hslb/minlp/model.hpp"

#include <cmath>
#include <sstream>

#include "hslb/common/error.hpp"

namespace hslb::minlp {

std::size_t Model::add_variable(std::string name, VarType type, double lower,
                                double upper) {
  HSLB_REQUIRE(lower <= upper, "variable bounds crossed");
  if (type == VarType::kBinary) {
    HSLB_REQUIRE(lower >= 0.0 && upper <= 1.0, "binary bounds must be in [0,1]");
  }
  vars_.push_back(Variable{std::move(name), type, lower, upper});
  obj_coeffs_.push_back(0.0);
  return vars_.size() - 1;
}

expr::Expr Model::var(std::size_t index) const {
  HSLB_REQUIRE(index < vars_.size(), "variable index out of range");
  return expr::variable(index, vars_[index].name);
}

void Model::minimize(const expr::Expr& objective) {
  const auto affine = expr::as_affine(objective, num_vars());
  if (affine) {
    obj_coeffs_ = affine->coeffs;
    obj_offset_ = affine->constant;
    return;
  }
  // Epigraph reformulation: min eta  s.t.  f(x) - eta <= 0.
  const std::size_t eta =
      add_variable("_objective_eta", VarType::kContinuous, -lp::kInf, lp::kInf);
  add_nonlinear(objective - var(eta), 0.0, "_objective_epigraph");
  obj_coeffs_.assign(num_vars(), 0.0);
  obj_coeffs_[eta] = 1.0;
  obj_offset_ = 0.0;
}

std::size_t Model::add_linear(
    std::vector<std::pair<std::size_t, double>> terms, double lower,
    double upper, std::string name) {
  HSLB_REQUIRE(lower <= upper, "linear constraint bounds crossed");
  for (const auto& [v, c] : terms) {
    HSLB_REQUIRE(v < num_vars(), "linear term references unknown variable");
    (void)c;
  }
  linear_.push_back(
      LinearConstraint{std::move(terms), lower, upper, std::move(name)});
  return linear_.size() - 1;
}

std::size_t Model::add_link(std::size_t t_var, std::size_t n_var,
                            UnivariateFn fn, std::string name) {
  HSLB_REQUIRE(t_var < num_vars() && n_var < num_vars(),
               "link references unknown variable");
  HSLB_REQUIRE(static_cast<bool>(fn.value) && static_cast<bool>(fn.deriv),
               "link function needs value and derivative callables");
  links_.push_back(UnivariateLink{t_var, n_var, std::move(fn), std::move(name)});
  return links_.size() - 1;
}

std::size_t Model::add_nonlinear(expr::Expr g, double upper, std::string name) {
  const auto max_var = expr::max_var_index(g);
  HSLB_REQUIRE(!max_var || *max_var < num_vars(),
               "nonlinear constraint references unknown variable");
  nonlinear_.push_back(NonlinearConstraint{std::move(g), upper, std::move(name)});
  return nonlinear_.size() - 1;
}

void Model::restrict_to_set(std::size_t target,
                            const std::vector<double>& values, bool use_sos,
                            const std::string& name) {
  HSLB_REQUIRE(target < num_vars(), "restrict_to_set: unknown variable");
  HSLB_REQUIRE(!values.empty(), "restrict_to_set: empty value set");

  std::vector<std::size_t> binaries;
  binaries.reserve(values.size());
  for (std::size_t k = 0; k < values.size(); ++k) {
    binaries.push_back(add_variable(
        (name.empty() ? vars_[target].name : name) + "_z" + std::to_string(k),
        VarType::kBinary, 0.0, 1.0));
  }

  // Convexity row: sum z_k = 1.
  std::vector<std::pair<std::size_t, double>> convexity;
  for (const std::size_t z : binaries) {
    convexity.emplace_back(z, 1.0);
  }
  add_linear(std::move(convexity), 1.0, 1.0, name + "_choose_one");

  // Link row: sum z_k * v_k - target = 0.
  std::vector<std::pair<std::size_t, double>> link;
  for (std::size_t k = 0; k < values.size(); ++k) {
    link.emplace_back(binaries[k], values[k]);
  }
  link.emplace_back(target, -1.0);
  add_linear(std::move(link), 0.0, 0.0, name + "_select_value");

  if (use_sos) {
    add_sos1(std::move(binaries), values, name);
  }
}

void Model::add_sos1(std::vector<std::size_t> set_vars,
                     std::vector<double> weights, std::string name) {
  HSLB_REQUIRE(set_vars.size() == weights.size(),
               "SOS1 weights must match member count");
  HSLB_REQUIRE(set_vars.size() >= 2, "SOS1 set needs at least two members");
  sos1_.push_back(Sos1Set{std::move(set_vars), std::move(weights), std::move(name)});
}

double Model::objective_value(std::span<const double> x) const {
  HSLB_REQUIRE(x.size() >= num_vars(), "point smaller than variable count");
  double v = obj_offset_;
  for (std::size_t j = 0; j < num_vars(); ++j) {
    v += obj_coeffs_[j] * x[j];
  }
  return v;
}

std::optional<std::string> Model::check_feasible(std::span<const double> x,
                                                 double tol) const {
  HSLB_REQUIRE(x.size() >= num_vars(), "point smaller than variable count");
  std::ostringstream why;
  for (std::size_t j = 0; j < num_vars(); ++j) {
    const Variable& v = vars_[j];
    if (x[j] < v.lower - tol || x[j] > v.upper + tol) {
      why << "variable " << v.name << " = " << x[j] << " outside ["
          << v.lower << ", " << v.upper << "]";
      return why.str();
    }
    if (v.type != VarType::kContinuous &&
        std::fabs(x[j] - std::round(x[j])) > tol) {
      why << "variable " << v.name << " = " << x[j] << " not integral";
      return why.str();
    }
  }
  for (const LinearConstraint& c : linear_) {
    double s = 0.0;
    for (const auto& [v, coef] : c.terms) {
      s += coef * x[v];
    }
    const double scale = std::max(1.0, std::fabs(s));
    if (s < c.lower - tol * scale || s > c.upper + tol * scale) {
      why << "linear constraint " << c.name << ": " << s << " outside ["
          << c.lower << ", " << c.upper << "]";
      return why.str();
    }
  }
  for (const UnivariateLink& link : links_) {
    const double t = x[link.t_var];
    const double fn = link.fn.value(x[link.n_var]);
    if (std::fabs(t - fn) > tol * std::max(1.0, std::fabs(fn))) {
      why << "link " << link.name << ": t = " << t << " but fn(n) = " << fn;
      return why.str();
    }
  }
  for (const NonlinearConstraint& c : nonlinear_) {
    const double g = expr::eval(c.g, x);
    if (g > c.upper + tol * std::max(1.0, std::fabs(c.upper))) {
      why << "nonlinear constraint " << c.name << ": " << g << " > " << c.upper;
      return why.str();
    }
  }
  return std::nullopt;
}

UnivariateFn make_univariate(std::function<double(double)> value,
                             std::function<double(double)> deriv,
                             Curvature curvature) {
  UnivariateFn fn;
  fn.value = std::move(value);
  fn.deriv = std::move(deriv);
  fn.curvature = curvature;
  return fn;
}

Curvature detect_curvature(const UnivariateFn& fn, double lo, double hi) {
  HSLB_REQUIRE(lo < hi, "detect_curvature needs a nonempty interval");
  // Sample midpoint convexity: convex iff f((a+b)/2) <= (f(a)+f(b))/2.
  constexpr int kSamples = 48;
  bool convex_ok = true;
  bool concave_ok = true;
  for (int i = 0; i < kSamples; ++i) {
    const double a = lo + (hi - lo) * i / kSamples;
    const double b = lo + (hi - lo) * (i + 2.0) / (kSamples + 1.0);
    if (b <= a) {
      continue;
    }
    const double mid = 0.5 * (a + b);
    const double chord = 0.5 * (fn.value(a) + fn.value(b));
    const double f = fn.value(mid);
    const double slack = 1e-9 * (1.0 + std::fabs(f));
    if (f > chord + slack) {
      convex_ok = false;
    }
    if (f < chord - slack) {
      concave_ok = false;
    }
  }
  // A linear function passes both tests; call it convex (either is valid).
  if (convex_ok) {
    return Curvature::kConvex;
  }
  HSLB_REQUIRE(concave_ok,
               "link function has mixed curvature on the variable's range; "
               "declare a tighter range or refit with a one-signed model");
  return Curvature::kConcave;
}

}  // namespace hslb::minlp
