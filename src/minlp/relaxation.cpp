#include "hslb/minlp/relaxation.hpp"

#include <cmath>

#include "hslb/common/error.hpp"
#include "hslb/lp/simplex.hpp"

namespace hslb::minlp {
namespace {

/// Shared: dense coefficient vector from sparse terms.
linalg::Vector densify(const std::vector<std::pair<std::size_t, double>>& terms,
                       std::size_t n) {
  linalg::Vector row(n, 0.0);
  for (const auto& [v, c] : terms) {
    row[v] += c;
  }
  return row;
}

bool same_point(double a, double b) {
  return std::fabs(a - b) <= 1e-9 * std::max(1.0, std::fabs(b));
}

}  // namespace

bool CutPool::has_link_tangent(std::size_t link_index, double point) const {
  for (const CutRow& cut : rows_) {
    if (cut.link == static_cast<int>(link_index) && same_point(cut.point, point)) {
      return true;
    }
  }
  return false;
}

bool CutPool::add_link_tangent(const Model& model,
                               const std::vector<Curvature>& curvature,
                               std::size_t link_index, double point,
                               std::uint64_t id) {
  HSLB_REQUIRE(link_index < model.links().size(), "unknown link index");
  if (has_link_tangent(link_index, point)) {
    return false;  // already have (numerically) this tangent
  }
  const UnivariateLink& link = model.links()[link_index];
  const double f = link.fn.value(point);
  const double df = link.fn.deriv(point);
  if (!std::isfinite(f) || !std::isfinite(df)) {
    return false;
  }
  // Tangent line: t {>=,<=} f + df * (n - point)
  //   =>  t - df * n  {>=,<=}  f - df * point.
  CutRow cut;
  cut.terms = {{link.t_var, 1.0}, {link.n_var, -df}};
  const double rhs = f - df * point;
  if (curvature[link_index] == Curvature::kConvex) {
    cut.lower = rhs;
  } else {
    cut.upper = rhs;
  }
  cut.id = id;
  cut.link = static_cast<int>(link_index);
  cut.point = point;
  rows_.push_back(std::move(cut));
  return true;
}

void CutPool::add_nonlinear_cut(const Model& model, std::size_t nc_index,
                                std::span<const double> x, std::uint64_t id) {
  HSLB_REQUIRE(nc_index < model.nonlinear_constraints().size(),
               "unknown nonlinear constraint index");
  const NonlinearConstraint& nc = model.nonlinear_constraints()[nc_index];
  const auto vg = expr::eval_grad(nc.g, x, model.num_vars());
  // g(x0) + grad . (x - x0) <= ub  =>  grad . x <= ub - g(x0) + grad . x0.
  CutRow cut;
  double rhs = nc.upper - vg.value;
  for (std::size_t j = 0; j < model.num_vars(); ++j) {
    if (vg.grad[j] != 0.0) {
      cut.terms.emplace_back(j, vg.grad[j]);
      rhs += vg.grad[j] * x[j];
    }
  }
  cut.upper = rhs;
  cut.id = id;
  rows_.push_back(std::move(cut));
}

std::size_t CutPool::absorb(const CutPool& delta) {
  std::size_t added = 0;
  for (const CutRow& cut : delta.rows_) {
    if (cut.link >= 0 &&
        has_link_tangent(static_cast<std::size_t>(cut.link), cut.point)) {
      continue;
    }
    bool duplicate_id = false;
    for (const CutRow& mine : rows_) {
      if (mine.id == cut.id) {
        duplicate_id = true;
        break;
      }
    }
    if (duplicate_id) {
      continue;
    }
    rows_.push_back(cut);
    ++added;
  }
  return added;
}

void CutPool::age_to(std::size_t max_rows) {
  if (rows_.size() <= max_rows) {
    return;
  }
  std::size_t excess = rows_.size() - max_rows;
  std::vector<CutRow> kept;
  kept.reserve(max_rows);
  for (CutRow& cut : rows_) {
    const bool root_cut = cut.id < (1ULL << 16);
    if (excess > 0 && !root_cut) {
      --excess;  // oldest non-root cuts go first
      continue;
    }
    kept.push_back(std::move(cut));
  }
  rows_ = std::move(kept);
}

std::vector<Curvature> resolve_curvatures(const Model& model) {
  std::vector<Curvature> out;
  out.reserve(model.links().size());
  for (const UnivariateLink& link : model.links()) {
    if (link.fn.curvature != Curvature::kAuto) {
      out.push_back(link.fn.curvature);
      continue;
    }
    const Variable& nv = model.variables()[link.n_var];
    HSLB_REQUIRE(std::isfinite(nv.lower) && std::isfinite(nv.upper),
                 "curvature auto-detection needs finite bounds on " + nv.name);
    if (nv.lower >= nv.upper) {
      out.push_back(Curvature::kConvex);  // degenerate interval; exact anyway
    } else {
      out.push_back(detect_curvature(link.fn, nv.lower, nv.upper));
    }
  }
  return out;
}

lp::LpProblem build_master_lp(const Model& model, const CutPool& pool,
                              const std::vector<Curvature>& curvature,
                              std::span<const double> node_lower,
                              std::span<const double> node_upper,
                              const CutPool* extra,
                              std::vector<std::uint64_t>* row_keys) {
  const std::size_t n = model.num_vars();
  HSLB_REQUIRE(node_lower.size() == n && node_upper.size() == n,
               "node bound sizes must match variable count");

  lp::LpProblem master;
  for (std::size_t j = 0; j < n; ++j) {
    master.add_variable(node_lower[j], node_upper[j],
                        model.objective_coeffs()[j],
                        model.variables()[j].name);
  }
  master.set_objective_offset(model.objective_offset());
  if (row_keys != nullptr) {
    row_keys->clear();
  }
  const auto key = [row_keys](std::uint64_t k) {
    if (row_keys != nullptr) {
      row_keys->push_back(k);
    }
  };

  for (std::size_t ci = 0; ci < model.linear_constraints().size(); ++ci) {
    const LinearConstraint& c = model.linear_constraints()[ci];
    master.add_row(densify(c.terms, n), c.lower, c.upper, c.name);
    key(row_key::linear(ci));
  }
  for (const CutRow& cut : pool.rows()) {
    master.add_row(densify(cut.terms, n), cut.lower, cut.upper, "cut");
    key(row_key::cut(cut.id));
  }
  if (extra != nullptr) {
    for (const CutRow& cut : extra->rows()) {
      master.add_row(densify(cut.terms, n), cut.lower, cut.upper, "cut");
      key(row_key::cut(cut.id));
    }
  }

  // Node-local chords (secants).  For a convex fn the chord lies above the
  // graph, so  t <= chord(n)  is the valid upper relaxation of t == fn(n);
  // for a concave fn the chord lies below and gives the lower relaxation.
  for (std::size_t li = 0; li < model.links().size(); ++li) {
    const UnivariateLink& link = model.links()[li];
    const double lo = node_lower[link.n_var];
    const double hi = node_upper[link.n_var];
    if (lo >= hi) {
      // Interval closed: the link is exact; pin t.
      const double f = link.fn.value(lo);
      master.set_col_bounds(link.t_var, f, f);
      continue;
    }
    if (!std::isfinite(lo) || !std::isfinite(hi)) {
      continue;  // no finite chord available
    }
    const double flo = link.fn.value(lo);
    const double fhi = link.fn.value(hi);
    if (!std::isfinite(flo) || !std::isfinite(fhi)) {
      continue;
    }
    const double slope = (fhi - flo) / (hi - lo);
    // Chord: t {<=,>=} flo + slope * (n - lo)
    //   =>   t - slope * n {<=,>=} flo - slope * lo.
    linalg::Vector row(n, 0.0);
    row[link.t_var] = 1.0;
    row[link.n_var] = -slope;
    const double rhs = flo - slope * lo;
    if (curvature[li] == Curvature::kConvex) {
      master.add_row(std::move(row), -lp::kInf, rhs, link.name + "_chord");
    } else {
      master.add_row(std::move(row), rhs, lp::kInf, link.name + "_chord");
    }
    key(row_key::chord(li));
  }
  return master;
}

std::optional<Completion> complete_integer_point(
    const Model& model, const CutPool& pool,
    const std::vector<Curvature>& curvature, std::span<const double> x,
    std::span<const double> node_lower, std::span<const double> node_upper,
    const CutPool* extra, const lp::Basis* warm,
    std::span<const std::uint64_t> warm_keys) {
  const std::size_t n = model.num_vars();
  linalg::Vector lo(node_lower.begin(), node_lower.end());
  linalg::Vector hi(node_upper.begin(), node_upper.end());
  for (std::size_t j = 0; j < n; ++j) {
    if (model.variables()[j].type != VarType::kContinuous) {
      const double v = std::round(x[j]);
      if (v < lo[j] - 1e-9 || v > hi[j] + 1e-9) {
        return std::nullopt;  // rounded value escapes the node box
      }
      lo[j] = hi[j] = v;
    }
  }

  std::vector<std::uint64_t> keys;
  const bool want_warm = warm != nullptr && !warm->empty();
  lp::LpProblem fixed = build_master_lp(model, pool, curvature, lo, hi, extra,
                                        want_warm ? &keys : nullptr);
  // build_master_lp pins each link variable exactly because every link's n
  // interval is now closed (links always hang off integer node-count vars in
  // this library; pin defensively here for links on continuous vars too).
  for (const UnivariateLink& link : model.links()) {
    const double nval = lo[link.n_var];
    if (nval == hi[link.n_var]) {
      const double f = link.fn.value(nval);
      fixed.set_col_bounds(link.t_var, f, f);
    }
  }
  lp::LpSolution sol;
  if (want_warm) {
    const lp::Basis mapped = lp::map_basis(*warm, warm_keys, keys);
    sol = lp::resolve_from_basis(fixed, mapped);
  } else {
    sol = lp::solve(fixed);
  }
  if (sol.status != lp::LpStatus::kOptimal) {
    return std::nullopt;
  }
  // Verify against the true model (general nonlinear constraints included).
  if (model.check_feasible(sol.x, 1e-6)) {
    return std::nullopt;
  }
  return Completion{sol.x, model.objective_value(sol.x)};
}

}  // namespace hslb::minlp
