#include "hslb/minlp/presolve.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"
#include "hslb/minlp/relaxation.hpp"

namespace hslb::minlp {
namespace {

constexpr double kFeasTol = 1e-9;

/// Round an integer variable's bounds inward.
void round_integer_bounds(const Variable& var, double& lo, double& hi) {
  if (var.type == VarType::kContinuous) {
    return;
  }
  if (std::isfinite(lo)) {
    lo = std::ceil(lo - 1e-9);
  }
  if (std::isfinite(hi)) {
    hi = std::floor(hi + 1e-9);
  }
}

/// Apply a candidate new bound; returns true if it tightened meaningfully.
bool tighten(double& bound, double candidate, bool is_lower) {
  const double improvement = is_lower ? candidate - bound : bound - candidate;
  if (improvement > 1e-9 * (1.0 + std::fabs(candidate))) {
    bound = candidate;
    return true;
  }
  return false;
}

}  // namespace

FnRange univariate_range(const UnivariateFn& fn, Curvature curvature,
                         double lo, double hi) {
  HSLB_REQUIRE(lo <= hi, "univariate_range needs lo <= hi");
  const double f_lo = fn.value(lo);
  const double f_hi = fn.value(hi);
  FnRange range;
  range.min = std::min(f_lo, f_hi);
  range.max = std::max(f_lo, f_hi);
  if (hi - lo < 1e-12) {
    return range;
  }

  // One-signed curvature: the only interior extremum is a minimum (convex)
  // or a maximum (concave); golden-section search finds it.
  constexpr double kGolden = 0.6180339887498949;
  const bool seek_min = curvature == Curvature::kConvex;
  double a = lo;
  double b = hi;
  for (int it = 0; it < 80 && b - a > 1e-9 * (1.0 + std::fabs(b)); ++it) {
    const double x1 = b - kGolden * (b - a);
    const double x2 = a + kGolden * (b - a);
    const double f1 = fn.value(x1);
    const double f2 = fn.value(x2);
    const bool keep_left = seek_min ? f1 <= f2 : f1 >= f2;
    if (keep_left) {
      b = x2;
    } else {
      a = x1;
    }
  }
  const double f_star = fn.value(0.5 * (a + b));
  if (seek_min) {
    range.min = std::min(range.min, f_star);
  } else {
    range.max = std::max(range.max, f_star);
  }
  return range;
}

PresolveResult presolve(const Model& model, int max_rounds) {
  const std::size_t n = model.num_vars();
  PresolveResult out;
  out.lower.resize(n);
  out.upper.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    out.lower[j] = model.variables()[j].lower;
    out.upper[j] = model.variables()[j].upper;
    round_integer_bounds(model.variables()[j], out.lower[j], out.upper[j]);
    if (out.lower[j] > out.upper[j] + kFeasTol) {
      out.infeasible = true;
      return out;
    }
  }

  const std::vector<Curvature> curvature = resolve_curvatures(model);

  for (int round = 0; round < max_rounds; ++round) {
    out.rounds = round + 1;
    bool changed = false;

    // --- Activity-based propagation over linear rows. -----------------------
    for (const LinearConstraint& c : model.linear_constraints()) {
      // Row activity bounds from current variable bounds.
      double min_activity = 0.0;
      double max_activity = 0.0;
      int min_infinities = 0;
      int max_infinities = 0;
      for (const auto& [v, a] : c.terms) {
        const double lo_contrib = a > 0.0 ? a * out.lower[v] : a * out.upper[v];
        const double hi_contrib = a > 0.0 ? a * out.upper[v] : a * out.lower[v];
        if (std::isfinite(lo_contrib)) {
          min_activity += lo_contrib;
        } else {
          ++min_infinities;
        }
        if (std::isfinite(hi_contrib)) {
          max_activity += hi_contrib;
        } else {
          ++max_infinities;
        }
      }
      // Infeasibility: the whole row's best case violates a side.
      if (min_infinities == 0 && min_activity > c.upper + 1e-7 *
                                                    (1.0 + std::fabs(c.upper))) {
        out.infeasible = true;
        return out;
      }
      if (max_infinities == 0 && max_activity < c.lower - 1e-7 *
                                                    (1.0 + std::fabs(c.lower))) {
        out.infeasible = true;
        return out;
      }

      // Per-variable tightening.
      for (const auto& [v, a] : c.terms) {
        if (a == 0.0) {
          continue;
        }
        const double lo_contrib =
            a > 0.0 ? a * out.lower[v] : a * out.upper[v];
        const double hi_contrib =
            a > 0.0 ? a * out.upper[v] : a * out.lower[v];

        // Residual activity of the other variables.
        const bool rest_min_finite =
            min_infinities == 0 ||
            (min_infinities == 1 && !std::isfinite(lo_contrib));
        const bool rest_max_finite =
            max_infinities == 0 ||
            (max_infinities == 1 && !std::isfinite(hi_contrib));
        const double rest_min =
            min_activity - (std::isfinite(lo_contrib) ? lo_contrib : 0.0);
        const double rest_max =
            max_activity - (std::isfinite(hi_contrib) ? hi_contrib : 0.0);

        double new_lo = out.lower[v];
        double new_hi = out.upper[v];
        if (std::isfinite(c.upper) && rest_min_finite) {
          // a * x <= U - rest_min.
          const double slack = c.upper - rest_min;
          if (a > 0.0) {
            new_hi = std::min(new_hi, slack / a);
          } else {
            new_lo = std::max(new_lo, slack / a);
          }
        }
        if (std::isfinite(c.lower) && rest_max_finite) {
          // a * x >= L - rest_max.
          const double slack = c.lower - rest_max;
          if (a > 0.0) {
            new_lo = std::max(new_lo, slack / a);
          } else {
            new_hi = std::min(new_hi, slack / a);
          }
        }
        round_integer_bounds(model.variables()[v], new_lo, new_hi);
        changed |= tighten(out.lower[v], new_lo, /*is_lower=*/true);
        changed |= tighten(out.upper[v], new_hi, /*is_lower=*/false);
        if (out.lower[v] > out.upper[v] + kFeasTol) {
          out.infeasible = true;
          return out;
        }
      }
    }

    // --- Forward propagation through links: t in fn([lo(n), up(n)]). --------
    for (std::size_t li = 0; li < model.links().size(); ++li) {
      const UnivariateLink& link = model.links()[li];
      const double n_lo = out.lower[link.n_var];
      const double n_hi = out.upper[link.n_var];
      if (!std::isfinite(n_lo) || !std::isfinite(n_hi)) {
        continue;
      }
      const FnRange range =
          univariate_range(link.fn, curvature[li], n_lo, n_hi);
      if (!std::isfinite(range.min) || !std::isfinite(range.max)) {
        continue;
      }
      changed |= tighten(out.lower[link.t_var], range.min, /*is_lower=*/true);
      changed |= tighten(out.upper[link.t_var], range.max, /*is_lower=*/false);
      if (out.lower[link.t_var] > out.upper[link.t_var] + kFeasTol) {
        out.infeasible = true;
        return out;
      }
    }

    if (!changed) {
      break;
    }
  }

  // Count the final tightenings against the original model bounds.
  for (std::size_t j = 0; j < n; ++j) {
    if (out.lower[j] > model.variables()[j].lower + 1e-12) {
      ++out.tightenings;
    }
    if (out.upper[j] < model.variables()[j].upper - 1e-12) {
      ++out.tightenings;
    }
  }
  return out;
}

}  // namespace hslb::minlp
