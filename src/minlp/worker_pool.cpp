#include "hslb/minlp/worker_pool.hpp"

#include <algorithm>

namespace hslb::minlp {

WorkerPool::WorkerPool(int threads) : obs_context_(obs::current_context()) {
  const int total = std::max(1, threads);
  items_.assign(static_cast<std::size_t>(total), 0);
  helpers_.reserve(static_cast<std::size_t>(total - 1));
  for (int w = 1; w < total; ++w) {
    helpers_.emplace_back(
        [this, w] { helper_loop(static_cast<std::size_t>(w)); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : helpers_) {
    t.join();
  }
}

void WorkerPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  if (helpers_.empty()) {
    drain(0, count, fn);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    active_ = helpers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  drain(0, count, fn);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return active_ == 0; });
  job_ = nullptr;
}

void WorkerPool::drain(std::size_t worker_index, std::size_t count,
                       const std::function<void(std::size_t)>& fn) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) {
      return;
    }
    fn(i);
    ++items_[worker_index];
  }
}

void WorkerPool::helper_loop(std::size_t worker_index) {
  // The captured context carries trace + metrics sinks *and* the span that
  // was open when the pool was constructed (minlp.solve): spans opened on
  // this helper thread nest under the owning solve -- and, through it, the
  // owning service request -- instead of floating as roots.
  const obs::Install install(obs_context_);
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) {
        return;
      }
      seen_generation = generation_;
      job = job_;
      count = count_;
    }
    drain(worker_index, count, *job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (active_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

}  // namespace hslb::minlp
