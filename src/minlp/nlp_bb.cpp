// NLP-based branch-and-bound with the same deterministic epoch-parallel
// scheme as branch_and_bound.cpp: each epoch pops a fixed-size batch of
// nodes from the DFS stack (LIFO order), solves their barrier NLPs in
// parallel against a snapshot of the cutoff, and merges results in batch
// order.  Node evaluation is pure, so the result is byte-identical across
// thread counts; epoch_batch == 1 reproduces the classic serial loop.
#include "hslb/minlp/nlp_bb.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>
#include <thread>

#include "hslb/common/error.hpp"
#include "hslb/common/timing.hpp"
#include "hslb/minlp/relaxation.hpp"
#include "hslb/minlp/worker_pool.hpp"
#include "hslb/nlp/barrier.hpp"
#include "hslb/obs/obs.hpp"

namespace hslb::minlp {
namespace {

using linalg::Vector;

struct Node {
  Vector lower;
  Vector upper;
  double bound = -lp::kInf;
  int depth = 0;
};

/// Continuous relaxation NLP over the node's box.
nlp::NlpProblem build_node_nlp(const Model& model, const Vector& lo,
                               const Vector& up) {
  nlp::NlpProblem relax;
  const std::size_t n = model.num_vars();
  relax.num_vars = n;
  relax.lower = lo;
  relax.upper = up;

  expr::Expr obj = expr::constant(model.objective_offset());
  for (std::size_t j = 0; j < n; ++j) {
    if (model.objective_coeffs()[j] != 0.0) {
      obj += model.objective_coeffs()[j] * model.var(j);
    }
  }
  relax.objective = obj;

  for (const LinearConstraint& c : model.linear_constraints()) {
    expr::Expr row = expr::constant(0.0);
    for (const auto& [v, coef] : c.terms) {
      row += coef * model.var(v);
    }
    const double slack =
        c.lower == c.upper ? 1e-7 * (1.0 + std::fabs(c.upper)) : 0.0;
    if (std::isfinite(c.upper)) {
      relax.constraints.push_back(row - (c.upper + slack));
    }
    if (std::isfinite(c.lower)) {
      relax.constraints.push_back((c.lower - slack) - row);
    }
  }
  for (const UnivariateLink& link : model.links()) {
    relax.constraints.push_back(link.fn.as_expr(model.var(link.n_var)) -
                                model.var(link.t_var));
  }
  for (const NonlinearConstraint& c : model.nonlinear_constraints()) {
    relax.constraints.push_back(c.g - c.upper);
  }
  return relax;
}

/// Output of one node evaluation, merged in batch order on the main thread.
struct NodeResult {
  bool pruned = false;  // skipped by snapshot cutoff or infeasible/failed
  std::vector<Node> children;
  std::optional<Completion> completion;
  long nlp_solves = 0;
  long lp_solves = 0;
};

/// Evaluate one node: barrier solve, branching decision, completion.  Pure
/// function of (node, cutoff snapshot, options) -- the determinism anchor.
NodeResult process_node(const Model& model, const NlpBbOptions& opts,
                        const std::vector<Curvature>& curvature,
                        const CutPool& empty_pool, double cutoff_snapshot,
                        Node node) {
  const std::size_t n = model.num_vars();
  NodeResult r;
  if (node.bound >= cutoff_snapshot) {
    r.pruned = true;
    return r;
  }

  const nlp::NlpProblem relax = build_node_nlp(model, node.lower, node.upper);
  const nlp::NlpResult sol = nlp::solve_barrier(relax);
  ++r.nlp_solves;
  if (sol.status != nlp::NlpStatus::kOptimal) {
    r.pruned = true;  // infeasible, or failed node solve pruned conservatively
    return r;
  }
  node.bound = sol.objective;
  if (node.bound >= cutoff_snapshot) {
    r.pruned = true;
    return r;
  }

  // Most fractional integer variable.
  std::ptrdiff_t branch_var = -1;
  double worst_frac = opts.integer_tol;
  for (std::size_t j = 0; j < n; ++j) {
    if (model.variables()[j].type == VarType::kContinuous) {
      continue;
    }
    const double f = std::fabs(sol.x[j] - std::round(sol.x[j]));
    if (f > worst_frac) {
      worst_frac = f;
      branch_var = static_cast<std::ptrdiff_t>(j);
    }
  }

  if (branch_var < 0) {
    // Integral: complete exactly and offer as incumbent candidate.
    r.completion = complete_integer_point(model, empty_pool, curvature, sol.x,
                                          node.lower, node.upper);
    ++r.lp_solves;
    const bool exact =
        r.completion &&
        r.completion->objective - node.bound <=
            std::max(1e-9, opts.rel_gap * std::fabs(r.completion->objective));
    if (exact) {
      return r;
    }
    // Residual gap: tighten by splitting the widest link interval.
    std::ptrdiff_t widest = -1;
    double width = 0.999;
    for (const UnivariateLink& link : model.links()) {
      const double w = node.upper[link.n_var] - node.lower[link.n_var];
      if (w > width) {
        width = w;
        widest = static_cast<std::ptrdiff_t>(link.n_var);
      }
    }
    if (widest < 0) {
      return r;  // node fully resolved
    }
    const auto j = static_cast<std::size_t>(widest);
    const double split = std::clamp(std::round(sol.x[j]), node.lower[j],
                                    node.upper[j] - 1.0);
    Node left = node;
    Node right = node;
    left.upper[j] = split;
    right.lower[j] = split + 1.0;
    left.depth = right.depth = node.depth + 1;
    r.children.push_back(std::move(left));
    r.children.push_back(std::move(right));
    return r;
  }

  const auto j = static_cast<std::size_t>(branch_var);
  Node down = node;
  Node up = node;
  down.upper[j] = std::floor(sol.x[j]);
  up.lower[j] = std::ceil(sol.x[j]);
  down.depth = up.depth = node.depth + 1;
  if (down.lower[j] <= down.upper[j]) {
    r.children.push_back(std::move(down));
  }
  if (up.lower[j] <= up.upper[j]) {
    r.children.push_back(std::move(up));
  }
  return r;
}

}  // namespace

MinlpResult solve_nlp_bb(const Model& model, const NlpBbOptions& opts) {
  HSLB_REQUIRE(model.sos1_sets().empty(),
               "NLP-BB does not support SOS1 sets; use minlp::solve");
  for (const UnivariateLink& link : model.links()) {
    HSLB_REQUIRE(static_cast<bool>(link.fn.as_expr),
                 "NLP-BB needs a symbolic form for every link");
  }

  common::WallTimer timer;
  MinlpResult out;
  SolveStats& stats = out.stats;

  const std::size_t n = model.num_vars();
  const std::vector<Curvature> curvature = resolve_curvatures(model);
  const CutPool empty_pool;

  Node root;
  root.lower.resize(n);
  root.upper.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    root.lower[j] = model.variables()[j].lower;
    root.upper[j] = model.variables()[j].upper;
  }

  std::deque<Node> stack;
  stack.push_back(std::move(root));

  bool have_incumbent = false;
  double incumbent_obj = lp::kInf;
  Vector incumbent_x;
  bool hit_node_limit = false;

  const auto cutoff = [&]() {
    if (!have_incumbent) {
      return lp::kInf;
    }
    return incumbent_obj -
           std::max(1e-9, opts.rel_gap * std::fabs(incumbent_obj));
  };

  const int requested_threads =
      opts.threads > 0 ? opts.threads
                       : static_cast<int>(std::thread::hardware_concurrency());
  const int num_threads = std::max(1, requested_threads);
  const std::size_t epoch_batch =
      static_cast<std::size_t>(std::max(1, opts.epoch_batch));
  std::optional<WorkerPool> workers;
  if (num_threads > 1) {
    workers.emplace(num_threads);
  }

  std::vector<Node> batch;
  std::vector<NodeResult> results;
  while (!stack.empty()) {
    if (stats.nodes_explored >= opts.max_nodes) {
      hit_node_limit = true;
      break;
    }
    const std::size_t batch_size = std::min(
        {epoch_batch, stack.size(),
         static_cast<std::size_t>(opts.max_nodes - stats.nodes_explored)});
    batch.clear();
    for (std::size_t i = 0; i < batch_size; ++i) {
      batch.push_back(std::move(stack.back()));  // LIFO, deterministic
      stack.pop_back();
    }
    const double cutoff_snapshot = cutoff();
    results.assign(batch_size, NodeResult{});
    obs::ScopedSpan epoch_span("minlp.epoch", "minlp");
    if (epoch_span.active()) {
      epoch_span.arg("batch", static_cast<long long>(batch_size));
    }
    const auto evaluate = [&](std::size_t i) {
      results[i] = process_node(model, opts, curvature, empty_pool,
                                cutoff_snapshot, std::move(batch[i]));
    };
    if (workers && batch_size > 1) {
      workers->run(batch_size, evaluate);
    } else {
      for (std::size_t i = 0; i < batch_size; ++i) {
        evaluate(i);
      }
    }
    ++stats.epochs;

    for (std::size_t i = 0; i < batch_size; ++i) {
      NodeResult& r = results[i];
      ++stats.nodes_explored;
      stats.nlp_solves += r.nlp_solves;
      stats.lp_solves += r.lp_solves;
      if (r.completion && r.completion->objective < incumbent_obj) {
        incumbent_obj = r.completion->objective;
        incumbent_x = r.completion->x;
        have_incumbent = true;
        ++stats.incumbent_updates;
      }
      for (Node& child : r.children) {
        stack.push_back(std::move(child));
      }
    }
  }

  stats.wall_seconds = timer.seconds();
  stats.best_bound = incumbent_obj;
  if (have_incumbent) {
    out.status =
        hit_node_limit ? MinlpStatus::kNodeLimit : MinlpStatus::kOptimal;
    out.x = std::move(incumbent_x);
    out.objective = incumbent_obj;
  } else {
    out.status =
        hit_node_limit ? MinlpStatus::kNodeLimit : MinlpStatus::kInfeasible;
  }
  return out;
}

}  // namespace hslb::minlp
