#include "hslb/minlp/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <sstream>

#include "hslb/common/error.hpp"
#include "hslb/common/timing.hpp"
#include "hslb/lp/simplex.hpp"
#include "hslb/obs/obs.hpp"
#include "hslb/minlp/presolve.hpp"
#include "hslb/minlp/relaxation.hpp"
#include "hslb/nlp/barrier.hpp"

namespace hslb::minlp {
namespace {

using linalg::Vector;

struct Node {
  Vector lower;
  Vector upper;
  double bound = -lp::kInf;  // inherited LP bound (valid lower bound)
  int depth = 0;
};

/// Open-node container honoring the selection policy.
class NodeQueue {
 public:
  explicit NodeQueue(NodeSelection selection) : selection_(selection) {}

  void push(Node node) { nodes_.push_back(std::move(node)); }
  bool empty() const { return nodes_.empty(); }
  std::size_t size() const { return nodes_.size(); }

  Node pop() {
    HSLB_ASSERT(!nodes_.empty(), "pop from empty node queue");
    std::size_t pick = nodes_.size() - 1;  // depth-first: LIFO
    if (selection_ == NodeSelection::kBestBound) {
      for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].bound < nodes_[pick].bound) {
          pick = i;
        }
      }
    }
    Node node = std::move(nodes_[pick]);
    nodes_.erase(nodes_.begin() + static_cast<std::ptrdiff_t>(pick));
    return node;
  }

  /// Smallest bound among open nodes (-inf when empty is not meaningful).
  double best_open_bound() const {
    double best = lp::kInf;
    for (const Node& n : nodes_) {
      best = std::min(best, n.bound);
    }
    return best;
  }

  /// Drop nodes whose bound cannot beat the incumbent.
  void prune_above(double cutoff) {
    std::erase_if(nodes_, [cutoff](const Node& n) { return n.bound >= cutoff; });
  }

 private:
  NodeSelection selection_;
  std::deque<Node> nodes_;
};

/// Geometric (log-spaced when possible) tangent seed points on [lo, hi].
std::vector<double> seed_points(double lo, double hi, int count) {
  std::vector<double> pts;
  if (!(std::isfinite(lo) && std::isfinite(hi)) || hi <= lo || count <= 0) {
    return pts;
  }
  if (count == 1) {
    pts.push_back(0.5 * (lo + hi));
    return pts;
  }
  if (lo > 0.0) {
    const double llo = std::log(lo);
    const double lhi = std::log(hi);
    for (int i = 0; i < count; ++i) {
      pts.push_back(std::exp(llo + (lhi - llo) * i / (count - 1)));
    }
  } else {
    for (int i = 0; i < count; ++i) {
      pts.push_back(lo + (hi - lo) * i / (count - 1));
    }
  }
  return pts;
}

/// Solve the one-sided continuous NLP relaxation to seed linearizations.
/// Requires every link to carry a symbolic form.
///
/// The NLP is built over the *non-binary* variables only: the SOS selection
/// binaries (and the rows tying them) are pure integer bookkeeping, and
/// dropping them yields a looser but valid continuous relaxation with a
/// nonempty strict interior -- and a Hessian whose size does not scale with
/// the allocation-set cardinality.  Returns a full-space point (binaries 0).
std::optional<Vector> solve_root_nlp(const Model& model, SolveStats& stats) {
  for (const UnivariateLink& link : model.links()) {
    if (!link.fn.as_expr) {
      return std::nullopt;
    }
  }
  const std::size_t n_full = model.num_vars();

  // Compact index map over non-binary variables.
  constexpr std::size_t kUnmapped = static_cast<std::size_t>(-1);
  std::vector<std::size_t> to_compact(n_full, kUnmapped);
  std::vector<std::size_t> to_full;
  for (std::size_t j = 0; j < n_full; ++j) {
    if (model.variables()[j].type != VarType::kBinary) {
      to_compact[j] = to_full.size();
      to_full.push_back(j);
    }
  }
  const auto cvar = [&](std::size_t full_index) {
    return expr::variable(to_compact[full_index],
                          model.variables()[full_index].name);
  };

  nlp::NlpProblem relax;
  relax.num_vars = to_full.size();
  relax.lower.resize(relax.num_vars);
  relax.upper.resize(relax.num_vars);
  for (std::size_t k = 0; k < to_full.size(); ++k) {
    relax.lower[k] = model.variables()[to_full[k]].lower;
    relax.upper[k] = model.variables()[to_full[k]].upper;
  }

  expr::Expr obj = expr::constant(model.objective_offset());
  for (std::size_t j = 0; j < n_full; ++j) {
    if (model.objective_coeffs()[j] != 0.0) {
      if (to_compact[j] == kUnmapped) {
        return std::nullopt;  // objective on a binary: cannot drop it
      }
      obj += model.objective_coeffs()[j] * cvar(j);
    }
  }
  relax.objective = obj;

  for (const LinearConstraint& c : model.linear_constraints()) {
    bool touches_binary = false;
    for (const auto& [v, coef] : c.terms) {
      (void)coef;
      if (to_compact[v] == kUnmapped) {
        touches_binary = true;
        break;
      }
    }
    if (touches_binary) {
      continue;
    }
    expr::Expr row = expr::constant(0.0);
    for (const auto& [v, coef] : c.terms) {
      row += coef * cvar(v);
    }
    // Widen equality rows by a hair so a strict interior exists.
    const double slack =
        c.lower == c.upper ? 1e-6 * (1.0 + std::fabs(c.upper)) : 0.0;
    if (std::isfinite(c.upper)) {
      relax.constraints.push_back(row - (c.upper + slack));
    }
    if (std::isfinite(c.lower)) {
      relax.constraints.push_back((c.lower - slack) - row);
    }
  }
  for (const UnivariateLink& link : model.links()) {
    // One-sided: fn(n) - t <= 0 (the binding direction for min-time models).
    relax.constraints.push_back(link.fn.as_expr(cvar(link.n_var)) -
                                cvar(link.t_var));
  }
  for (const NonlinearConstraint& c : model.nonlinear_constraints()) {
    bool touches_binary = false;
    for (const std::size_t v : expr::variables_of(c.g)) {
      if (to_compact[v] == kUnmapped) {
        touches_binary = true;
        break;
      }
    }
    if (touches_binary) {
      continue;
    }
    relax.constraints.push_back(
        expr::remap_variables(c.g, to_compact) - c.upper);
  }

  nlp::BarrierOptions nlp_opts;
  nlp_opts.gap_tol = 1e-7;  // a rough center suffices for cut seeding
  const nlp::NlpResult r = nlp::solve_barrier(relax, std::nullopt, nlp_opts);
  ++stats.nlp_solves;
  if (r.status != nlp::NlpStatus::kOptimal) {
    return std::nullopt;
  }
  Vector full(n_full, 0.0);
  for (std::size_t k = 0; k < to_full.size(); ++k) {
    full[to_full[k]] = r.x[k];
  }
  return full;
}

struct Fractionality {
  std::ptrdiff_t var = -1;
  double frac = 0.0;  // distance to nearest integer
};

Fractionality most_fractional(const Model& model, const Vector& x,
                              double tol) {
  Fractionality out;
  for (std::size_t j = 0; j < model.num_vars(); ++j) {
    if (model.variables()[j].type == VarType::kContinuous) {
      continue;
    }
    const double f = std::fabs(x[j] - std::round(x[j]));
    if (f > tol && f > out.frac) {
      out.frac = f;
      out.var = static_cast<std::ptrdiff_t>(j);
    }
  }
  return out;
}

/// First SOS1 set with two or more members above tolerance.
std::ptrdiff_t violated_sos(const Model& model, const Vector& x, double tol) {
  for (std::size_t s = 0; s < model.sos1_sets().size(); ++s) {
    int nonzero = 0;
    for (const std::size_t v : model.sos1_sets()[s].vars) {
      if (x[v] > tol) {
        ++nonzero;
      }
    }
    if (nonzero >= 2) {
      return static_cast<std::ptrdiff_t>(s);
    }
  }
  return -1;
}

/// Cached per-solve metrics instruments (null when no registry installed).
struct SolveMetrics {
  obs::Counter* nodes = nullptr;
  obs::Counter* lp_solves = nullptr;
  obs::Counter* cuts = nullptr;
  obs::Counter* incumbents = nullptr;
  obs::Counter* pruned_bound = nullptr;
  obs::Counter* pruned_infeasible = nullptr;
  obs::Counter* lp_seconds = nullptr;
  obs::Histogram* lp_solve_ms = nullptr;

  explicit SolveMetrics(obs::Registry* registry) {
    if (registry == nullptr) {
      return;
    }
    nodes = &registry->counter("minlp.nodes_explored");
    lp_solves = &registry->counter("minlp.lp_solves");
    cuts = &registry->counter("minlp.cuts_added");
    incumbents = &registry->counter("minlp.incumbent_updates");
    pruned_bound = &registry->counter("minlp.pruned.bound");
    pruned_infeasible = &registry->counter("minlp.pruned.infeasible");
    lp_seconds = &registry->counter("minlp.lp_seconds");
    lp_solve_ms = &registry->histogram("minlp.lp_solve_ms");
  }
};

}  // namespace

std::string SolverEvent::to_line() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kPresolve:
      os << "presolve: " << presolve_tightenings << " bounds tightened in "
         << presolve_rounds << " rounds";
      break;
    case Kind::kProgress:
      os << "node " << node << ": open " << open_nodes << ", incumbent "
         << (have_incumbent ? std::to_string(incumbent)
                            : std::string("none"));
      break;
    case Kind::kIncumbent:
      os << "incumbent " << incumbent << " at node " << node;
      break;
    case Kind::kDone:
      os << "done: " << node << " nodes, " << lp_solves << " LPs, "
         << cuts_added << " cuts, "
         << (have_incumbent ? "objective " + std::to_string(incumbent)
                            : std::string("no incumbent"));
      break;
  }
  return os.str();
}

const char* to_string(MinlpStatus status) {
  switch (status) {
    case MinlpStatus::kOptimal:
      return "optimal";
    case MinlpStatus::kInfeasible:
      return "infeasible";
    case MinlpStatus::kNodeLimit:
      return "node-limit";
    case MinlpStatus::kTimeLimit:
      return "time-limit";
    case MinlpStatus::kUnbounded:
      return "unbounded";
  }
  return "unknown";
}

MinlpResult solve(const Model& model, const SolverOptions& opts) {
  common::WallTimer timer;
  HSLB_SPAN("minlp.solve");
  const SolveMetrics metrics(obs::current_metrics());
  MinlpResult out;
  SolveStats& stats = out.stats;
  const bool want_events =
      static_cast<bool>(opts.event_sink) || static_cast<bool>(opts.logger);
  const auto emit = [&opts](const SolverEvent& event) {
    if (opts.event_sink) {
      opts.event_sink(event);
    }
    if (opts.logger) {
      opts.logger(event.to_line());
    }
  };

  const std::size_t n = model.num_vars();
  HSLB_REQUIRE(n > 0, "cannot solve an empty model");

  const std::vector<Curvature> curvature = resolve_curvatures(model);

  // --- Presolve: FBBT bound tightening. --------------------------------------
  Vector root_lower(n);
  Vector root_upper(n);
  for (std::size_t j = 0; j < n; ++j) {
    root_lower[j] = model.variables()[j].lower;
    root_upper[j] = model.variables()[j].upper;
  }
  if (opts.use_presolve) {
    HSLB_SPAN("minlp.presolve");
    const PresolveResult pre = presolve(model);
    if (pre.infeasible) {
      out.status = MinlpStatus::kInfeasible;
      out.stats.wall_seconds = timer.seconds();
      return out;
    }
    root_lower = pre.lower;
    root_upper = pre.upper;
    stats.presolve_tightenings = pre.tightenings;
    if (want_events) {
      SolverEvent event;
      event.kind = SolverEvent::Kind::kPresolve;
      event.presolve_tightenings = pre.tightenings;
      event.presolve_rounds = pre.rounds;
      emit(event);
    }
  }

  // --- Seed the cut pool. ---------------------------------------------------
  CutPool pool;
  for (std::size_t li = 0; li < model.links().size(); ++li) {
    const UnivariateLink& link = model.links()[li];
    for (const double p :
         seed_points(root_lower[link.n_var], root_upper[link.n_var],
                     opts.initial_tangents_per_link)) {
      if (pool.add_link_tangent(model, curvature, li, p)) {
        ++stats.cuts_added;
      }
    }
  }
  if (opts.use_root_nlp) {
    HSLB_SPAN("minlp.root_nlp");
    if (const auto x_nlp = solve_root_nlp(model, stats)) {
      for (std::size_t li = 0; li < model.links().size(); ++li) {
        if (pool.add_link_tangent(model, curvature, li,
                                  (*x_nlp)[model.links()[li].n_var])) {
          ++stats.cuts_added;
        }
      }
      for (std::size_t ci = 0; ci < model.nonlinear_constraints().size();
           ++ci) {
        pool.add_nonlinear_cut(model, ci, *x_nlp);
        ++stats.cuts_added;
      }
    }
  }

  // --- Branch and bound. ------------------------------------------------------
  Node root;
  root.lower = root_lower;
  root.upper = root_upper;

  NodeQueue queue(opts.node_selection);
  queue.push(std::move(root));

  bool have_incumbent = false;
  double incumbent_obj = lp::kInf;
  Vector incumbent_x;
  bool hit_node_limit = false;
  bool hit_time_limit = false;

  const auto cutoff = [&]() {
    if (!have_incumbent) {
      return lp::kInf;
    }
    const double gap = std::max(1e-9, opts.rel_gap * std::fabs(incumbent_obj));
    return incumbent_obj - gap;
  };

  while (!queue.empty()) {
    if (stats.nodes_explored >= opts.max_nodes) {
      hit_node_limit = true;
      break;
    }
    if (opts.max_wall_seconds > 0.0 &&
        timer.seconds() >= opts.max_wall_seconds) {
      hit_time_limit = true;
      HSLB_COUNT("minlp.budget_exhausted", 1);
      break;
    }
    Node node = queue.pop();
    ++stats.nodes_explored;
    if (metrics.nodes != nullptr) {
      metrics.nodes->add(1.0);
    }
    if (want_events && opts.log_every_nodes > 0 &&
        (stats.nodes_explored == 1 ||
         stats.nodes_explored % opts.log_every_nodes == 0)) {
      SolverEvent event;
      event.kind = SolverEvent::Kind::kProgress;
      event.node = stats.nodes_explored;
      event.open_nodes = queue.size();
      event.have_incumbent = have_incumbent;
      event.incumbent = incumbent_obj;
      emit(event);
    }
    if (node.bound >= cutoff()) {
      ++stats.pruned_by_bound;
      if (metrics.pruned_bound != nullptr) {
        metrics.pruned_bound->add(1.0);
      }
      continue;
    }

    bool node_done = false;
    for (int round = 0; round <= opts.cut_rounds_per_node && !node_done;
         ++round) {
      const lp::LpProblem master =
          build_master_lp(model, pool, curvature, node.lower, node.upper);
      common::WallTimer lp_timer;
      const lp::LpSolution sol = lp::solve(master);
      const double lp_elapsed = lp_timer.seconds();
      stats.lp_seconds += lp_elapsed;
      ++stats.lp_solves;
      stats.simplex_iterations += sol.iterations;
      if (metrics.lp_solves != nullptr) {
        metrics.lp_solves->add(1.0);
        metrics.lp_seconds->add(lp_elapsed);
        metrics.lp_solve_ms->observe(lp_elapsed * 1e3);
      }

      if (sol.status == lp::LpStatus::kInfeasible) {
        ++stats.pruned_infeasible;
        if (metrics.pruned_infeasible != nullptr) {
          metrics.pruned_infeasible->add(1.0);
        }
        node_done = true;
        break;
      }
      if (sol.status == lp::LpStatus::kUnbounded) {
        out.status = MinlpStatus::kUnbounded;
        out.stats.wall_seconds = timer.seconds();
        return out;
      }
      HSLB_ASSERT(sol.status == lp::LpStatus::kOptimal,
                  "unexpected LP status in branch-and-bound");
      node.bound = std::max(node.bound, sol.objective);
      if (node.bound >= cutoff()) {
        node_done = true;
        break;
      }

      // Branch on SOS violation first (when enabled).
      if (opts.use_sos_branching) {
        const std::ptrdiff_t s = violated_sos(model, sol.x, opts.integer_tol);
        if (s >= 0) {
          const Sos1Set& set = model.sos1_sets()[static_cast<std::size_t>(s)];
          double position = 0.0;
          for (std::size_t k = 0; k < set.vars.size(); ++k) {
            position += set.weights[k] * sol.x[set.vars[k]];
          }
          // Partition members by weight around the weighted position.
          std::vector<std::size_t> left;
          std::vector<std::size_t> right;
          for (std::size_t k = 0; k < set.vars.size(); ++k) {
            (set.weights[k] <= position ? left : right).push_back(set.vars[k]);
          }
          if (left.empty() || right.empty()) {
            // Degenerate partition; split at the median member instead.
            left.clear();
            right.clear();
            for (std::size_t k = 0; k < set.vars.size(); ++k) {
              (k < set.vars.size() / 2 ? left : right).push_back(set.vars[k]);
            }
          }
          Node child_a = node;    // zero out the right part
          Node child_b = node;    // zero out the left part
          for (const std::size_t v : right) {
            child_a.upper[v] = 0.0;
          }
          for (const std::size_t v : left) {
            child_b.upper[v] = 0.0;
          }
          child_a.depth = child_b.depth = node.depth + 1;
          queue.push(std::move(child_a));
          queue.push(std::move(child_b));
          node_done = true;
          break;
        }
      }

      // Then on fractional integer variables.
      const Fractionality frac =
          most_fractional(model, sol.x, opts.integer_tol);
      if (frac.var >= 0) {
        const auto j = static_cast<std::size_t>(frac.var);
        Node down = node;
        Node up = node;
        down.upper[j] = std::floor(sol.x[j]);
        up.lower[j] = std::ceil(sol.x[j]);
        down.depth = up.depth = node.depth + 1;
        if (down.lower[j] <= down.upper[j]) {
          queue.push(std::move(down));
        }
        if (up.lower[j] <= up.upper[j]) {
          queue.push(std::move(up));
        }
        node_done = true;
        break;
      }

      // Integral (and SOS-feasible) master solution: lazily tighten the
      // linearization where the true nonlinearities are violated.
      bool added_cut = false;
      for (std::size_t ci = 0; ci < model.nonlinear_constraints().size();
           ++ci) {
        const NonlinearConstraint& c = model.nonlinear_constraints()[ci];
        const double g = expr::eval(c.g, sol.x);
        if (g > c.upper + 1e-7 * std::max(1.0, std::fabs(c.upper))) {
          pool.add_nonlinear_cut(model, ci, sol.x);
          ++stats.cuts_added;
          added_cut = true;
        }
      }
      for (std::size_t li = 0; li < model.links().size(); ++li) {
        const UnivariateLink& link = model.links()[li];
        const double t = sol.x[link.t_var];
        const double f = link.fn.value(sol.x[link.n_var]);
        const double tol = 1e-7 * std::max(1.0, std::fabs(f));
        const bool below = t < f - tol;
        const bool above = t > f + tol;
        if ((curvature[li] == Curvature::kConvex && below) ||
            (curvature[li] == Curvature::kConcave && above)) {
          if (pool.add_link_tangent(model, curvature, li,
                                    sol.x[link.n_var])) {
            ++stats.cuts_added;
            added_cut = true;
          }
        }
      }
      if (added_cut && round < opts.cut_rounds_per_node) {
        continue;  // re-solve this node against the tightened master
      }

      // Candidate: complete the integer point to a true feasible solution.
      const auto completion = complete_integer_point(
          model, pool, curvature, sol.x, node.lower, node.upper);
      ++stats.lp_solves;
      if (metrics.lp_solves != nullptr) {
        metrics.lp_solves->add(1.0);
      }
      if (completion && completion->objective < incumbent_obj) {
        incumbent_obj = completion->objective;
        incumbent_x = completion->x;
        have_incumbent = true;
        ++stats.incumbent_updates;
        if (metrics.incumbents != nullptr) {
          metrics.incumbents->add(1.0);
        }
        queue.prune_above(cutoff());
        if (want_events) {
          SolverEvent event;
          event.kind = SolverEvent::Kind::kIncumbent;
          event.node = stats.nodes_explored;
          event.open_nodes = queue.size();
          event.have_incumbent = true;
          event.incumbent = incumbent_obj;
          emit(event);
        }
      }

      const double gap_here =
          completion ? completion->objective - node.bound : lp::kInf;
      if (completion &&
          gap_here <= std::max(1e-9, opts.rel_gap *
                                         std::fabs(completion->objective))) {
        node_done = true;  // node solved exactly
        break;
      }

      // The relaxation still under-estimates this node (chord gap on the
      // "t <= fn" side, or the completion is infeasible).  Branch spatially
      // on the link variable with the largest chord error.
      std::ptrdiff_t branch_var = -1;
      double worst_err = 1e-7;
      for (const UnivariateLink& link : model.links()) {
        const double width =
            node.upper[link.n_var] - node.lower[link.n_var];
        if (width < 1.0) {
          continue;
        }
        const double err =
            std::fabs(sol.x[link.t_var] - link.fn.value(sol.x[link.n_var]));
        if (err > worst_err) {
          worst_err = err;
          branch_var = static_cast<std::ptrdiff_t>(link.n_var);
        }
      }
      if (branch_var < 0) {
        // No refinable link interval left: pick any unfixed integer so the
        // children eventually close every interval.
        for (const UnivariateLink& link : model.links()) {
          if (node.upper[link.n_var] - node.lower[link.n_var] >= 1.0) {
            branch_var = static_cast<std::ptrdiff_t>(link.n_var);
            break;
          }
        }
      }
      if (branch_var < 0) {
        node_done = true;  // node fully resolved; nothing better inside
        break;
      }
      const auto j = static_cast<std::size_t>(branch_var);
      const double split =
          std::clamp(std::round(sol.x[j]), node.lower[j], node.upper[j] - 1.0);
      Node left = node;
      Node right = node;
      left.upper[j] = split;
      right.lower[j] = split + 1.0;
      left.depth = right.depth = node.depth + 1;
      queue.push(std::move(left));
      queue.push(std::move(right));
      node_done = true;
      break;
    }
  }

  stats.wall_seconds = timer.seconds();
  stats.best_bound = queue.empty() ? incumbent_obj
                                   : std::min(queue.best_open_bound(),
                                              incumbent_obj);
  if (want_events) {
    SolverEvent event;
    event.kind = SolverEvent::Kind::kDone;
    event.node = stats.nodes_explored;
    event.open_nodes = queue.size();
    event.have_incumbent = have_incumbent;
    event.incumbent = incumbent_obj;
    event.best_bound = stats.best_bound;
    event.lp_solves = stats.lp_solves;
    event.cuts_added = stats.cuts_added;
    emit(event);
  }
  if (metrics.cuts != nullptr) {
    metrics.cuts->add(static_cast<double>(stats.cuts_added));
  }
  const auto limited_status = [&] {
    if (hit_time_limit) {
      return MinlpStatus::kTimeLimit;
    }
    return hit_node_limit ? MinlpStatus::kNodeLimit : MinlpStatus::kOptimal;
  };
  if (have_incumbent) {
    out.status = limited_status();
    out.x = std::move(incumbent_x);
    out.objective = incumbent_obj;
  } else {
    out.status = hit_time_limit || hit_node_limit ? limited_status()
                                                  : MinlpStatus::kInfeasible;
  }
  return out;
}

}  // namespace hslb::minlp
