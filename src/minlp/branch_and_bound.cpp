// Deterministic epoch-parallel LP/NLP-based branch-and-bound.
//
// Parallel scheme (see DESIGN.md "Parallel solve"): the search advances in
// epochs.  Each epoch pops up to SolverOptions::epoch_batch nodes from the
// heap in deterministic order, evaluates them in parallel against an
// immutable snapshot of the cut pool and the cutoff, and merges the results
// (incumbents, cuts, children, stats) back in batch order on the main
// thread.  Node evaluation is a pure function of (node, snapshot, options),
// so the incumbent, bound, and every deterministic stat are byte-identical
// across thread counts and runs; `threads` only changes wall time.
// epoch_batch == 1 reproduces the classic serial node loop exactly.
#include "hslb/minlp/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>

#include "hslb/common/arena.hpp"
#include "hslb/common/error.hpp"
#include "hslb/common/timing.hpp"
#include "hslb/lp/simplex.hpp"
#include "hslb/obs/obs.hpp"
#include "hslb/minlp/presolve.hpp"
#include "hslb/minlp/relaxation.hpp"
#include "hslb/minlp/worker_pool.hpp"
#include "hslb/nlp/barrier.hpp"

namespace hslb::minlp {
namespace {

using linalg::Vector;

struct Node {
  Vector lower;
  Vector upper;
  double bound = -lp::kInf;  // inherited LP bound (valid lower bound)
  int depth = 0;
  /// Stable ID, assigned in merge order at push time (root = 0).  Ties the
  /// heap order, names the node's cuts, and is thread-count independent.
  std::uint64_t id = 0;
  /// Parent's final simplex basis + the row keys of the LP it was captured
  /// on, for warm-starting this node's first LP solve.
  lp::Basis warm;
  std::vector<std::uint64_t> warm_keys;
  /// Parent's maintained LU factor (immutable snapshot, shared across the
  /// siblings).  The child's first LP adopts it -- extending it by a
  /// bordered block for any new cut/chord rows -- instead of factorizing
  /// from scratch; the sparse engine validates row identity and falls back
  /// to a fresh LU whenever anything moved.
  lp::FactorRef warm_factor;
};

/// Per-batch-slot allocation recycling.  Node bound vectors are born when a
/// node branches and die when the child is evaluated; pooling them keeps the
/// tree walk off the heap.  One scratch per epoch slot: a slot runs at most
/// one node per epoch and epochs join before merging, so the pool needs no
/// locking even though different threads may own a slot across epochs.
struct NodeScratch {
  common::VectorPool<double> bounds;
};

/// Open-node container honoring the selection policy: a binary heap ordered
/// by (bound, id) for best-bound / by id (LIFO) for depth-first, plus a
/// multiset of open bounds so best_open_bound() is O(1) instead of the old
/// linear scan per gap report.
class NodeQueue {
 public:
  explicit NodeQueue(NodeSelection selection) : selection_(selection) {}

  /// Comparator for std::push_heap: "a has lower priority than b".
  auto lower_priority() const {
    const NodeSelection sel = selection_;
    return [sel](const Node& a, const Node& b) {
      if (sel == NodeSelection::kBestBound) {
        // Min (bound, id): older nodes win ties for reproducibility.
        return std::tie(a.bound, a.id) > std::tie(b.bound, b.id);
      }
      return a.id < b.id;  // depth-first: newest node first (LIFO)
    };
  }

  void push(Node node) {
    bounds_.insert(node.bound);
    heap_.push_back(std::move(node));
    std::push_heap(heap_.begin(), heap_.end(), lower_priority());
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  Node pop() {
    HSLB_ASSERT(!heap_.empty(), "pop from empty node queue");
    std::pop_heap(heap_.begin(), heap_.end(), lower_priority());
    Node node = std::move(heap_.back());
    heap_.pop_back();
    bounds_.erase(bounds_.find(node.bound));
    return node;
  }

  /// Remove and return the deepest open node (max (depth, id)).  Epoch
  /// batches mix these "dive" picks with the configured selection: a batch
  /// shares one immutable snapshot, so pure best-bound batches would spend
  /// every slot widening the frontier while the incumbent -- the thing that
  /// prunes the frontier -- only ever arrives at the end of a deep chain.
  /// Linear scan + re-heapify; epoch batches are small and nodes cost LPs.
  Node pop_deepest() {
    HSLB_ASSERT(!heap_.empty(), "pop from empty node queue");
    std::size_t best = 0;
    for (std::size_t i = 1; i < heap_.size(); ++i) {
      if (std::tie(heap_[i].depth, heap_[i].id) >
          std::tie(heap_[best].depth, heap_[best].id)) {
        best = i;
      }
    }
    Node node = std::move(heap_[best]);
    heap_.erase(heap_.begin() + static_cast<std::ptrdiff_t>(best));
    std::make_heap(heap_.begin(), heap_.end(), lower_priority());
    bounds_.erase(bounds_.find(node.bound));
    return node;
  }

  /// Smallest bound among open nodes (+inf when empty).
  double best_open_bound() const {
    return bounds_.empty() ? lp::kInf : *bounds_.begin();
  }

  /// Drop nodes whose bound cannot beat the incumbent.
  void prune_above(double cutoff) {
    const std::size_t before = heap_.size();
    std::erase_if(heap_, [cutoff](const Node& n) { return n.bound >= cutoff; });
    if (heap_.size() != before) {
      std::make_heap(heap_.begin(), heap_.end(), lower_priority());
      bounds_.clear();
      for (const Node& n : heap_) {
        bounds_.insert(n.bound);
      }
    }
  }

 private:
  NodeSelection selection_;
  std::vector<Node> heap_;
  std::multiset<double> bounds_;
};

/// Geometric (log-spaced when possible) tangent seed points on [lo, hi].
std::vector<double> seed_points(double lo, double hi, int count) {
  std::vector<double> pts;
  if (!(std::isfinite(lo) && std::isfinite(hi)) || hi <= lo || count <= 0) {
    return pts;
  }
  if (count == 1) {
    pts.push_back(0.5 * (lo + hi));
    return pts;
  }
  if (lo > 0.0) {
    const double llo = std::log(lo);
    const double lhi = std::log(hi);
    for (int i = 0; i < count; ++i) {
      pts.push_back(std::exp(llo + (lhi - llo) * i / (count - 1)));
    }
  } else {
    for (int i = 0; i < count; ++i) {
      pts.push_back(lo + (hi - lo) * i / (count - 1));
    }
  }
  return pts;
}

/// Solve the one-sided continuous NLP relaxation to seed linearizations.
/// Requires every link to carry a symbolic form.
///
/// The NLP is built over the *non-binary* variables only: the SOS selection
/// binaries (and the rows tying them) are pure integer bookkeeping, and
/// dropping them yields a looser but valid continuous relaxation with a
/// nonempty strict interior -- and a Hessian whose size does not scale with
/// the allocation-set cardinality.  Returns a full-space point (binaries 0).
std::optional<Vector> solve_root_nlp(const Model& model, SolveStats& stats) {
  for (const UnivariateLink& link : model.links()) {
    if (!link.fn.as_expr) {
      return std::nullopt;
    }
  }
  const std::size_t n_full = model.num_vars();

  // Compact index map over non-binary variables.
  constexpr std::size_t kUnmapped = static_cast<std::size_t>(-1);
  std::vector<std::size_t> to_compact(n_full, kUnmapped);
  std::vector<std::size_t> to_full;
  for (std::size_t j = 0; j < n_full; ++j) {
    if (model.variables()[j].type != VarType::kBinary) {
      to_compact[j] = to_full.size();
      to_full.push_back(j);
    }
  }
  const auto cvar = [&](std::size_t full_index) {
    return expr::variable(to_compact[full_index],
                          model.variables()[full_index].name);
  };

  nlp::NlpProblem relax;
  relax.num_vars = to_full.size();
  relax.lower.resize(relax.num_vars);
  relax.upper.resize(relax.num_vars);
  for (std::size_t k = 0; k < to_full.size(); ++k) {
    relax.lower[k] = model.variables()[to_full[k]].lower;
    relax.upper[k] = model.variables()[to_full[k]].upper;
  }

  expr::Expr obj = expr::constant(model.objective_offset());
  for (std::size_t j = 0; j < n_full; ++j) {
    if (model.objective_coeffs()[j] != 0.0) {
      if (to_compact[j] == kUnmapped) {
        return std::nullopt;  // objective on a binary: cannot drop it
      }
      obj += model.objective_coeffs()[j] * cvar(j);
    }
  }
  relax.objective = obj;

  for (const LinearConstraint& c : model.linear_constraints()) {
    bool touches_binary = false;
    for (const auto& [v, coef] : c.terms) {
      (void)coef;
      if (to_compact[v] == kUnmapped) {
        touches_binary = true;
        break;
      }
    }
    if (touches_binary) {
      continue;
    }
    expr::Expr row = expr::constant(0.0);
    for (const auto& [v, coef] : c.terms) {
      row += coef * cvar(v);
    }
    // Widen equality rows by a hair so a strict interior exists.
    const double slack =
        c.lower == c.upper ? 1e-6 * (1.0 + std::fabs(c.upper)) : 0.0;
    if (std::isfinite(c.upper)) {
      relax.constraints.push_back(row - (c.upper + slack));
    }
    if (std::isfinite(c.lower)) {
      relax.constraints.push_back((c.lower - slack) - row);
    }
  }
  for (const UnivariateLink& link : model.links()) {
    // One-sided: fn(n) - t <= 0 (the binding direction for min-time models).
    relax.constraints.push_back(link.fn.as_expr(cvar(link.n_var)) -
                                cvar(link.t_var));
  }
  for (const NonlinearConstraint& c : model.nonlinear_constraints()) {
    bool touches_binary = false;
    for (const std::size_t v : expr::variables_of(c.g)) {
      if (to_compact[v] == kUnmapped) {
        touches_binary = true;
        break;
      }
    }
    if (touches_binary) {
      continue;
    }
    relax.constraints.push_back(
        expr::remap_variables(c.g, to_compact) - c.upper);
  }

  nlp::BarrierOptions nlp_opts;
  nlp_opts.gap_tol = 1e-7;  // a rough center suffices for cut seeding
  const nlp::NlpResult r = nlp::solve_barrier(relax, std::nullopt, nlp_opts);
  ++stats.nlp_solves;
  if (r.status != nlp::NlpStatus::kOptimal) {
    return std::nullopt;
  }
  Vector full(n_full, 0.0);
  for (std::size_t k = 0; k < to_full.size(); ++k) {
    full[to_full[k]] = r.x[k];
  }
  return full;
}

struct Fractionality {
  std::ptrdiff_t var = -1;
  double frac = 0.0;  // distance to nearest integer
};

Fractionality most_fractional(const Model& model, const Vector& x,
                              double tol) {
  Fractionality out;
  for (std::size_t j = 0; j < model.num_vars(); ++j) {
    if (model.variables()[j].type == VarType::kContinuous) {
      continue;
    }
    const double f = std::fabs(x[j] - std::round(x[j]));
    if (f > tol && f > out.frac) {
      out.frac = f;
      out.var = static_cast<std::ptrdiff_t>(j);
    }
  }
  return out;
}

/// First SOS1 set with two or more members above tolerance.
std::ptrdiff_t violated_sos(const Model& model, const Vector& x, double tol) {
  for (std::size_t s = 0; s < model.sos1_sets().size(); ++s) {
    int nonzero = 0;
    for (const std::size_t v : model.sos1_sets()[s].vars) {
      if (x[v] > tol) {
        ++nonzero;
      }
    }
    if (nonzero >= 2) {
      return static_cast<std::ptrdiff_t>(s);
    }
  }
  return -1;
}

/// Cached per-solve metrics instruments (null when no registry installed).
struct SolveMetrics {
  obs::Counter* nodes = nullptr;
  obs::Counter* lp_solves = nullptr;
  obs::Counter* cuts = nullptr;
  obs::Counter* incumbents = nullptr;
  obs::Counter* pruned_bound = nullptr;
  obs::Counter* pruned_infeasible = nullptr;
  obs::Counter* lp_seconds = nullptr;
  obs::Counter* epochs = nullptr;
  obs::Counter* warm_lp_solves = nullptr;
  obs::Counter* warm_phase1_skips = nullptr;
  obs::Counter* warm_iterations = nullptr;
  obs::Counter* cold_iterations = nullptr;
  obs::Counter* lp_factorizations = nullptr;
  obs::Counter* lp_refactorizations = nullptr;
  obs::Counter* lp_eta_updates = nullptr;
  obs::Counter* lp_bound_flips = nullptr;
  obs::Counter* lp_bt_fallbacks = nullptr;
  obs::Counter* lp_factor_inherits = nullptr;
  obs::Counter* lp_factor_seconds = nullptr;
  obs::Counter* lp_update_seconds = nullptr;
  obs::Counter* lp_pivot_seconds = nullptr;
  obs::Histogram* lp_solve_ms = nullptr;
  obs::Histogram* lp_solve_ms_warm = nullptr;
  obs::Histogram* lp_solve_ms_cold = nullptr;
  obs::Histogram* epoch_batch = nullptr;
  obs::Histogram* epoch_ms = nullptr;

  explicit SolveMetrics(obs::Registry* registry) {
    if (registry == nullptr) {
      return;
    }
    nodes = &registry->counter("minlp.nodes_explored");
    lp_solves = &registry->counter("minlp.lp_solves");
    cuts = &registry->counter("minlp.cuts_added");
    incumbents = &registry->counter("minlp.incumbent_updates");
    pruned_bound = &registry->counter("minlp.pruned.bound");
    pruned_infeasible = &registry->counter("minlp.pruned.infeasible");
    lp_seconds = &registry->counter("minlp.lp_seconds");
    epochs = &registry->counter("minlp.epochs");
    warm_lp_solves = &registry->counter("minlp.lp_solves.warm");
    warm_phase1_skips = &registry->counter("minlp.lp_solves.warm_phase1_skip");
    warm_iterations = &registry->counter("minlp.simplex_iterations.warm");
    cold_iterations = &registry->counter("minlp.simplex_iterations.cold");
    lp_factorizations = &registry->counter("minlp.lp.factorizations");
    lp_refactorizations = &registry->counter("minlp.lp.refactorizations");
    lp_eta_updates = &registry->counter("minlp.lp.eta_updates");
    lp_bound_flips = &registry->counter("minlp.lp.bound_flips");
    lp_bt_fallbacks = &registry->counter("minlp.lp.bt_fallbacks");
    lp_factor_inherits = &registry->counter("minlp.lp.factor_inherits");
    lp_factor_seconds = &registry->counter("minlp.lp.factor_seconds");
    lp_update_seconds = &registry->counter("minlp.lp.update_seconds");
    lp_pivot_seconds = &registry->counter("minlp.lp.pivot_seconds");
    lp_solve_ms = &registry->histogram("minlp.lp_solve_ms");
    lp_solve_ms_warm = &registry->histogram(
        "minlp.lp_solve_ms.warm", obs::Registry::hdr_time_bounds());
    lp_solve_ms_cold = &registry->histogram(
        "minlp.lp_solve_ms.cold", obs::Registry::hdr_time_bounds());
    epoch_batch = &registry->histogram("minlp.epoch_batch");
    epoch_ms = &registry->histogram("minlp.epoch.ms",
                                    obs::Registry::hdr_time_bounds());
  }
};

/// Everything one node evaluation produces, merged on the main thread in
/// batch order.  Filling this is a pure function of (node, pool snapshot,
/// cutoff snapshot, options) -- no shared mutable state -- which is what
/// makes the parallel search deterministic.
struct NodeResult {
  bool pruned_by_bound = false;
  bool pruned_infeasible = false;
  bool unbounded = false;
  double bound = -lp::kInf;
  std::uint64_t node_id = 0;
  /// Root-only (SolverOptions::capture_warm_start): the node's final basis,
  /// row keys, and maintained factor, exported for cross-solve warm starts.
  lp::Basis final_basis;
  std::vector<std::uint64_t> final_keys;
  lp::FactorRef final_factor;
  std::vector<Node> children;  // ids assigned at merge time
  CutPool cuts;                // worker-local cuts, deterministic ids
  std::optional<Completion> completion;
  long lp_solves = 0;
  long simplex_iterations = 0;
  long warm_lp_solves = 0;
  long warm_phase1_skips = 0;
  long warm_simplex_iterations = 0;
  long cold_simplex_iterations = 0;
  long lp_factorizations = 0;
  long lp_refactorizations = 0;
  long lp_eta_updates = 0;
  long lp_bound_flips = 0;
  long lp_bt_fallbacks = 0;
  long lp_factor_inherits = 0;
  double lp_seconds = 0.0;
  double lp_factor_seconds = 0.0;
  double lp_update_seconds = 0.0;
  double lp_pivot_seconds = 0.0;
  std::vector<double> lp_solve_ms;  // per-LP wall times (metrics only)
  std::vector<std::uint8_t> lp_solve_warm;  // parallel to lp_solve_ms
};

/// Evaluate one node against the epoch snapshot: cut rounds on the master
/// LP, branching, and incumbent-candidate completion.  Reads the shared cut
/// pool and the model, writes only its own NodeResult.
NodeResult process_node(const Model& model, const SolverOptions& opts,
                        const std::vector<Curvature>& curvature,
                        const CutPool& pool, double cutoff_snapshot,
                        Node node, NodeScratch& scratch) {
  NodeResult r;
  r.node_id = node.id;
  if (node.bound >= cutoff_snapshot) {
    r.pruned_by_bound = true;
    scratch.bounds.release(std::move(node.lower));
    scratch.bounds.release(std::move(node.upper));
    return r;
  }

  std::uint64_t cut_seq = 0;
  const std::uint64_t cut_base = (node.id + 1) << 16;
  lp::Basis warm = std::move(node.warm);
  std::vector<std::uint64_t> warm_keys = std::move(node.warm_keys);
  lp::FactorRef factor = std::move(node.warm_factor);
  lp::SimplexOptions lp_opts;
  lp_opts.engine = opts.lp_engine;
  lp_opts.capture_basis = opts.warm_start_lp;
  lp_opts.capture_factor =
      opts.warm_start_lp && opts.lp_engine == lp::LpEngine::kSparse;
  std::vector<std::uint64_t> keys;

  const auto inherit = [&](Node&& child) {
    child.depth = node.depth + 1;
    if (opts.warm_start_lp) {
      child.warm = warm;
      child.warm_keys = warm_keys;
      child.warm_factor = factor;
    }
    r.children.push_back(std::move(child));
  };
  /// Children copy the node's box through the slot pool so the tree walk
  /// recycles bound vectors instead of allocating two per branch.
  const auto clone_box = [&]() {
    Node child;
    child.lower = scratch.bounds.acquire_copy(node.lower);
    child.upper = scratch.bounds.acquire_copy(node.upper);
    child.bound = node.bound;
    return child;
  };

  for (int round = 0; round <= opts.cut_rounds_per_node; ++round) {
    const lp::LpProblem master =
        build_master_lp(model, pool, curvature, node.lower, node.upper,
                        &r.cuts, opts.warm_start_lp ? &keys : nullptr);
    common::WallTimer lp_timer;
    lp::LpSolution sol;
    if (opts.warm_start_lp) {
      // Row keys are passed even on the root's cold solve so the engine can
      // capture a FactorSnapshot for the children to adopt.
      sol = lp::resolve_from_basis(
          master,
          warm.empty() ? lp::Basis{} : lp::map_basis(warm, warm_keys, keys),
          lp::WarmFactor{factor, keys}, lp_opts);
    } else {
      sol = lp::solve(master, lp_opts);
    }
    const double lp_elapsed = lp_timer.seconds();
    r.lp_seconds += lp_elapsed;
    r.lp_solve_ms.push_back(lp_elapsed * 1e3);
    r.lp_solve_warm.push_back(sol.warm_used ? 1 : 0);
    ++r.lp_solves;
    r.simplex_iterations += sol.iterations;
    if (sol.warm_used) {
      ++r.warm_lp_solves;
      r.warm_simplex_iterations += sol.iterations;
      if (sol.warm_phase1_skipped) {
        ++r.warm_phase1_skips;
      }
    } else {
      r.cold_simplex_iterations += sol.iterations;
    }
    r.lp_factorizations += sol.factorizations;
    r.lp_refactorizations += sol.refactorizations;
    r.lp_eta_updates += sol.eta_updates;
    r.lp_bound_flips += sol.bound_flips;
    r.lp_bt_fallbacks += sol.bt_fallbacks;
    r.lp_factor_inherits += sol.factor_inherited ? 1 : 0;
    r.lp_factor_seconds += sol.factor_seconds;
    r.lp_update_seconds += sol.update_seconds;
    r.lp_pivot_seconds += sol.pivot_seconds;

    if (sol.status == lp::LpStatus::kInfeasible) {
      r.pruned_infeasible = true;
      break;
    }
    if (sol.status == lp::LpStatus::kUnbounded) {
      r.unbounded = true;
      break;
    }
    HSLB_ASSERT(sol.status == lp::LpStatus::kOptimal,
                "unexpected LP status in branch-and-bound");
    if (opts.warm_start_lp && !sol.basis.empty()) {
      warm = sol.basis;
      warm_keys = keys;
    }
    if (opts.warm_start_lp && sol.factor != nullptr) {
      factor = sol.factor;  // children adopt the latest maintained factor
    }
    node.bound = std::max(node.bound, sol.objective);
    if (node.bound >= cutoff_snapshot) {
      break;
    }

    // Branch on SOS violation first (when enabled).
    if (opts.use_sos_branching) {
      const std::ptrdiff_t s = violated_sos(model, sol.x, opts.integer_tol);
      if (s >= 0) {
        const Sos1Set& set = model.sos1_sets()[static_cast<std::size_t>(s)];
        double position = 0.0;
        for (std::size_t k = 0; k < set.vars.size(); ++k) {
          position += set.weights[k] * sol.x[set.vars[k]];
        }
        // Partition members by weight around the weighted position.
        std::vector<std::size_t> left;
        std::vector<std::size_t> right;
        for (std::size_t k = 0; k < set.vars.size(); ++k) {
          (set.weights[k] <= position ? left : right).push_back(set.vars[k]);
        }
        if (left.empty() || right.empty()) {
          // Degenerate partition; split at the median member instead.
          left.clear();
          right.clear();
          for (std::size_t k = 0; k < set.vars.size(); ++k) {
            (k < set.vars.size() / 2 ? left : right).push_back(set.vars[k]);
          }
        }
        Node child_a = clone_box();  // zero out the right part
        Node child_b = clone_box();  // zero out the left part
        for (const std::size_t v : right) {
          child_a.upper[v] = 0.0;
        }
        for (const std::size_t v : left) {
          child_b.upper[v] = 0.0;
        }
        inherit(std::move(child_a));
        inherit(std::move(child_b));
        break;
      }
    }

    // Then on fractional integer variables.
    const Fractionality frac = most_fractional(model, sol.x, opts.integer_tol);
    if (frac.var >= 0) {
      const auto j = static_cast<std::size_t>(frac.var);
      Node down = clone_box();
      Node up = clone_box();
      down.upper[j] = std::floor(sol.x[j]);
      up.lower[j] = std::ceil(sol.x[j]);
      if (down.lower[j] <= down.upper[j]) {
        inherit(std::move(down));
      }
      if (up.lower[j] <= up.upper[j]) {
        inherit(std::move(up));
      }
      break;
    }

    // Integral (and SOS-feasible) master solution: lazily tighten the
    // linearization where the true nonlinearities are violated.
    bool added_cut = false;
    for (std::size_t ci = 0; ci < model.nonlinear_constraints().size(); ++ci) {
      const NonlinearConstraint& c = model.nonlinear_constraints()[ci];
      const double g = expr::eval(c.g, sol.x);
      if (g > c.upper + 1e-7 * std::max(1.0, std::fabs(c.upper))) {
        r.cuts.add_nonlinear_cut(model, ci, sol.x, cut_base | cut_seq);
        ++cut_seq;
        added_cut = true;
      }
    }
    for (std::size_t li = 0; li < model.links().size(); ++li) {
      const UnivariateLink& link = model.links()[li];
      const double t = sol.x[link.t_var];
      const double f = link.fn.value(sol.x[link.n_var]);
      const double tol = 1e-7 * std::max(1.0, std::fabs(f));
      const bool below = t < f - tol;
      const bool above = t > f + tol;
      if ((curvature[li] == Curvature::kConvex && below) ||
          (curvature[li] == Curvature::kConcave && above)) {
        if (!pool.has_link_tangent(li, sol.x[link.n_var]) &&
            r.cuts.add_link_tangent(model, curvature, li, sol.x[link.n_var],
                                    cut_base | cut_seq)) {
          ++cut_seq;
          added_cut = true;
        }
      }
    }
    if (added_cut && round < opts.cut_rounds_per_node) {
      continue;  // re-solve this node against the tightened master
    }

    // Candidate: complete the integer point to a true feasible solution.
    r.completion = complete_integer_point(
        model, pool, curvature, sol.x, node.lower, node.upper, &r.cuts,
        opts.warm_start_lp ? &warm : nullptr, warm_keys);
    ++r.lp_solves;

    const double gap_here =
        r.completion ? r.completion->objective - node.bound : lp::kInf;
    if (r.completion &&
        gap_here <= std::max(1e-9, opts.rel_gap *
                                       std::fabs(r.completion->objective))) {
      break;  // node solved exactly
    }

    // The relaxation still under-estimates this node (chord gap on the
    // "t <= fn" side, or the completion is infeasible).  Branch spatially
    // on the link variable with the largest chord error.
    std::ptrdiff_t branch_var = -1;
    double worst_err = 1e-7;
    for (const UnivariateLink& link : model.links()) {
      const double width = node.upper[link.n_var] - node.lower[link.n_var];
      if (width < 1.0) {
        continue;
      }
      const double err =
          std::fabs(sol.x[link.t_var] - link.fn.value(sol.x[link.n_var]));
      if (err > worst_err) {
        worst_err = err;
        branch_var = static_cast<std::ptrdiff_t>(link.n_var);
      }
    }
    if (branch_var < 0) {
      // No refinable link interval left: pick any unfixed integer so the
      // children eventually close every interval.
      for (const UnivariateLink& link : model.links()) {
        if (node.upper[link.n_var] - node.lower[link.n_var] >= 1.0) {
          branch_var = static_cast<std::ptrdiff_t>(link.n_var);
          break;
        }
      }
    }
    if (branch_var < 0) {
      break;  // node fully resolved; nothing better inside
    }
    const auto j = static_cast<std::size_t>(branch_var);
    const double split =
        std::clamp(std::round(sol.x[j]), node.lower[j], node.upper[j] - 1.0);
    Node left = clone_box();
    Node right = clone_box();
    left.upper[j] = split;
    right.lower[j] = split + 1.0;
    inherit(std::move(left));
    inherit(std::move(right));
    break;
  }

  r.bound = node.bound;
  if (opts.capture_warm_start && node.id == 0) {
    r.final_basis = std::move(warm);
    r.final_keys = std::move(warm_keys);
    r.final_factor = std::move(factor);
  }
  scratch.bounds.release(std::move(node.lower));
  scratch.bounds.release(std::move(node.upper));
  return r;
}

}  // namespace

std::string SolverEvent::to_line() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kPresolve:
      os << "presolve: " << presolve_tightenings << " bounds tightened in "
         << presolve_rounds << " rounds";
      break;
    case Kind::kProgress:
      os << "node " << node << ": open " << open_nodes << ", incumbent "
         << (have_incumbent ? std::to_string(incumbent)
                            : std::string("none"));
      break;
    case Kind::kIncumbent:
      os << "incumbent " << incumbent << " at node " << node;
      break;
    case Kind::kDone:
      os << "done: " << node << " nodes, " << lp_solves << " LPs, "
         << cuts_added << " cuts, "
         << (have_incumbent ? "objective " + std::to_string(incumbent)
                            : std::string("no incumbent"));
      break;
  }
  return os.str();
}

const char* to_string(MinlpStatus status) {
  switch (status) {
    case MinlpStatus::kOptimal:
      return "optimal";
    case MinlpStatus::kInfeasible:
      return "infeasible";
    case MinlpStatus::kNodeLimit:
      return "node-limit";
    case MinlpStatus::kTimeLimit:
      return "time-limit";
    case MinlpStatus::kUnbounded:
      return "unbounded";
  }
  return "unknown";
}

MinlpResult solve(const Model& model, const SolverOptions& opts) {
  common::WallTimer timer;
  HSLB_SPAN("minlp.solve");
  const SolveMetrics metrics(obs::current_metrics());
  MinlpResult out;
  SolveStats& stats = out.stats;
  const bool want_events =
      static_cast<bool>(opts.event_sink) || static_cast<bool>(opts.logger);
  const auto emit = [&opts](const SolverEvent& event) {
    if (opts.event_sink) {
      opts.event_sink(event);
    }
    if (opts.logger) {
      opts.logger(event.to_line());
    }
  };

  const std::size_t n = model.num_vars();
  HSLB_REQUIRE(n > 0, "cannot solve an empty model");

  const std::vector<Curvature> curvature = resolve_curvatures(model);

  // --- Presolve: FBBT bound tightening. --------------------------------------
  Vector root_lower(n);
  Vector root_upper(n);
  for (std::size_t j = 0; j < n; ++j) {
    root_lower[j] = model.variables()[j].lower;
    root_upper[j] = model.variables()[j].upper;
  }
  if (opts.use_presolve) {
    HSLB_SPAN("minlp.presolve");
    const PresolveResult pre = presolve(model);
    if (pre.infeasible) {
      out.status = MinlpStatus::kInfeasible;
      out.stats.wall_seconds = timer.seconds();
      return out;
    }
    root_lower = pre.lower;
    root_upper = pre.upper;
    stats.presolve_tightenings = pre.tightenings;
    if (want_events) {
      SolverEvent event;
      event.kind = SolverEvent::Kind::kPresolve;
      event.presolve_tightenings = pre.tightenings;
      event.presolve_rounds = pre.rounds;
      emit(event);
    }
  }

  // --- Seed the cut pool (root cuts: ids below 1<<16, never aged out). ------
  CutPool pool;
  std::uint64_t root_cut_seq = 0;
  for (std::size_t li = 0; li < model.links().size(); ++li) {
    const UnivariateLink& link = model.links()[li];
    for (const double p :
         seed_points(root_lower[link.n_var], root_upper[link.n_var],
                     opts.initial_tangents_per_link)) {
      if (pool.add_link_tangent(model, curvature, li, p, root_cut_seq)) {
        ++root_cut_seq;
        ++stats.cuts_added;
      }
    }
  }
  if (opts.use_root_nlp) {
    HSLB_SPAN("minlp.root_nlp");
    if (const auto x_nlp = solve_root_nlp(model, stats)) {
      for (std::size_t li = 0; li < model.links().size(); ++li) {
        if (pool.add_link_tangent(model, curvature, li,
                                  (*x_nlp)[model.links()[li].n_var],
                                  root_cut_seq)) {
          ++root_cut_seq;
          ++stats.cuts_added;
        }
      }
      for (std::size_t ci = 0; ci < model.nonlinear_constraints().size();
           ++ci) {
        pool.add_nonlinear_cut(model, ci, *x_nlp, root_cut_seq);
        ++root_cut_seq;
        ++stats.cuts_added;
      }
    }
  }

  // --- Branch and bound (epoch-parallel; see file comment). ------------------
  Node root;
  root.lower = root_lower;
  root.upper = root_upper;
  root.id = 0;
  if (opts.warm_start != nullptr && opts.warm_start_lp) {
    // The root inherits the previous solve's basis/keys/factor exactly as a
    // child inherits its parent's: map_basis bridges moved rows and the
    // factor snapshot declines itself if any coefficient changed.
    root.warm = opts.warm_start->root_basis;
    root.warm_keys = opts.warm_start->root_keys;
    root.warm_factor = opts.warm_start->root_factor;
  }
  std::uint64_t next_node_id = 1;

  NodeQueue queue(opts.node_selection);
  queue.push(std::move(root));

  bool have_incumbent = false;
  double incumbent_obj = lp::kInf;
  Vector incumbent_x;
  bool hit_node_limit = false;
  bool hit_time_limit = false;

  // Prime the incumbent from the previous solve's best point: round the
  // integers, clamp into the (possibly re-tightened) root box, and complete
  // against the new model.  A drifted model usually moves the optimum only a
  // little, so the completed point gives the tree a working cutoff from node
  // one; when the old point went infeasible the completion fails and the
  // search starts unprimed, exactly as before.
  if (opts.warm_start != nullptr && opts.warm_start->incumbent.size() == n) {
    Vector primed = opts.warm_start->incumbent;
    for (std::size_t j = 0; j < n; ++j) {
      if (model.variables()[j].type != VarType::kContinuous) {
        primed[j] = std::round(primed[j]);
      }
      primed[j] = std::clamp(primed[j], root_lower[j], root_upper[j]);
    }
    if (const auto completion = complete_integer_point(
            model, pool, curvature, primed, root_lower, root_upper)) {
      ++stats.lp_solves;
      incumbent_obj = completion->objective;
      incumbent_x = completion->x;
      have_incumbent = true;
      ++stats.incumbent_updates;
      ++stats.warm_incumbent_primes;
      HSLB_COUNT("minlp.warm_incumbent_primes", 1);
    }
  }

  const auto cutoff = [&]() {
    if (!have_incumbent) {
      return lp::kInf;
    }
    const double gap = std::max(1e-9, opts.rel_gap * std::fabs(incumbent_obj));
    return incumbent_obj - gap;
  };

  const int requested_threads =
      opts.threads > 0 ? opts.threads
                       : static_cast<int>(std::thread::hardware_concurrency());
  const int num_threads = std::max(1, requested_threads);
  const std::size_t epoch_batch =
      static_cast<std::size_t>(std::max(1, opts.epoch_batch));
  std::optional<WorkerPool> workers;
  if (num_threads > 1) {
    workers.emplace(num_threads);
  }

  std::vector<Node> batch;
  std::vector<NodeResult> results;
  // One allocation-recycling scratch per epoch slot, living across epochs.
  // Slot i is evaluated by exactly one worker per epoch and epochs join
  // before the merge, so the pools need no synchronization.
  std::vector<NodeScratch> scratch(epoch_batch);
  while (!queue.empty()) {
    if (stats.nodes_explored >= opts.max_nodes) {
      hit_node_limit = true;
      break;
    }
    if (opts.max_wall_seconds > 0.0 &&
        timer.seconds() >= opts.max_wall_seconds) {
      hit_time_limit = true;
      HSLB_COUNT("minlp.budget_exhausted", 1);
      break;
    }

    // Pop this epoch's batch in deterministic heap order.  The batch size
    // depends only on queue size and node budget, never on thread count.
    const std::size_t batch_size = std::min(
        {epoch_batch, queue.size(),
         static_cast<std::size_t>(opts.max_nodes - stats.nodes_explored)});
    batch.clear();
    // Half the batch follows the configured selection (advancing the bound),
    // half dives to the deepest open nodes (hunting the incumbent whose
    // cutoff prunes the frontier).  Pure best-bound batches were measured to
    // inflate the tree several-fold: the incumbent sits at the end of a deep
    // chain that advances only one node per epoch while every other slot
    // widens the frontier against a stale +inf cutoff.
    const std::size_t bound_picks = (batch_size + 1) / 2;
    for (std::size_t i = 0; i < batch_size; ++i) {
      batch.push_back(i < bound_picks ? queue.pop() : queue.pop_deepest());
    }
    const double cutoff_snapshot = cutoff();
    results.assign(batch_size, NodeResult{});
    // One span per epoch, tagged with the batch's LP work so the request
    // telemetry analyzer can split a request's solve phase into LP re-solve
    // time vs branching/merge time (it nests under svc.phase.solve via the
    // propagated parent span when running inside the allocation service).
    obs::ScopedSpan epoch_span("minlp.epoch", "minlp");
    common::WallTimer epoch_timer;
    const auto evaluate = [&](std::size_t i) {
      results[i] = process_node(model, opts, curvature, pool, cutoff_snapshot,
                                std::move(batch[i]), scratch[i]);
    };
    if (workers && batch_size > 1) {
      workers->run(batch_size, evaluate);
    } else {
      for (std::size_t i = 0; i < batch_size; ++i) {
        evaluate(i);
      }
    }
    ++stats.epochs;
    if (metrics.epochs != nullptr) {
      metrics.epochs->add(1.0);
      metrics.epoch_batch->observe(static_cast<double>(batch_size));
    }
    if (epoch_span.active()) {
      double epoch_lp_ms = 0.0;
      double epoch_factor_ms = 0.0;
      double epoch_update_ms = 0.0;
      double epoch_pivot_ms = 0.0;
      long long epoch_lp_solves = 0;
      long long epoch_warm = 0;
      long long epoch_etas = 0;
      long long epoch_refactor = 0;
      long long epoch_inherits = 0;
      long long epoch_bt_fallbacks = 0;
      for (const NodeResult& r : results) {
        epoch_lp_ms += r.lp_seconds * 1e3;
        epoch_factor_ms += r.lp_factor_seconds * 1e3;
        epoch_update_ms += r.lp_update_seconds * 1e3;
        epoch_pivot_ms += r.lp_pivot_seconds * 1e3;
        epoch_lp_solves += r.lp_solves;
        epoch_warm += r.warm_lp_solves;
        epoch_etas += r.lp_eta_updates;
        epoch_refactor += r.lp_refactorizations;
        epoch_inherits += r.lp_factor_inherits;
        epoch_bt_fallbacks += r.lp_bt_fallbacks;
      }
      epoch_span.arg("batch", static_cast<long long>(batch_size));
      epoch_span.arg("lp_ms", epoch_lp_ms);
      epoch_span.arg("lp_solves", epoch_lp_solves);
      epoch_span.arg("warm", epoch_warm);
      epoch_span.arg("factor_ms", epoch_factor_ms);
      epoch_span.arg("update_ms", epoch_update_ms);
      epoch_span.arg("pivot_ms", epoch_pivot_ms);
      epoch_span.arg("eta_updates", epoch_etas);
      epoch_span.arg("refactorizations", epoch_refactor);
      epoch_span.arg("factor_inherits", epoch_inherits);
      epoch_span.arg("bt_fallbacks", epoch_bt_fallbacks);
    }

    // Merge in batch order -- the deterministic serialization point.
    for (std::size_t i = 0; i < batch_size; ++i) {
      NodeResult& r = results[i];
      ++stats.nodes_explored;
      if (metrics.nodes != nullptr) {
        metrics.nodes->add(1.0);
        if (metrics.lp_solves != nullptr && r.lp_solves > 0) {
          metrics.lp_solves->add(static_cast<double>(r.lp_solves));
          metrics.lp_seconds->add(r.lp_seconds);
          for (std::size_t k = 0; k < r.lp_solve_ms.size(); ++k) {
            metrics.lp_solve_ms->observe(r.lp_solve_ms[k]);
            (k < r.lp_solve_warm.size() && r.lp_solve_warm[k] != 0
                 ? metrics.lp_solve_ms_warm
                 : metrics.lp_solve_ms_cold)
                ->observe(r.lp_solve_ms[k]);
          }
        }
        metrics.warm_lp_solves->add(static_cast<double>(r.warm_lp_solves));
        metrics.warm_phase1_skips->add(
            static_cast<double>(r.warm_phase1_skips));
        metrics.warm_iterations->add(
            static_cast<double>(r.warm_simplex_iterations));
        metrics.cold_iterations->add(
            static_cast<double>(r.cold_simplex_iterations));
        metrics.lp_factorizations->add(
            static_cast<double>(r.lp_factorizations));
        metrics.lp_refactorizations->add(
            static_cast<double>(r.lp_refactorizations));
        metrics.lp_eta_updates->add(static_cast<double>(r.lp_eta_updates));
        metrics.lp_bound_flips->add(static_cast<double>(r.lp_bound_flips));
        metrics.lp_bt_fallbacks->add(static_cast<double>(r.lp_bt_fallbacks));
        metrics.lp_factor_inherits->add(
            static_cast<double>(r.lp_factor_inherits));
        metrics.lp_factor_seconds->add(r.lp_factor_seconds);
        metrics.lp_update_seconds->add(r.lp_update_seconds);
        metrics.lp_pivot_seconds->add(r.lp_pivot_seconds);
      }
      stats.lp_solves += r.lp_solves;
      stats.simplex_iterations += r.simplex_iterations;
      stats.warm_lp_solves += r.warm_lp_solves;
      stats.warm_phase1_skips += r.warm_phase1_skips;
      stats.warm_simplex_iterations += r.warm_simplex_iterations;
      stats.cold_simplex_iterations += r.cold_simplex_iterations;
      stats.lp_factorizations += r.lp_factorizations;
      stats.lp_refactorizations += r.lp_refactorizations;
      stats.lp_eta_updates += r.lp_eta_updates;
      stats.lp_bound_flips += r.lp_bound_flips;
      stats.lp_bt_fallbacks += r.lp_bt_fallbacks;
      stats.lp_factor_inherits += r.lp_factor_inherits;
      stats.lp_seconds += r.lp_seconds;
      stats.lp_factor_seconds += r.lp_factor_seconds;
      stats.lp_update_seconds += r.lp_update_seconds;
      stats.lp_pivot_seconds += r.lp_pivot_seconds;
      if (opts.capture_warm_start && r.node_id == 0) {
        out.warm.root_basis = std::move(r.final_basis);
        out.warm.root_keys = std::move(r.final_keys);
        out.warm.root_factor = std::move(r.final_factor);
      }
      if (want_events && opts.log_every_nodes > 0 &&
          (stats.nodes_explored == 1 ||
           stats.nodes_explored % opts.log_every_nodes == 0)) {
        SolverEvent event;
        event.kind = SolverEvent::Kind::kProgress;
        event.node = stats.nodes_explored;
        event.open_nodes = queue.size();
        event.have_incumbent = have_incumbent;
        event.incumbent = incumbent_obj;
        emit(event);
      }
      if (r.unbounded) {
        out.status = MinlpStatus::kUnbounded;
        out.stats.wall_seconds = timer.seconds();
        return out;
      }
      if (r.pruned_by_bound) {
        ++stats.pruned_by_bound;
        if (metrics.pruned_bound != nullptr) {
          metrics.pruned_bound->add(1.0);
        }
        continue;
      }
      stats.cuts_added += static_cast<long>(pool.absorb(r.cuts));
      if (r.pruned_infeasible) {
        ++stats.pruned_infeasible;
        if (metrics.pruned_infeasible != nullptr) {
          metrics.pruned_infeasible->add(1.0);
        }
        continue;
      }
      if (r.completion && r.completion->objective < incumbent_obj) {
        incumbent_obj = r.completion->objective;
        incumbent_x = r.completion->x;
        have_incumbent = true;
        ++stats.incumbent_updates;
        if (metrics.incumbents != nullptr) {
          metrics.incumbents->add(1.0);
        }
        queue.prune_above(cutoff());
        if (want_events) {
          SolverEvent event;
          event.kind = SolverEvent::Kind::kIncumbent;
          event.node = stats.nodes_explored;
          event.open_nodes = queue.size();
          event.have_incumbent = true;
          event.incumbent = incumbent_obj;
          emit(event);
        }
      }
      for (Node& child : r.children) {
        child.id = next_node_id++;
        queue.push(std::move(child));
      }
    }
    if (metrics.epoch_ms != nullptr) {
      metrics.epoch_ms->observe(epoch_timer.milliseconds());
    }
    pool.age_to(opts.max_pool_cuts);
  }

  stats.wall_seconds = timer.seconds();
  stats.best_bound = queue.empty() ? incumbent_obj
                                   : std::min(queue.best_open_bound(),
                                              incumbent_obj);
  if (want_events) {
    SolverEvent event;
    event.kind = SolverEvent::Kind::kDone;
    event.node = stats.nodes_explored;
    event.open_nodes = queue.size();
    event.have_incumbent = have_incumbent;
    event.incumbent = incumbent_obj;
    event.best_bound = stats.best_bound;
    event.lp_solves = stats.lp_solves;
    event.cuts_added = stats.cuts_added;
    emit(event);
  }
  if (metrics.cuts != nullptr) {
    metrics.cuts->add(static_cast<double>(stats.cuts_added));
    if (stats.wall_seconds > 0.0) {
      obs::Registry* registry = obs::current_metrics();
      registry->gauge("minlp.nodes_per_sec")
          .set(static_cast<double>(stats.nodes_explored) / stats.wall_seconds);
      if (workers) {
        const std::vector<long>& per_worker = workers->items_per_worker();
        for (std::size_t w = 0; w < per_worker.size(); ++w) {
          registry->gauge("minlp.worker." + std::to_string(w) + ".nodes")
              .set(static_cast<double>(per_worker[w]));
        }
      }
    }
  }
  const auto limited_status = [&] {
    if (hit_time_limit) {
      return MinlpStatus::kTimeLimit;
    }
    return hit_node_limit ? MinlpStatus::kNodeLimit : MinlpStatus::kOptimal;
  };
  if (have_incumbent) {
    out.status = limited_status();
    out.x = std::move(incumbent_x);
    out.objective = incumbent_obj;
  } else {
    out.status = hit_time_limit || hit_node_limit ? limited_status()
                                                  : MinlpStatus::kInfeasible;
  }
  if (opts.capture_warm_start && have_incumbent) {
    out.warm.incumbent = out.x;
  }
  return out;
}

}  // namespace hslb::minlp
