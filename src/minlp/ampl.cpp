#include "hslb/minlp/ampl.hpp"

#include <cctype>
#include <cmath>
#include <map>
#include <sstream>

#include "hslb/common/error.hpp"

namespace hslb::minlp {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind {
    kIdent,
    kNumber,
    kSymbol,  // one of + - * / ^ ( ) { } , : =
    kLe,      // <=
    kGe,      // >=
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  double number = 0.0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  /// Tokenize one statement (up to ';' or end of input).  Returns false at
  /// end of input.
  bool next_statement(std::vector<Token>& out) {
    out.clear();
    skip_space_and_comments();
    if (pos_ >= text_.size()) {
      return false;
    }
    while (pos_ < text_.size()) {
      skip_space_and_comments();
      if (pos_ >= text_.size()) {
        break;
      }
      const char c = text_[pos_];
      if (c == ';') {
        ++pos_;
        break;
      }
      out.push_back(lex_token());
    }
    return !out.empty();
  }

  int line() const { return line_; }

 private:
  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          ++pos_;
        }
      } else {
        break;
      }
    }
  }

  Token lex_token() {
    Token token;
    token.line = line_;
    const char c = text_[pos_];
    // AMPL's constraint keyword "s.t." is one token.
    if (text_.compare(pos_, 4, "s.t.") == 0) {
      token.kind = Token::Kind::kIdent;
      token.text = "s.t.";
      pos_ += 4;
      return token;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t end = pos_;
      while (end < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[end])) != 0 ||
              text_[end] == '_')) {
        ++end;
      }
      token.kind = Token::Kind::kIdent;
      token.text = text_.substr(pos_, end - pos_);
      pos_ = end;
      return token;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.') {
      std::size_t consumed = 0;
      token.kind = Token::Kind::kNumber;
      token.number = std::stod(text_.substr(pos_), &consumed);
      token.text = text_.substr(pos_, consumed);
      pos_ += consumed;
      return token;
    }
    if (c == '<' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
      token.kind = Token::Kind::kLe;
      token.text = "<=";
      pos_ += 2;
      return token;
    }
    if (c == '>' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
      token.kind = Token::Kind::kGe;
      token.text = ">=";
      pos_ += 2;
      return token;
    }
    if (std::string("+-*/^(){},:=").find(c) != std::string::npos) {
      token.kind = Token::Kind::kSymbol;
      token.text = std::string(1, c);
      ++pos_;
      return token;
    }
    throw InvalidArgument("AMPL-lite: unexpected character '" +
                          std::string(1, c) + "' on line " +
                          std::to_string(line_ + 1));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 0;
};

// ---------------------------------------------------------------------------
// Expression parser (recursive descent over a token stream)
// ---------------------------------------------------------------------------

class ExprParser {
 public:
  ExprParser(std::span<const Token> tokens,
             const std::map<std::string, std::size_t>& variables)
      : tokens_(tokens), variables_(variables) {}

  expr::Expr parse() {
    expr::Expr result = parse_sum();
    HSLB_REQUIRE(pos_ == tokens_.size(),
                 "AMPL-lite: trailing tokens in expression near '" +
                     (pos_ < tokens_.size() ? tokens_[pos_].text : "") + "'");
    return result;
  }

  /// Parse stopping position (for callers that parse a prefix).
  expr::Expr parse_prefix(std::size_t* consumed) {
    expr::Expr result = parse_sum();
    *consumed = pos_;
    return result;
  }

 private:
  const Token& peek() const {
    static const Token kEnd{};
    return pos_ < tokens_.size() ? tokens_[pos_] : kEnd;
  }
  bool accept_symbol(const std::string& s) {
    if (peek().kind == Token::Kind::kSymbol && peek().text == s) {
      ++pos_;
      return true;
    }
    return false;
  }

  expr::Expr parse_sum() {
    expr::Expr left =
        accept_symbol("-") ? -parse_product() : parse_product();
    for (;;) {
      if (accept_symbol("+")) {
        left = left + parse_product();
      } else if (accept_symbol("-")) {
        left = left - parse_product();
      } else {
        return left;
      }
    }
  }

  expr::Expr parse_product() {
    expr::Expr left = parse_power();
    for (;;) {
      if (accept_symbol("*")) {
        left = left * parse_power();
      } else if (accept_symbol("/")) {
        left = left / parse_power();
      } else {
        return left;
      }
    }
  }

  expr::Expr parse_power() {
    const expr::Expr base = parse_primary();
    if (accept_symbol("^")) {
      const expr::Expr exponent = parse_power();  // right associative
      return expr::pow(base, exponent);
    }
    return base;
  }

  expr::Expr parse_primary() {
    const Token token = peek();
    if (token.kind == Token::Kind::kNumber) {
      ++pos_;
      return expr::constant(token.number);
    }
    if (accept_symbol("-")) {
      return -parse_primary();
    }
    if (accept_symbol("(")) {
      const expr::Expr inner = parse_sum();
      HSLB_REQUIRE(accept_symbol(")"),
                   "AMPL-lite: missing ')' on line " +
                       std::to_string(token.line + 1));
      return inner;
    }
    if (token.kind == Token::Kind::kIdent) {
      ++pos_;
      if (token.text == "log" || token.text == "exp") {
        HSLB_REQUIRE(accept_symbol("("),
                     "AMPL-lite: expected '(' after " + token.text);
        const expr::Expr argument = parse_sum();
        HSLB_REQUIRE(accept_symbol(")"),
                     "AMPL-lite: missing ')' after " + token.text);
        return token.text == "log" ? expr::log(argument)
                                   : expr::exp(argument);
      }
      const auto it = variables_.find(token.text);
      HSLB_REQUIRE(it != variables_.end(),
                   "AMPL-lite: unknown identifier '" + token.text +
                       "' on line " + std::to_string(token.line + 1));
      return expr::variable(it->second, token.text);
    }
    throw InvalidArgument("AMPL-lite: unexpected token '" + token.text +
                          "' on line " + std::to_string(token.line + 1));
  }

  std::span<const Token> tokens_;
  const std::map<std::string, std::size_t>& variables_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Statement handling
// ---------------------------------------------------------------------------

/// Split "lhs REL rhs [REL rhs2]" at top-level relational tokens.
struct Relation {
  std::vector<std::vector<Token>> parts;  // 2 or 3 expression chunks
  std::vector<Token::Kind> rels;          // kLe / kGe or '=' (as kSymbol)
};

Relation split_relations(std::span<const Token> tokens) {
  Relation out;
  std::vector<Token> current;
  for (const Token& token : tokens) {
    const bool is_rel =
        token.kind == Token::Kind::kLe || token.kind == Token::Kind::kGe ||
        (token.kind == Token::Kind::kSymbol && token.text == "=");
    if (is_rel) {
      out.parts.push_back(std::move(current));
      current.clear();
      out.rels.push_back(token.kind == Token::Kind::kSymbol
                             ? Token::Kind::kSymbol
                             : token.kind);
    } else {
      current.push_back(token);
    }
  }
  out.parts.push_back(std::move(current));
  return out;
}

/// Try to interpret an equality "t == rhs(n)" as a univariate link.
bool try_add_link(Model& model, const expr::Expr& lhs, const expr::Expr& rhs,
                  const std::string& name) {
  const auto as_link = [&](const expr::Expr& var_side,
                           const expr::Expr& fn_side) {
    if (var_side.node().op != expr::Op::kVar) {
      return false;
    }
    const std::size_t t_var = var_side.node().var_index;
    const auto fn_vars = expr::variables_of(fn_side);
    if (fn_vars.size() != 1 || fn_vars[0] == t_var) {
      return false;
    }
    if (fn_side.linearity() != expr::Linearity::kNonlinear) {
      return false;  // affine equalities stay linear rows
    }
    const std::size_t n_var = fn_vars[0];
    // One-variable form of the function, with variable index 0.
    const std::vector<std::size_t> to_zero(n_var + 1, 0);
    const expr::Expr unary = expr::remap_variables(fn_side, to_zero);
    UnivariateFn fn;
    fn.value = [unary](double v) {
      const linalg::Vector point{v};
      return expr::eval(unary, point);
    };
    fn.deriv = [unary](double v) {
      const linalg::Vector point{v};
      return expr::eval_grad(unary, point, 1).grad[0];
    };
    fn.as_expr = [unary](const expr::Expr& n) {
      return expr::substitute(unary, 0, n);
    };
    model.add_link(t_var, n_var, std::move(fn), name);
    return true;
  };
  return as_link(lhs, rhs) || as_link(rhs, lhs);
}

/// Add "g REL bound" to the model, preferring linear rows.
void add_relational(Model& model, const expr::Expr& lhs,
                    const expr::Expr& rhs, Token::Kind rel,
                    const std::string& name) {
  const expr::Expr g = lhs - rhs;
  const auto affine = expr::as_affine(g, model.num_vars());
  if (affine) {
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t j = 0; j < model.num_vars(); ++j) {
      if (affine->coeffs[j] != 0.0) {
        terms.emplace_back(j, affine->coeffs[j]);
      }
    }
    const double rhs_value = -affine->constant;
    switch (rel) {
      case Token::Kind::kLe:
        model.add_linear(std::move(terms), -lp::kInf, rhs_value, name);
        return;
      case Token::Kind::kGe:
        model.add_linear(std::move(terms), rhs_value, lp::kInf, name);
        return;
      default:
        model.add_linear(std::move(terms), rhs_value, rhs_value, name);
        return;
    }
  }
  switch (rel) {
    case Token::Kind::kLe:
      model.add_nonlinear(g, 0.0, name);
      return;
    case Token::Kind::kGe:
      model.add_nonlinear(-g, 0.0, name);
      return;
    default:
      if (try_add_link(model, lhs, rhs, name)) {
        return;
      }
      // General nonlinear equality: two one-sided constraints.
      model.add_nonlinear(g, 0.0, name + "_ub");
      model.add_nonlinear(-g, 0.0, name + "_lb");
      return;
  }
}

std::string sanitize(const std::string& name, std::size_t fallback_index) {
  std::string out;
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_')
               ? c
               : '_';
  }
  if (out.empty() ||
      std::isdigit(static_cast<unsigned char>(out.front())) != 0) {
    out = "c" + std::to_string(fallback_index) + "_" + out;
  }
  return out;
}

std::string format_number(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

std::string write_ampl(const Model& model) {
  std::ostringstream os;
  os << "# AMPL-lite model (hslb::minlp)\n";

  for (const Variable& v : model.variables()) {
    os << "var " << v.name;
    if (v.type == VarType::kInteger) {
      os << " integer";
    } else if (v.type == VarType::kBinary) {
      os << " binary";
    }
    if (std::isfinite(v.lower)) {
      os << " >= " << format_number(v.lower);
    }
    if (std::isfinite(v.upper)) {
      os << " <= " << format_number(v.upper);
    }
    os << ";\n";
  }

  os << "minimize obj:";
  bool first = true;
  if (model.objective_offset() != 0.0) {
    os << ' ' << format_number(model.objective_offset());
    first = false;
  }
  for (std::size_t j = 0; j < model.num_vars(); ++j) {
    const double c = model.objective_coeffs()[j];
    if (c == 0.0) {
      continue;
    }
    os << (first ? " " : " + ") << format_number(c) << " * "
       << model.variables()[j].name;
    first = false;
  }
  if (first) {
    os << " 0";
  }
  os << ";\n";

  std::size_t row_index = 0;
  for (const LinearConstraint& c : model.linear_constraints()) {
    ++row_index;
    os << "s.t. " << sanitize(c.name.empty() ? "row" : c.name, row_index)
       << "_" << row_index << ": ";
    std::ostringstream body;
    bool lead = true;
    for (const auto& [v, a] : c.terms) {
      if (a == 0.0) {
        continue;
      }
      body << (lead ? "" : " + ") << format_number(a) << " * "
           << model.variables()[v].name;
      lead = false;
    }
    if (lead) {
      body << "0";
    }
    if (c.lower == c.upper) {
      os << body.str() << " = " << format_number(c.lower);
    } else if (std::isfinite(c.lower) && std::isfinite(c.upper)) {
      os << format_number(c.lower) << " <= " << body.str() << " <= "
         << format_number(c.upper);
    } else if (std::isfinite(c.upper)) {
      os << body.str() << " <= " << format_number(c.upper);
    } else {
      os << body.str() << " >= " << format_number(c.lower);
    }
    os << ";\n";
  }

  for (const UnivariateLink& link : model.links()) {
    HSLB_REQUIRE(static_cast<bool>(link.fn.as_expr),
                 "write_ampl: link '" + link.name +
                     "' has no symbolic form");
    const expr::Expr body =
        link.fn.as_expr(model.var(link.n_var));
    ++row_index;
    os << "s.t. " << sanitize(link.name.empty() ? "link" : link.name,
                              row_index)
       << "_" << row_index << ": " << model.variables()[link.t_var].name
       << " = " << expr::to_string(body) << ";\n";
  }

  for (const NonlinearConstraint& c : model.nonlinear_constraints()) {
    ++row_index;
    os << "s.t. " << sanitize(c.name.empty() ? "nl" : c.name, row_index)
       << "_" << row_index << ": " << expr::to_string(c.g) << " <= "
       << format_number(c.upper) << ";\n";
  }

  std::size_t sos_index = 0;
  for (const Sos1Set& set : model.sos1_sets()) {
    ++sos_index;
    os << "sos1 " << sanitize(set.name.empty() ? "sos" : set.name, sos_index)
       << "_" << sos_index << ":";
    for (const std::size_t v : set.vars) {
      os << ' ' << model.variables()[v].name;
    }
    os << " weights";
    for (const double w : set.weights) {
      os << ' ' << format_number(w);
    }
    os << ";\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

expr::Expr parse_expression(const std::string& text,
                            const std::vector<std::string>& variable_names) {
  std::map<std::string, std::size_t> variables;
  for (std::size_t j = 0; j < variable_names.size(); ++j) {
    variables[variable_names[j]] = j;
  }
  Lexer lexer(text);
  std::vector<Token> tokens;
  HSLB_REQUIRE(lexer.next_statement(tokens), "empty expression");
  return ExprParser(tokens, variables).parse();
}

Model parse_ampl(const std::string& text) {
  Model model;
  std::map<std::string, std::size_t> variables;

  Lexer lexer(text);
  std::vector<Token> tokens;
  while (lexer.next_statement(tokens)) {
    const int line = tokens.front().line + 1;
    const auto fail = [line](const std::string& why) -> void {
      throw InvalidArgument("AMPL-lite line " + std::to_string(line) + ": " +
                            why);
    };
    const std::string& head = tokens.front().text;

    if (head == "var") {
      if (tokens.size() < 2 || tokens[1].kind != Token::Kind::kIdent) {
        fail("expected 'var <name> ...'");
      }
      const std::string name = tokens[1].text;
      if (variables.count(name) != 0) {
        fail("duplicate variable '" + name + "'");
      }
      VarType type = VarType::kContinuous;
      double lo = -lp::kInf;
      double hi = lp::kInf;
      std::size_t i = 2;
      while (i < tokens.size()) {
        if (tokens[i].kind == Token::Kind::kIdent &&
            tokens[i].text == "integer") {
          type = VarType::kInteger;
          ++i;
        } else if (tokens[i].kind == Token::Kind::kIdent &&
                   tokens[i].text == "binary") {
          type = VarType::kBinary;
          lo = std::max(lo, 0.0);
          hi = std::min(hi, 1.0);
          ++i;
        } else if (tokens[i].kind == Token::Kind::kGe ||
                   tokens[i].kind == Token::Kind::kLe) {
          const bool is_lower = tokens[i].kind == Token::Kind::kGe;
          ++i;
          double sign = 1.0;
          if (i < tokens.size() && tokens[i].kind == Token::Kind::kSymbol &&
              tokens[i].text == "-") {
            sign = -1.0;
            ++i;
          }
          if (i >= tokens.size() || tokens[i].kind != Token::Kind::kNumber) {
            fail("expected a number after bound relation");
          }
          (is_lower ? lo : hi) = sign * tokens[i].number;
          ++i;
        } else {
          fail("unexpected token '" + tokens[i].text +
               "' in var declaration");
        }
      }
      if (type == VarType::kBinary) {
        lo = std::max(lo, 0.0);
        hi = std::min(hi, 1.0);
      }
      variables[name] = model.add_variable(name, type, lo, hi);
      continue;
    }

    if (head == "minimize") {
      // minimize <name> : <expr>
      std::size_t colon = 0;
      while (colon < tokens.size() &&
             !(tokens[colon].kind == Token::Kind::kSymbol &&
               tokens[colon].text == ":")) {
        ++colon;
      }
      if (colon + 1 >= tokens.size()) {
        fail("expected 'minimize <name>: <expr>'");
      }
      const std::span<const Token> body(tokens.data() + colon + 1,
                                        tokens.size() - colon - 1);
      model.minimize(ExprParser(body, variables).parse());
      continue;
    }

    if (head == "s.t" || head == "s.t." || head == "subject") {
      std::size_t colon = 0;
      while (colon < tokens.size() &&
             !(tokens[colon].kind == Token::Kind::kSymbol &&
               tokens[colon].text == ":")) {
        ++colon;
      }
      if (colon + 1 >= tokens.size() || colon < 2) {
        fail("expected 's.t. <name>: <relation>'");
      }
      const std::string name = tokens[colon - 1].text;
      const std::span<const Token> body(tokens.data() + colon + 1,
                                        tokens.size() - colon - 1);
      const Relation relation = split_relations(body);
      if (relation.rels.empty()) {
        fail("constraint '" + name + "' has no relational operator");
      }
      if (relation.rels.size() == 1) {
        const expr::Expr lhs =
            ExprParser(relation.parts[0], variables).parse();
        const expr::Expr rhs =
            ExprParser(relation.parts[1], variables).parse();
        add_relational(model, lhs, rhs, relation.rels[0], name);
      } else if (relation.rels.size() == 2 &&
                 relation.rels[0] == relation.rels[1] &&
                 relation.rels[0] == Token::Kind::kLe) {
        // lo <= expr <= hi range row.
        const expr::Expr lo_expr =
            ExprParser(relation.parts[0], variables).parse();
        const expr::Expr mid =
            ExprParser(relation.parts[1], variables).parse();
        const expr::Expr hi_expr =
            ExprParser(relation.parts[2], variables).parse();
        if (!lo_expr.is_constant() || !hi_expr.is_constant()) {
          fail("range bounds must be constants");
        }
        const auto affine = expr::as_affine(mid, model.num_vars());
        if (!affine) {
          fail("range rows must be affine");
        }
        std::vector<std::pair<std::size_t, double>> terms;
        for (std::size_t j = 0; j < model.num_vars(); ++j) {
          if (affine->coeffs[j] != 0.0) {
            terms.emplace_back(j, affine->coeffs[j]);
          }
        }
        model.add_linear(std::move(terms),
                         lo_expr.constant_value() - affine->constant,
                         hi_expr.constant_value() - affine->constant, name);
      } else {
        fail("unsupported relation chain in '" + name + "'");
      }
      continue;
    }

    if (head == "set") {
      // set <name>: <var> in { v1, v2, ... };
      if (tokens.size() < 7) {
        fail("expected 'set <name>: <var> in { ... }'");
      }
      const std::string var_name = tokens[3].text;
      const auto it = variables.find(var_name);
      if (it == variables.end()) {
        fail("unknown variable '" + var_name + "' in set");
      }
      std::vector<double> values;
      for (std::size_t i = 5; i < tokens.size(); ++i) {
        if (tokens[i].kind == Token::Kind::kNumber) {
          values.push_back(tokens[i].number);
        }
      }
      if (values.empty()) {
        fail("empty value set");
      }
      model.restrict_to_set(it->second, values, /*use_sos=*/true,
                            tokens[1].text);
      continue;
    }

    if (head == "sos1") {
      // sos1 <name>: z1 z2 ... weights w1 w2 ...;
      std::vector<std::size_t> members;
      std::vector<double> weights;
      bool in_weights = false;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        if (tokens[i].kind == Token::Kind::kIdent &&
            tokens[i].text == "weights") {
          in_weights = true;
        } else if (!in_weights && tokens[i].kind == Token::Kind::kIdent) {
          const auto it = variables.find(tokens[i].text);
          if (it == variables.end()) {
            fail("unknown variable '" + tokens[i].text + "' in sos1");
          }
          members.push_back(it->second);
        } else if (in_weights && tokens[i].kind == Token::Kind::kNumber) {
          weights.push_back(tokens[i].number);
        }
      }
      if (members.size() != weights.size() || members.size() < 2) {
        fail("sos1 needs matching members and weights (>= 2)");
      }
      model.add_sos1(std::move(members), std::move(weights), tokens[1].text);
      continue;
    }

    fail("unknown statement '" + head + "'");
  }

  HSLB_REQUIRE(model.num_vars() > 0, "AMPL-lite: model declares no variables");
  return model;
}

}  // namespace hslb::minlp
