// Two-phase bounded-variable primal simplex, two engines.
//
// Internal standard form: one slack per row turns `rlo <= a.x <= rup` into
// `a.x - s = 0, s in [rlo, rup]`, and Phase I adds one artificial column per
// row with a +/-1 coefficient chosen so the artificial starts nonnegative.
//
// The default sparse engine (SparseSimplex) keeps the constraint matrix in
// CSC form, factorizes the basis once per (re)start with a Markowitz sparse
// LU, and absorbs each pivot as a product-form eta update; a deterministic
// trigger (eta count, eta fill, or a refused unstable update) forces a
// refactorization.  A solve may capture its maintained factor as an
// immutable FactorSnapshot, and a child re-solve that presents matching row
// identities adopts it -- extending the parent's factor by a bordered
// block for rows the parent did not have -- instead of paying a cold
// factorization.  See DESIGN.md section 15.
//
// The legacy dense engine (DenseSimplex) applies the basis inverse through
// a fresh dense LU factorization each pivot.  It survives as the
// comparison baseline for bench_lp_resolve and as a second opinion in the
// property tests.  B and B^T are singular together mathematically, but the
// dense absolute pivot threshold can reject one orientation of a badly
// row-scaled basis while accepting the other; wherever both orientations
// are needed, the factorization of B is the authority and B^T systems fall
// back to LuFactor::solve_transposed on it (counted as bt_fallbacks).
//
// Warm starts (resolve_from_basis) reuse a captured basis when it is still
// complete and factorizable.  If the basis is also primal feasible, Phase I
// is skipped outright; if not (the branch-and-bound norm: a child's bound
// change or a new cut exists precisely to cut off the parent's optimum), a
// dual-simplex repair phase pivots the violated basics out until the basis
// is primal feasible again, and only then does Phase II run.  The repair
// phase needs no dual-feasibility precondition for correctness: any valid
// basis change sequence that ends primal feasible is a legitimate Phase-II
// start, and its iteration cap sends everything else to the cold path.
#include "hslb/lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <utility>

#include "hslb/common/error.hpp"
#include "hslb/common/timing.hpp"
#include "hslb/linalg/factor.hpp"
#include "hslb/linalg/sparse.hpp"
#include "hslb/obs/obs.hpp"

namespace hslb::lp {

/// Tag bit marking a FactorSnapshot basis member as a row slack (the low
/// bits then hold the row key); structural members store the column index.
constexpr std::uint64_t kSlackBit = 1ULL << 63;

/// Immutable capture of a maintained factorization: the root sparse LU (or
/// a reference to the parent snapshot plus the bordered extension that
/// turned the parent's basis into this one), the eta updates accumulated at
/// this level, and enough row identity (keys + coefficient signatures) for
/// a later solve to validate adoption.  Snapshots form a chain via
/// `parent`; shared_ptr keeps every level alive and the whole object is
/// deep-value otherwise, so concurrent readers on different threads are
/// safe.
class FactorSnapshot {
 public:
  struct BorderRow {
    int row = 0;                                 ///< row index at this level
    double slack_coeff = -1.0;                   ///< the row's basic slack
    std::vector<std::pair<int, double>> terms;   ///< (parent position, coeff)
  };

  FactorRef parent;                 ///< null for a root snapshot
  linalg::SparseLu lu;              ///< root level only
  std::vector<int> old_rows;        ///< parent row i -> row at this level
  std::vector<BorderRow> border;    ///< rows new at this level
  linalg::EtaFile etas;             ///< updates accumulated at this level
  int m = 0;                        ///< rows at this level
  int levels = 1;                   ///< chain depth including this level
  long total_etas = 0;              ///< eta count across the whole chain
  long base_nnz = 0;                ///< root factor fill
  std::size_t n = 0;                ///< structural columns when captured
  std::vector<std::uint64_t> row_keys;   ///< caller-chosen row identifiers
  std::vector<std::uint64_t> row_sigs;   ///< coefficient signature per row
  std::vector<std::uint64_t> basis_ids;  ///< basic member per position
};

namespace {

using linalg::EtaFile;
using linalg::LuFactor;
using linalg::Matrix;
using linalg::SparseColumns;
using linalg::SparseLu;
using linalg::SparseLuOptions;
using linalg::Vector;

enum class VarStatus { kBasic, kAtLower, kAtUpper, kFree, kFixed };

/// How a warm basis was absorbed into the working state.
enum class WarmMode {
  kCold,        ///< no usable warm data; all-artificial start
  kReuse,       ///< warm basis primal feasible; Phase I skipped
  kDualRepair,  ///< warm basis repaired by dual pivots; Phase I skipped
};

/// FNV-1a over a row's coefficient bytes: the signature that lets factor
/// adoption detect a row whose key survived but whose coefficients changed
/// (chord rows are rebuilt against the node's bounds under a stable key).
std::uint64_t row_signature(std::span<const double> coeffs) {
  const auto* p = reinterpret_cast<const unsigned char*>(coeffs.data());
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < coeffs.size() * sizeof(double); ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Legacy engine: full dense working state over structural + slack +
/// artificial columns, refactorizing every pivot.
class DenseSimplex {
 public:
  DenseSimplex(const LpProblem& problem, const SimplexOptions& options)
      : problem_(problem), opts_(options) {
    n_ = problem.num_vars();
    m_ = problem.num_rows();
    total_ = n_ + 2 * m_;  // structural | slack | artificial

    lower_.assign(total_, -kInf);
    upper_.assign(total_, kInf);
    for (std::size_t j = 0; j < n_; ++j) {
      lower_[j] = problem.col_lower()[j];
      upper_[j] = problem.col_upper()[j];
    }
    for (std::size_t i = 0; i < m_; ++i) {
      lower_[n_ + i] = problem.rows()[i].lower;
      upper_[n_ + i] = problem.rows()[i].upper;
      lower_[n_ + m_ + i] = 0.0;  // artificials
    }

    // Column-access helper matrix: rows of [A | -I | G] where G is the
    // artificial sign matrix, filled in by init_basis().
    art_sign_.assign(m_, 1.0);

    status_.assign(total_, VarStatus::kAtLower);
    value_.assign(total_, 0.0);
    for (std::size_t j = 0; j < total_; ++j) {
      init_nonbasic(j);
    }

    init_basis();
  }

  LpSolution run(const Basis* warm) {
    LpSolution out;

    // The Phase-II objective, also used to price the dual repair pivots.
    Vector cost(total_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
      cost[j] = problem_.cost()[j];
    }

    WarmMode mode = WarmMode::kCold;
    if (warm != nullptr && !warm->empty()) {
      mode = prepare_warm(*warm, cost);
    }
    out.warm_used = mode != WarmMode::kCold;
    out.warm_phase1_skipped = mode != WarmMode::kCold;

    if (mode == WarmMode::kCold) {
      // ---- Phase I: minimize the sum of artificial values. ----
      Vector phase1_cost(total_, 0.0);
      for (std::size_t i = 0; i < m_; ++i) {
        phase1_cost[n_ + m_ + i] = 1.0;
      }
      const LpStatus st1 = optimize(phase1_cost);
      out.phase1_iterations = iterations_;
      if (st1 == LpStatus::kIterationLimit) {
        out.status = st1;
        finalize(out);
        return out;
      }
      double infeasibility = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        infeasibility += value_[n_ + m_ + i];
      }
      if (infeasibility >
          opts_.feasibility_tol * std::max<double>(1.0, static_cast<double>(m_))) {
        out.status = LpStatus::kInfeasible;
        finalize(out);
        return out;
      }
    }

    // Freeze artificials at zero for Phase II.
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t a = n_ + m_ + i;
      lower_[a] = upper_[a] = 0.0;
      if (status_[a] != VarStatus::kBasic) {
        status_[a] = VarStatus::kFixed;
        value_[a] = 0.0;
      }
    }

    // ---- Phase II: the real objective. ----
    const LpStatus st2 = optimize(cost);
    out.status = st2;
    finalize(out);
    if (st2 == LpStatus::kOptimal) {
      out.x.assign(value_.begin(), value_.begin() + static_cast<std::ptrdiff_t>(n_));
      out.objective = problem_.objective_offset();
      for (std::size_t j = 0; j < n_; ++j) {
        out.objective += problem_.cost()[j] * out.x[j];
      }
      if (opts_.capture_basis) {
        capture_basis(out.basis);
      }
    }
    return out;
  }

 private:
  void finalize(LpSolution& out) const {
    out.iterations = iterations_;
    out.factorizations = factorizations_;
    out.bt_fallbacks = bt_fallbacks_;
    out.bound_flips = bound_flips_;
    out.factor_seconds = factor_seconds_;
  }

  /// Coefficient of column j in row i of [A | -I | G].
  double coeff(std::size_t i, std::size_t j) const {
    if (j < n_) {
      return problem_.rows()[i].coeffs[j];
    }
    if (j < n_ + m_) {
      return j - n_ == i ? -1.0 : 0.0;
    }
    return j - n_ - m_ == i ? art_sign_[i] : 0.0;
  }

  /// Place a freshly created nonbasic variable at its natural resting value.
  void init_nonbasic(std::size_t j) {
    const double lo = lower_[j];
    const double hi = upper_[j];
    if (lo == hi) {
      status_[j] = VarStatus::kFixed;
      value_[j] = lo;
    } else if (std::isfinite(lo) && std::isfinite(hi)) {
      const bool lower_closer = std::fabs(lo) <= std::fabs(hi);
      status_[j] = lower_closer ? VarStatus::kAtLower : VarStatus::kAtUpper;
      value_[j] = lower_closer ? lo : hi;
    } else if (std::isfinite(lo)) {
      status_[j] = VarStatus::kAtLower;
      value_[j] = lo;
    } else if (std::isfinite(hi)) {
      status_[j] = VarStatus::kAtUpper;
      value_[j] = hi;
    } else {
      status_[j] = VarStatus::kFree;
      value_[j] = 0.0;
    }
  }

  /// Choose artificial signs so every artificial starts >= 0, and make the
  /// artificials the initial basis.
  void init_basis() {
    basis_.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      // Row residual with artificial at zero: sum over structural + slack.
      double v = 0.0;
      for (std::size_t j = 0; j < n_; ++j) {
        v += problem_.rows()[i].coeffs[j] * value_[j];
      }
      v -= value_[n_ + i];  // slack column is -1
      // Need v + g * t = 0 with t >= 0  =>  g = -sign(v), t = |v|.
      art_sign_[i] = v > 0.0 ? -1.0 : 1.0;
      const std::size_t a = n_ + m_ + i;
      basis_[i] = a;
      status_[a] = VarStatus::kBasic;
      value_[a] = std::fabs(v);
    }
  }

  /// Absorb a warm basis.  The warm basic set must be complete and
  /// factorizable; if it is also primal feasible, Phase I is skipped
  /// outright (kReuse), and if not, a dual-simplex repair phase pivots the
  /// violated basics out (kDualRepair) -- the branch-and-bound norm, since
  /// a child's bound change or a fresh cut exists precisely to cut off the
  /// parent's optimum, at which the captured basis rests.  On any failure
  /// the working state is reset to the cold all-artificial start.  (An
  /// earlier revision fell back to a "crash" start that seeded Phase I from
  /// the warm nonbasic placements; measured on the branch-and-bound
  /// workload it *increased* Phase I pivots by ~50% -- after branching the
  /// parent's resting point is exactly the vertex the child excludes -- so
  /// the fallback is now a clean cold start.)
  WarmMode prepare_warm(const Basis& warm, const Vector& phase2_cost) {
    if (warm.cols.size() != n_ || warm.row_slacks.size() != m_) {
      return WarmMode::kCold;
    }
    std::vector<std::size_t> candidates;
    candidates.reserve(m_);
    for (std::size_t j = 0; j < n_ + m_; ++j) {
      const BasisStatus s =
          j < n_ ? warm.cols[j] : warm.row_slacks[j - n_];
      switch (s) {
        case BasisStatus::kBasic:
          candidates.push_back(j);
          break;
        case BasisStatus::kAtLower:
          if (std::isfinite(lower_[j]) && lower_[j] != upper_[j]) {
            status_[j] = VarStatus::kAtLower;
            value_[j] = lower_[j];
          }
          break;
        case BasisStatus::kAtUpper:
          if (std::isfinite(upper_[j]) && lower_[j] != upper_[j]) {
            status_[j] = VarStatus::kAtUpper;
            value_[j] = upper_[j];
          }
          break;
        case BasisStatus::kFree:
          if (!std::isfinite(lower_[j]) && !std::isfinite(upper_[j])) {
            status_[j] = VarStatus::kFree;
            value_[j] = 0.0;
          }
          break;
        case BasisStatus::kFixed:
        case BasisStatus::kUnset:
          break;  // keep the constructor's resting placement
      }
    }

    if (candidates.size() == m_) {
      basis_ = candidates;
      for (const std::size_t c : candidates) {
        status_[c] = VarStatus::kBasic;
      }
      // Artificials out of the basis, resting at zero.
      for (std::size_t i = 0; i < m_; ++i) {
        const std::size_t a = n_ + m_ + i;
        status_[a] = VarStatus::kAtLower;
        value_[a] = 0.0;
      }
      if (const auto lu = factor_basis()) {
        // Require both orientations to factor before accepting the basis:
        // a warm basis that only factors as B is too ill-conditioned to
        // price reliably (see dual_repair), so it goes to the cold start.
        Matrix bt(m_, m_);
        for (std::size_t i = 0; i < m_; ++i) {
          for (std::size_t k = 0; k < m_; ++k) {
            bt(i, k) = coeff(k, basis_[i]);
          }
        }
        if (LuFactor::compute(bt).has_value()) {
          refresh_basics(*lu);
          if (basics_feasible()) {
            return WarmMode::kReuse;
          }
          if (dual_repair(phase2_cost)) {
            return WarmMode::kDualRepair;
          }
        }
      }
    }
    // No reuse: rebuild the cold start from scratch (the scan above and a
    // failed repair may have moved placements and the basis around).
    for (std::size_t j = 0; j < total_; ++j) {
      init_nonbasic(j);
    }
    init_basis();
    return WarmMode::kCold;
  }

  bool basics_feasible() const {
    // Absolute tolerance: Phase II never pulls a basic back inside its
    // bound (the ratio test only blocks further excursions), so any slack
    // granted here survives to the reported vertex.  A relative tolerance
    // was measured to let values ~1e4 sit ~1e-3 outside their bounds,
    // yielding super-optimal LP bounds that stall branch-and-bound pruning.
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t bj = basis_[i];
      const double v = value_[bj];
      if (v < lower_[bj] - opts_.feasibility_tol ||
          v > upper_[bj] + opts_.feasibility_tol) {
        return false;
      }
    }
    return true;
  }

  /// Dual-simplex repair for the warm path: starting from a complete,
  /// factorizable basis whose basic values violate their bounds, pivot the
  /// most-violated basic out to its nearest bound and bring in the nonbasic
  /// column winning the dual ratio test (|reduced cost| / |pivot|, priced
  /// against the Phase-II objective), until every basic value is within
  /// bounds.  Correctness does not rest on the pricing: any valid basis
  /// change sequence that ends primal feasible is a legitimate Phase-II
  /// start, so a stall, a singular basis, or the iteration cap simply
  /// reports failure and the caller falls back to the cold start.  All
  /// choices tie-break on the smallest index, so the repair is
  /// deterministic.
  bool dual_repair(const Vector& cost) {
    // A repair that has not restored feasibility within ~m pivots is
    // churning on degeneracy; the cold start is cheaper than letting it
    // run (measured: pathological repairs averaged ~200 pivots under a
    // 20m cap where a cold solve takes ~40).
    const int cap = std::min(opts_.max_iterations - iterations_,
                             static_cast<int>(m_) + 10);
    // Stricter than the primal ratio test's 1e-9: a tiny repair pivot
    // leaves a near-singular basis that Phase II inherits.  Refusing the
    // pivot bails to the cold start instead.
    const double pivot_tol = 1e-7;
    for (int it = 0;; ++it) {
      const auto lu = factor_basis();
      if (!lu) {
        return false;
      }
      refresh_basics(*lu);

      // Leaving row: the most-violated basic (smallest row on ties).
      std::ptrdiff_t r = -1;
      bool above = false;
      double worst = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        const std::size_t bj = basis_[i];
        const double v = value_[bj];
        // Absolute tolerance, matching basics_feasible(): the repair must
        // hand Phase II a vertex whose residual violations are too small
        // to show up in the objective.
        if (v < lower_[bj] - opts_.feasibility_tol && lower_[bj] - v > worst) {
          worst = lower_[bj] - v;
          r = static_cast<std::ptrdiff_t>(i);
          above = false;
        } else if (v > upper_[bj] + opts_.feasibility_tol &&
                   v - upper_[bj] > worst) {
          worst = v - upper_[bj];
          r = static_cast<std::ptrdiff_t>(i);
          above = true;
        }
      }
      // Row r of B^{-1}A and the duals, via one factorization of B^T.
      // Factored before the feasibility exit so success also certifies a
      // well-conditioned basis in both orientations: repairs that end on a
      // basis B^T refuses to factor were measured to leave Phase II at
      // slightly sub-optimal vertices, whose too-low bounds then stall
      // branch-and-bound pruning.  Bailing to the cold start is cheaper.
      Matrix bt(m_, m_);
      for (std::size_t i = 0; i < m_; ++i) {
        for (std::size_t k = 0; k < m_; ++k) {
          bt(i, k) = coeff(k, basis_[i]);
        }
      }
      common::WallTimer bt_timer;
      const auto lut = LuFactor::compute(bt);
      factor_seconds_ += bt_timer.seconds();
      if (!lut) {
        return false;
      }
      if (r < 0) {
        return true;  // primal feasible: ready for Phase II
      }
      if (it >= cap) {
        return false;
      }
      Vector er(m_, 0.0);
      er[static_cast<std::size_t>(r)] = 1.0;
      const Vector w = lut->solve(er);
      Vector cb(m_);
      for (std::size_t i = 0; i < m_; ++i) {
        cb[i] = cost[basis_[i]];
      }
      const Vector y = lut->solve(cb);

      // Entering column: the leaving basic must move toward its violated
      // bound, which fixes the sign of the pivot element each nonbasic may
      // contribute.  Artificials never re-enter.
      std::size_t entering = total_;
      double best_ratio = kInf;
      double best_alpha = 0.0;
      for (std::size_t j = 0; j < n_ + m_; ++j) {
        const VarStatus st = status_[j];
        if (st == VarStatus::kBasic || st == VarStatus::kFixed) {
          continue;
        }
        double alpha = 0.0;
        double d = cost[j];
        for (std::size_t i = 0; i < m_; ++i) {
          const double a = coeff(i, j);
          if (a != 0.0) {
            alpha += w[i] * a;
            d -= y[i] * a;
          }
        }
        if (std::fabs(alpha) <= pivot_tol) {
          continue;
        }
        // x_Br moves by -alpha * dj_step.  To DECREASE x_Br (above its
        // upper bound) an at-lower column needs alpha > 0 (it can only
        // increase) and an at-upper column alpha < 0; mirrored when x_Br
        // must increase.  Free columns may move either way.
        bool eligible = st == VarStatus::kFree;
        if (!eligible && st == VarStatus::kAtLower) {
          eligible = above ? alpha > 0.0 : alpha < 0.0;
        }
        if (!eligible && st == VarStatus::kAtUpper) {
          eligible = above ? alpha < 0.0 : alpha > 0.0;
        }
        if (!eligible) {
          continue;
        }
        const double ratio = std::fabs(d) / std::fabs(alpha);
        // Stability tie-break: among (near-)equal ratios take the largest
        // pivot element.  Strict >, so exact ties keep the smallest index
        // and the repair stays deterministic.
        if (ratio < best_ratio - 1e-12 ||
            (ratio < best_ratio + 1e-12 && std::fabs(alpha) > best_alpha)) {
          best_ratio = std::min(best_ratio, ratio);
          best_alpha = std::fabs(alpha);
          entering = j;
        }
      }
      if (entering == total_) {
        return false;  // no eligible pivot: likely primal infeasible
      }

      const std::size_t out_var = basis_[static_cast<std::size_t>(r)];
      status_[out_var] = above ? VarStatus::kAtUpper : VarStatus::kAtLower;
      value_[out_var] = above ? upper_[out_var] : lower_[out_var];
      basis_[static_cast<std::size_t>(r)] = entering;
      status_[entering] = VarStatus::kBasic;
      ++iterations_;
    }
  }

  /// Read the final statuses into a reusable Basis.  A basis that still
  /// contains an artificial (degenerate Phase-I leftover) is not reusable
  /// and is reported as empty.
  void capture_basis(Basis& out) const {
    for (std::size_t i = 0; i < m_; ++i) {
      if (status_[n_ + m_ + i] == VarStatus::kBasic) {
        return;
      }
    }
    const auto to_basis = [](VarStatus s) {
      switch (s) {
        case VarStatus::kBasic:
          return BasisStatus::kBasic;
        case VarStatus::kAtLower:
          return BasisStatus::kAtLower;
        case VarStatus::kAtUpper:
          return BasisStatus::kAtUpper;
        case VarStatus::kFree:
          return BasisStatus::kFree;
        case VarStatus::kFixed:
          return BasisStatus::kFixed;
      }
      return BasisStatus::kUnset;
    };
    out.cols.resize(n_);
    for (std::size_t j = 0; j < n_; ++j) {
      out.cols[j] = to_basis(status_[j]);
    }
    out.row_slacks.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      out.row_slacks[i] = to_basis(status_[n_ + i]);
    }
  }

  /// Recompute basic variable values from the nonbasic resting values:
  /// solve B x_B = -N x_N  (the rhs of every row is zero).
  bool refresh_basics(const LuFactor& lu) {
    Vector rhs(m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      double v = 0.0;
      for (std::size_t j = 0; j < total_; ++j) {
        if (status_[j] != VarStatus::kBasic && value_[j] != 0.0) {
          v += coeff(i, j) * value_[j];
        }
      }
      rhs[i] = -v;
    }
    const Vector xb = lu.solve(rhs);
    for (std::size_t i = 0; i < m_; ++i) {
      value_[basis_[i]] = xb[i];
    }
    return true;
  }

  std::optional<LuFactor> factor_basis() {
    common::WallTimer timer;
    Matrix b(m_, m_);
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t k = 0; k < m_; ++k) {
        b(i, k) = coeff(i, basis_[k]);
      }
    }
    auto lu = LuFactor::compute(b);
    factor_seconds_ += timer.seconds();
    if (lu.has_value()) {
      ++factorizations_;
    }
    return lu;
  }

  LpStatus optimize(const Vector& cost) {
    const int bland_threshold =
        5 * static_cast<int>(total_ + m_) + 200;
    int phase_iterations = 0;

    for (;;) {
      if (iterations_ >= opts_.max_iterations) {
        return LpStatus::kIterationLimit;
      }
      const bool bland = phase_iterations > bland_threshold;

      auto lu = factor_basis();
      if (!lu.has_value()) {
        // A cold start never produces this (asserted by the caller); a
        // warm-started trajectory can pivot into a numerically singular
        // basis, and the caller then retries the whole solve cold.
        numeric_failure_ = true;
        return LpStatus::kIterationLimit;
      }
      refresh_basics(*lu);

      // Pricing: y = B^{-T} c_B, then reduced costs on nonbasics.  B^T is
      // factored directly when it can be, but an absolute pivot threshold
      // can declare B^T singular even though B factored fine: a badly
      // scaled cut row (tiny coefficients) is a tiny *column* of B^T.  The
      // two orientations are singular together mathematically, so in that
      // case the pricing system is solved through the factorization of B
      // instead of failing the solve.
      Vector cb(m_);
      for (std::size_t i = 0; i < m_; ++i) {
        cb[i] = cost[basis_[i]];
      }
      Matrix bt(m_, m_);
      for (std::size_t i = 0; i < m_; ++i) {
        for (std::size_t k = 0; k < m_; ++k) {
          bt(i, k) = coeff(k, basis_[i]);
        }
      }
      common::WallTimer bt_timer;
      const auto lut = LuFactor::compute(bt);
      factor_seconds_ += bt_timer.seconds();
      if (!lut.has_value()) {
        ++bt_fallbacks_;
      }
      const Vector y = lut.has_value() ? lut->solve(cb)
                                       : lu->solve_transposed(cb);

      std::size_t entering = total_;
      int direction = 0;  // +1 increase, -1 decrease
      double best_score = opts_.optimality_tol;
      for (std::size_t j = 0; j < total_; ++j) {
        const VarStatus st = status_[j];
        if (st == VarStatus::kBasic || st == VarStatus::kFixed) {
          continue;
        }
        double d = cost[j];
        for (std::size_t i = 0; i < m_; ++i) {
          const double a = coeff(i, j);
          if (a != 0.0) {
            d -= y[i] * a;
          }
        }
        int dir = 0;
        if ((st == VarStatus::kAtLower || st == VarStatus::kFree) &&
            d < -opts_.optimality_tol) {
          dir = +1;
        } else if ((st == VarStatus::kAtUpper || st == VarStatus::kFree) &&
                   d > opts_.optimality_tol) {
          dir = -1;
        }
        if (dir == 0) {
          continue;
        }
        if (bland) {
          entering = j;
          direction = dir;
          break;  // smallest eligible index
        }
        if (std::fabs(d) > best_score) {
          best_score = std::fabs(d);
          entering = j;
          direction = dir;
        }
      }
      if (entering == total_) {
        return LpStatus::kOptimal;
      }

      // Direction through the basics: w = B^{-1} A_e.
      Vector ae(m_);
      for (std::size_t i = 0; i < m_; ++i) {
        ae[i] = coeff(i, entering);
      }
      const Vector w = lu->solve(ae);

      // Ratio test.  x_B(t) = x_B - t * direction * w;  entering moves by
      // +/- t from its current bound, capped by its own bound span.
      double t_max = kInf;
      if (std::isfinite(lower_[entering]) && std::isfinite(upper_[entering])) {
        t_max = upper_[entering] - lower_[entering];
      }
      std::ptrdiff_t leaving = -1;  // -1 => bound flip
      bool leaving_to_upper = false;
      double leaving_pivot_mag = 0.0;
      const double pivot_tol = 1e-9;
      for (std::size_t i = 0; i < m_; ++i) {
        const double rate = direction * w[i];  // basic i decreases at `rate`
        const std::size_t bj = basis_[i];
        double limit = kInf;
        bool to_upper = false;
        if (rate > pivot_tol) {
          if (std::isfinite(lower_[bj])) {
            limit = (value_[bj] - lower_[bj]) / rate;
          }
        } else if (rate < -pivot_tol) {
          if (std::isfinite(upper_[bj])) {
            limit = (value_[bj] - upper_[bj]) / rate;
            to_upper = true;
          }
        } else {
          continue;
        }
        limit = std::max(limit, 0.0);  // degeneracy snap
        const bool better =
            limit < t_max - 1e-12 ||
            (limit < t_max + 1e-12 && std::fabs(w[i]) > leaving_pivot_mag);
        if (better && limit <= t_max + 1e-12) {
          t_max = std::min(t_max, limit);
          leaving = static_cast<std::ptrdiff_t>(i);
          leaving_to_upper = to_upper;
          leaving_pivot_mag = std::fabs(w[i]);
        }
      }

      if (!std::isfinite(t_max)) {
        return LpStatus::kUnbounded;
      }

      // Apply the step.
      for (std::size_t i = 0; i < m_; ++i) {
        value_[basis_[i]] -= t_max * direction * w[i];
      }
      value_[entering] += direction * t_max;

      if (leaving < 0) {
        // Bound flip: entering traverses its whole span, basis unchanged.
        status_[entering] = direction > 0 ? VarStatus::kAtUpper
                                          : VarStatus::kAtLower;
        value_[entering] = direction > 0 ? upper_[entering] : lower_[entering];
        ++bound_flips_;
      } else {
        const std::size_t out_var = basis_[static_cast<std::size_t>(leaving)];
        status_[out_var] =
            leaving_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
        value_[out_var] = leaving_to_upper ? upper_[out_var] : lower_[out_var];
        basis_[static_cast<std::size_t>(leaving)] = entering;
        status_[entering] = VarStatus::kBasic;
      }

      ++iterations_;
      ++phase_iterations;
    }
  }

 public:
  /// True when a pivot reached a numerically singular basis.  Possible only
  /// on warm-started trajectories; the caller retries the solve cold.
  bool numeric_failure() const { return numeric_failure_; }

 private:
  const LpProblem& problem_;
  SimplexOptions opts_;
  std::size_t n_ = 0;      // structural columns
  std::size_t m_ = 0;      // rows (== slack count == artificial count)
  std::size_t total_ = 0;  // n + 2m
  Vector lower_, upper_, value_;
  Vector art_sign_;
  std::vector<VarStatus> status_;
  std::vector<std::size_t> basis_;
  int iterations_ = 0;
  long factorizations_ = 0;
  long bt_fallbacks_ = 0;
  long bound_flips_ = 0;
  double factor_seconds_ = 0.0;
  bool numeric_failure_ = false;
};

/// The sparse engine's basis representation: either a factorization it owns
/// (own mode: fresh SparseLu of the current basis + a live eta file), or an
/// inherited FactorSnapshot chain extended by a live bordered block and a
/// live eta file.  Either way the chain is flattened into `levels_`
/// (root first) and FTRAN/BTRAN run iteratively over it:
///
///   B_l = [[B_{l-1}, 0], [C_l, S_l]]  (after the row permutation old_rows)
///
/// is block lower triangular, so FTRAN extracts the parent subsystem on the
/// way down, solves the root, and back-substitutes each border block (then
/// that level's etas) on the way up; BTRAN runs the mirror image.  Two
/// buffer pools with per-level offsets (bufA_ row-space, bufB_
/// position-space) keep the sweeps allocation-free.
class MaintainedFactor {
 public:
  /// Fresh factorization of the basis columns; drops any inherited chain.
  /// Retains own_lu_/etas_ capacity across calls.
  bool refactorize(const SparseColumns& cols, const SparseLuOptions& opts) {
    inherited_.reset();
    old_rows_.clear();
    border_.clear();
    etas_.clear();
    levels_.clear();  // never leave pointers into a released chain
    own_mode_ = true;
    m_ = cols.cols();
    valid_ = own_lu_.factorize(cols, opts);
    if (valid_) {
      rebuild_levels();
    }
    return valid_;
  }

  /// Adopt a parent snapshot extended by a live bordered block mapping it
  /// onto the current problem's m rows.  Caller has validated row identity.
  void adopt(FactorRef snap, std::vector<int> old_rows,
             std::vector<FactorSnapshot::BorderRow> border, int m) {
    inherited_ = std::move(snap);
    old_rows_ = std::move(old_rows);
    border_ = std::move(border);
    etas_.clear();
    own_mode_ = false;
    m_ = m;
    valid_ = true;
    rebuild_levels();
  }

  /// Invalidate and release any inherited snapshot chain (so a pooled
  /// workspace does not pin dead parents between solves).
  void release() {
    inherited_.reset();
    old_rows_.clear();
    border_.clear();
    levels_.clear();
    valid_ = false;
  }

  bool valid() const { return valid_; }
  int rows() const { return m_; }
  int depth() const { return static_cast<int>(levels_.size()); }

  /// Append a product-form update at position r (w = FTRAN image of the
  /// entering column).  False => unstable pivot, caller must refactorize.
  bool update(std::span<const double> w, int r, double stability_tol) {
    return etas_.append(w, r, stability_tol);
  }

  long total_etas() const {
    long t = 0;
    for (const Level& l : levels_) {
      t += l.etas->count();
    }
    return t;
  }

  long eta_entries() const {
    long t = 0;
    for (const Level& l : levels_) {
      t += l.etas->nnz();
    }
    return t;
  }

  long base_nnz() const {
    return levels_.empty() ? 0 : levels_.front().lu->factor_nnz();
  }

  /// Solve B x = rhs; `rhs` indexed by row, `out` by basis position.
  /// Aliasing rhs/out is allowed (both are staged through the buffers).
  void ftran(std::span<const double> rhs, std::span<double> out) {
    const int levels = static_cast<int>(levels_.size());
    const int top = levels - 1;
    std::copy(rhs.begin(), rhs.end(), bufA_.begin() + offsets_[top]);
    // Down sweep: extract each parent's rows.
    for (int l = top; l >= 1; --l) {
      const std::vector<int>& om = *levels_[l].old_rows;
      const double* a = bufA_.data() + offsets_[l];
      double* ap = bufA_.data() + offsets_[l - 1];
      const int pm = levels_[l - 1].m;
      for (int i = 0; i < pm; ++i) {
        ap[i] = a[om[i]];
      }
    }
    // Root solve + root etas.
    {
      const Level& root = levels_[0];
      const std::size_t rm = static_cast<std::size_t>(root.m);
      std::span<double> a0(bufA_.data() + offsets_[0], rm);
      std::span<double> b0(bufB_.data() + offsets_[0], rm);
      root.lu->ftran(a0, b0, std::span<double>(work_.data(), rm));
      root.etas->apply_ftran(b0);
    }
    // Up sweep: back-substitute each border block, then that level's etas.
    for (int l = 1; l < levels; ++l) {
      const Level& lev = levels_[l];
      const int pm = levels_[l - 1].m;
      const double* bp = bufB_.data() + offsets_[l - 1];
      double* b = bufB_.data() + offsets_[l];
      const double* a = bufA_.data() + offsets_[l];
      std::copy(bp, bp + pm, b);
      const auto& border = *lev.border;
      for (std::size_t j = 0; j < border.size(); ++j) {
        const FactorSnapshot::BorderRow& br = border[j];
        double v = a[br.row];
        for (const auto& [p, c] : br.terms) {
          v -= c * b[p];
        }
        b[pm + static_cast<int>(j)] = v / br.slack_coeff;
      }
      lev.etas->apply_ftran(
          std::span<double>(b, static_cast<std::size_t>(lev.m)));
    }
    const double* bt = bufB_.data() + offsets_[top];
    std::copy(bt, bt + m_, out.begin());
  }

  /// Solve B^T y = rhs; `rhs` indexed by basis position, `out` by row.
  void btran(std::span<const double> rhs, std::span<double> out) {
    const int levels = static_cast<int>(levels_.size());
    const int top = levels - 1;
    std::copy(rhs.begin(), rhs.end(), bufB_.begin() + offsets_[top]);
    // Down sweep: undo this level's etas, peel the border block (storing
    // each border dual in place at its tail slot for the up sweep), and
    // hand the modified prefix to the parent.
    for (int l = top; l >= 1; --l) {
      const Level& lev = levels_[l];
      const int pm = levels_[l - 1].m;
      double* b = bufB_.data() + offsets_[l];
      double* bp = bufB_.data() + offsets_[l - 1];
      lev.etas->apply_btran(
          std::span<double>(b, static_cast<std::size_t>(lev.m)));
      const auto& border = *lev.border;
      for (std::size_t j = 0; j < border.size(); ++j) {
        const FactorSnapshot::BorderRow& br = border[j];
        const double yj = b[pm + static_cast<int>(j)] / br.slack_coeff;
        b[pm + static_cast<int>(j)] = yj;
        for (const auto& [p, c] : br.terms) {
          b[p] -= c * yj;
        }
      }
      std::copy(b, b + pm, bp);
    }
    // Root: etas transposed, then the factor's BTRAN.
    {
      const Level& root = levels_[0];
      const std::size_t rm = static_cast<std::size_t>(root.m);
      std::span<double> b0(bufB_.data() + offsets_[0], rm);
      std::span<double> a0(bufA_.data() + offsets_[0], rm);
      root.etas->apply_btran(b0);
      root.lu->btran(b0, a0, std::span<double>(work_.data(), rm));
    }
    // Up sweep: scatter parent duals through old_rows, border duals to
    // their own rows.
    for (int l = 1; l < levels; ++l) {
      const Level& lev = levels_[l];
      const int pm = levels_[l - 1].m;
      const std::vector<int>& om = *lev.old_rows;
      double* a = bufA_.data() + offsets_[l];
      const double* ap = bufA_.data() + offsets_[l - 1];
      const double* b = bufB_.data() + offsets_[l];
      for (int i = 0; i < pm; ++i) {
        a[om[i]] = ap[i];
      }
      const auto& border = *lev.border;
      for (std::size_t j = 0; j < border.size(); ++j) {
        a[border[j].row] = b[pm + static_cast<int>(j)];
      }
    }
    const double* at = bufA_.data() + offsets_[top];
    std::copy(at, at + m_, out.begin());
  }

  /// Package the current state as an immutable snapshot.  The live pieces
  /// are copied (the workspace keeps its capacity); an inherited chain is
  /// shared by reference.
  FactorRef capture(std::size_t n, std::span<const std::uint64_t> row_keys,
                    std::vector<std::uint64_t> row_sigs,
                    std::vector<std::uint64_t> basis_ids) const {
    auto s = std::make_shared<FactorSnapshot>();
    s->m = m_;
    s->n = n;
    s->row_keys.assign(row_keys.begin(), row_keys.end());
    s->row_sigs = std::move(row_sigs);
    s->basis_ids = std::move(basis_ids);
    s->etas = etas_;
    if (own_mode_) {
      s->lu = own_lu_;
      s->levels = 1;
      s->total_etas = s->etas.count();
      s->base_nnz = own_lu_.factor_nnz();
    } else {
      s->parent = inherited_;
      s->old_rows = old_rows_;
      s->border = border_;
      s->levels = inherited_->levels + 1;
      s->total_etas = inherited_->total_etas + s->etas.count();
      s->base_nnz = inherited_->base_nnz;
    }
    return s;
  }

 private:
  struct Level {
    const SparseLu* lu = nullptr;  // root level only
    const std::vector<int>* old_rows = nullptr;
    const std::vector<FactorSnapshot::BorderRow>* border = nullptr;
    const EtaFile* etas = nullptr;
    int m = 0;
  };

  void rebuild_levels() {
    levels_.clear();
    if (own_mode_) {
      levels_.push_back(Level{&own_lu_, nullptr, nullptr, &etas_, m_});
    } else {
      // Walk the snapshot chain down to the root, then emit root-first.
      chain_.clear();
      for (const FactorSnapshot* s = inherited_.get(); s != nullptr;
           s = s->parent.get()) {
        chain_.push_back(s);
      }
      for (auto it = chain_.rbegin(); it != chain_.rend(); ++it) {
        const FactorSnapshot* s = *it;
        Level l;
        l.etas = &s->etas;
        l.m = s->m;
        if (s->parent) {
          l.old_rows = &s->old_rows;
          l.border = &s->border;
        } else {
          l.lu = &s->lu;
        }
        levels_.push_back(l);
      }
      levels_.push_back(Level{nullptr, &old_rows_, &border_, &etas_, m_});
    }
    offsets_.resize(levels_.size());
    std::size_t total = 0;
    std::size_t max_m = 0;
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      offsets_[i] = static_cast<std::ptrdiff_t>(total);
      total += static_cast<std::size_t>(levels_[i].m);
      max_m = std::max(max_m, static_cast<std::size_t>(levels_[i].m));
    }
    bufA_.resize(total);
    bufB_.resize(total);
    work_.resize(max_m);
  }

  bool own_mode_ = true;
  bool valid_ = false;
  int m_ = 0;
  SparseLu own_lu_;
  FactorRef inherited_;
  std::vector<int> old_rows_;
  std::vector<FactorSnapshot::BorderRow> border_;
  EtaFile etas_;
  std::vector<Level> levels_;
  std::vector<const FactorSnapshot*> chain_;
  std::vector<std::ptrdiff_t> offsets_;
  std::vector<double> bufA_, bufB_, work_;
};

/// Per-thread scratch for the sparse engine.  Branch-and-bound issues
/// thousands of tiny LP solves per second per worker; reusing these
/// buffers (vectors keep capacity, the eta file keeps its pools, the CSC
/// builders keep their arrays) removes every steady-state heap allocation
/// from the solve path.  `in_use` guards reentrancy: a nested solve on the
/// same thread falls back to a heap-allocated private workspace.
struct LpWorkspace {
  bool in_use = false;
  Vector lower, upper, value, cost, phase1_cost, y, w, rhs, cb;
  std::vector<VarStatus> status;
  std::vector<std::size_t> basis;
  Vector art_sign;
  SparseColumns csc;         // structural columns of the current problem
  SparseColumns basis_cols;  // basis columns fed to the factorization
  MaintainedFactor factor;
};

LpWorkspace& thread_workspace() {
  thread_local LpWorkspace ws;
  return ws;
}

/// Default engine: revised simplex over a maintained sparse factorization.
/// Pivot rules (pricing, ratio test, Bland fallback, dual repair
/// eligibility and tie-breaks) are copied verbatim from DenseSimplex so the
/// two engines walk the same vertex sequence whenever their arithmetic
/// agrees; the engines differ only in how B^{-1} is applied and in when
/// basic values are recomputed (dense: every pivot; sparse: incrementally,
/// refreshed at factorization points and on optimal exit).
class SparseSimplex {
 public:
  SparseSimplex(const LpProblem& problem, const SimplexOptions& options,
                LpWorkspace& ws)
      : problem_(problem), opts_(options), ws_(ws) {
    n_ = problem.num_vars();
    m_ = problem.num_rows();
    total_ = n_ + 2 * m_;  // structural | slack | artificial

    ws_.lower.assign(total_, -kInf);
    ws_.upper.assign(total_, kInf);
    for (std::size_t j = 0; j < n_; ++j) {
      ws_.lower[j] = problem.col_lower()[j];
      ws_.upper[j] = problem.col_upper()[j];
    }
    for (std::size_t i = 0; i < m_; ++i) {
      ws_.lower[n_ + i] = problem.rows()[i].lower;
      ws_.upper[n_ + i] = problem.rows()[i].upper;
      ws_.lower[n_ + m_ + i] = 0.0;  // artificials
    }
    ws_.art_sign.assign(m_, 1.0);
    ws_.status.assign(total_, VarStatus::kAtLower);
    ws_.value.assign(total_, 0.0);
    for (std::size_t j = 0; j < total_; ++j) {
      init_nonbasic(j);
    }
    init_basis();

    // CSC of the structural columns, built once per solve.  Slack and
    // artificial columns are singletons and stay implicit, so the pricing
    // loop and the basis-column gather handle them inline (and an
    // art_sign flip never invalidates this matrix).
    ws_.csc.reset(static_cast<int>(m_));
    for (std::size_t j = 0; j < n_; ++j) {
      for (std::size_t i = 0; i < m_; ++i) {
        ws_.csc.add_entry(static_cast<int>(i), problem.rows()[i].coeffs[j]);
      }
      ws_.csc.finish_column();
    }

    ws_.y.assign(m_, 0.0);
    ws_.w.assign(m_, 0.0);
    ws_.rhs.assign(m_, 0.0);
    ws_.cb.assign(m_, 0.0);
  }

  LpSolution run(const Basis* warm, const WarmFactor* wf) {
    LpSolution out;

    ws_.cost.assign(total_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
      ws_.cost[j] = problem_.cost()[j];
    }

    WarmMode mode = WarmMode::kCold;
    if (warm != nullptr && !warm->empty()) {
      mode = prepare_warm(*warm, wf, ws_.cost, out);
    }
    out.warm_used = mode != WarmMode::kCold;
    out.warm_phase1_skipped = mode != WarmMode::kCold;

    if (mode == WarmMode::kCold) {
      // The all-artificial basis is diag(+/-1): its factorization cannot
      // fail unless something is structurally broken, in which case the
      // caller's cold-retry assertion fires.
      if (!factorize_current()) {
        numeric_failure_ = true;
        out.status = LpStatus::kIterationLimit;
        finalize(out);
        return out;
      }
      refresh_basics();
      // ---- Phase I: minimize the sum of artificial values. ----
      ws_.phase1_cost.assign(total_, 0.0);
      for (std::size_t i = 0; i < m_; ++i) {
        ws_.phase1_cost[n_ + m_ + i] = 1.0;
      }
      const LpStatus st1 = optimize(ws_.phase1_cost);
      out.phase1_iterations = iterations_;
      if (st1 == LpStatus::kIterationLimit) {
        out.status = st1;
        finalize(out);
        return out;
      }
      double infeasibility = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        infeasibility += ws_.value[n_ + m_ + i];
      }
      if (infeasibility >
          opts_.feasibility_tol * std::max<double>(1.0, static_cast<double>(m_))) {
        out.status = LpStatus::kInfeasible;
        finalize(out);
        return out;
      }
    }

    // Freeze artificials at zero for Phase II.
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t a = n_ + m_ + i;
      ws_.lower[a] = ws_.upper[a] = 0.0;
      if (ws_.status[a] != VarStatus::kBasic) {
        ws_.status[a] = VarStatus::kFixed;
        ws_.value[a] = 0.0;
      }
    }

    // ---- Phase II: the real objective. ----
    const LpStatus st2 = optimize(ws_.cost);
    out.status = st2;
    finalize(out);
    if (st2 == LpStatus::kOptimal) {
      out.x.assign(ws_.value.begin(),
                   ws_.value.begin() + static_cast<std::ptrdiff_t>(n_));
      out.objective = problem_.objective_offset();
      for (std::size_t j = 0; j < n_; ++j) {
        out.objective += problem_.cost()[j] * out.x[j];
      }
      if (opts_.capture_basis) {
        capture_basis(out.basis);
      }
      if (opts_.capture_factor && wf != nullptr &&
          wf->row_keys.size() == m_ && ws_.factor.valid()) {
        capture_factor(out, wf->row_keys);
      }
    }
    ws_.factor.release();  // drop inherited refs; keep buffer capacity
    return out;
  }

  bool numeric_failure() const { return numeric_failure_; }

 private:
  void finalize(LpSolution& out) const {
    out.iterations = iterations_;
    out.factorizations = factorizations_;
    out.refactorizations = refactorizations_;
    out.eta_updates = eta_updates_;
    out.bound_flips = bound_flips_;
    out.factor_inherited = factor_inherited_;
    out.factor_seconds = factor_seconds_;
    out.update_seconds = update_seconds_;
  }

  /// Coefficient of column j in row i of [A | -I | G] (validation paths
  /// only; the hot loops go through the CSC / singleton structure).
  double coeff(std::size_t i, std::size_t j) const {
    if (j < n_) {
      return problem_.rows()[i].coeffs[j];
    }
    if (j < n_ + m_) {
      return j - n_ == i ? -1.0 : 0.0;
    }
    return j - n_ - m_ == i ? ws_.art_sign[i] : 0.0;
  }

  void init_nonbasic(std::size_t j) {
    const double lo = ws_.lower[j];
    const double hi = ws_.upper[j];
    if (lo == hi) {
      ws_.status[j] = VarStatus::kFixed;
      ws_.value[j] = lo;
    } else if (std::isfinite(lo) && std::isfinite(hi)) {
      const bool lower_closer = std::fabs(lo) <= std::fabs(hi);
      ws_.status[j] = lower_closer ? VarStatus::kAtLower : VarStatus::kAtUpper;
      ws_.value[j] = lower_closer ? lo : hi;
    } else if (std::isfinite(lo)) {
      ws_.status[j] = VarStatus::kAtLower;
      ws_.value[j] = lo;
    } else if (std::isfinite(hi)) {
      ws_.status[j] = VarStatus::kAtUpper;
      ws_.value[j] = hi;
    } else {
      ws_.status[j] = VarStatus::kFree;
      ws_.value[j] = 0.0;
    }
  }

  void init_basis() {
    ws_.basis.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      double v = 0.0;
      for (std::size_t j = 0; j < n_; ++j) {
        v += problem_.rows()[i].coeffs[j] * ws_.value[j];
      }
      v -= ws_.value[n_ + i];  // slack column is -1
      ws_.art_sign[i] = v > 0.0 ? -1.0 : 1.0;
      const std::size_t a = n_ + m_ + i;
      ws_.basis[i] = a;
      ws_.status[a] = VarStatus::kBasic;
      ws_.value[a] = std::fabs(v);
    }
  }

  /// Gather column j of [A | -I | G] into ws_.rhs (dense by row).
  void gather_column(std::size_t j) {
    std::fill(ws_.rhs.begin(), ws_.rhs.end(), 0.0);
    if (j < n_) {
      const auto idx = ws_.csc.col_index(static_cast<int>(j));
      const auto val = ws_.csc.col_value(static_cast<int>(j));
      for (std::size_t k = 0; k < idx.size(); ++k) {
        ws_.rhs[static_cast<std::size_t>(idx[k])] = val[k];
      }
    } else if (j < n_ + m_) {
      ws_.rhs[j - n_] = -1.0;
    } else {
      ws_.rhs[j - n_ - m_] = ws_.art_sign[j - n_ - m_];
    }
  }

  /// Fresh sparse LU of the current basis.  The factorization tolerances
  /// are looser relatively and tighter absolutely than the dense path's:
  /// every column magnitude passes the relative threshold, so a false
  /// "singular" verdict needs the whole column below 1e-14 -- at which
  /// point the basis is singular for every practical purpose.
  bool factorize_current() {
    common::WallTimer timer;
    ws_.basis_cols.reset(static_cast<int>(m_));
    for (std::size_t k = 0; k < m_; ++k) {
      const std::size_t j = ws_.basis[k];
      if (j < n_) {
        const auto idx = ws_.csc.col_index(static_cast<int>(j));
        const auto val = ws_.csc.col_value(static_cast<int>(j));
        for (std::size_t e = 0; e < idx.size(); ++e) {
          ws_.basis_cols.add_entry(idx[e], val[e]);
        }
      } else if (j < n_ + m_) {
        ws_.basis_cols.add_entry(static_cast<int>(j - n_), -1.0);
      } else {
        ws_.basis_cols.add_entry(static_cast<int>(j - n_ - m_),
                                 ws_.art_sign[j - n_ - m_]);
      }
      ws_.basis_cols.finish_column();
    }
    const bool ok =
        ws_.factor.refactorize(ws_.basis_cols, SparseLuOptions{0.1, 1e-14});
    factor_seconds_ += timer.seconds();
    if (ok) {
      ++factorizations_;
    }
    return ok;
  }

  /// Recompute basic values from the nonbasic resting values through the
  /// maintained factor: B x_B = -N x_N.
  void refresh_basics() {
    std::fill(ws_.rhs.begin(), ws_.rhs.end(), 0.0);
    for (std::size_t j = 0; j < total_; ++j) {
      if (ws_.status[j] == VarStatus::kBasic || ws_.value[j] == 0.0) {
        continue;
      }
      const double v = ws_.value[j];
      if (j < n_) {
        const auto idx = ws_.csc.col_index(static_cast<int>(j));
        const auto val = ws_.csc.col_value(static_cast<int>(j));
        for (std::size_t k = 0; k < idx.size(); ++k) {
          ws_.rhs[static_cast<std::size_t>(idx[k])] -= val[k] * v;
        }
      } else if (j < n_ + m_) {
        ws_.rhs[j - n_] += v;  // -(-1 * v)
      } else {
        ws_.rhs[j - n_ - m_] -= ws_.art_sign[j - n_ - m_] * v;
      }
    }
    ws_.factor.ftran(ws_.rhs, ws_.w);
    for (std::size_t i = 0; i < m_; ++i) {
      ws_.value[ws_.basis[i]] = ws_.w[i];
    }
  }

  bool basics_feasible() const {
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t bj = ws_.basis[i];
      const double v = ws_.value[bj];
      if (v < ws_.lower[bj] - opts_.feasibility_tol ||
          v > ws_.upper[bj] + opts_.feasibility_tol) {
        return false;
      }
    }
    return true;
  }

  /// Absorb a pivot at basis position r: try a product-form update first
  /// (w must be the FTRAN image of the new basic column through the
  /// current factor); on a refused (unstable) eta, or once the
  /// deterministic budget trips -- eta count across the whole stack, or
  /// eta fill beyond eta_fill_factor x base fill plus a per-row allowance
  /// -- rebuild the factorization of the *new* basis.  Returns false only
  /// when that rebuild finds the basis singular.
  bool pivot_factor_update(int r) {
    common::WallTimer timer;
    const bool updated = ws_.factor.update(ws_.w, r, opts_.eta_stability_tol);
    update_seconds_ += timer.seconds();
    if (updated) {
      ++eta_updates_;
      const long allowance = 4 * static_cast<long>(m_);
      const long fill_budget =
          static_cast<long>(opts_.eta_fill_factor *
                            static_cast<double>(ws_.factor.base_nnz())) +
          allowance;
      if (ws_.factor.total_etas() < opts_.refactor_interval &&
          ws_.factor.eta_entries() < fill_budget) {
        return true;
      }
    }
    if (!factorize_current()) {
      return false;
    }
    ++refactorizations_;
    refresh_basics();
    return true;
  }

  /// Validate and adopt an inherited snapshot: every snapshot row must
  /// still exist (by key) with byte-identical coefficients (by signature),
  /// the remapped snapshot basis plus the new rows' slacks must equal the
  /// warm candidate set, and the stack must have eta/depth headroom.
  /// Anything else declines -- a declined handoff costs one fresh
  /// factorization, an invalid accepted one would corrupt the solve.
  bool try_adopt(const FactorSnapshot& snap,
                 std::span<const std::uint64_t> keys,
                 const std::vector<std::size_t>& candidates) {
    if (snap.n != n_ || keys.size() != m_) {
      return false;
    }
    if (snap.levels + 1 > opts_.max_factor_levels) {
      return false;
    }
    if (snap.total_etas >= opts_.refactor_interval) {
      return false;
    }
    const std::size_t pm = static_cast<std::size_t>(snap.m);
    if (pm > m_) {
      return false;
    }
    std::unordered_map<std::uint64_t, int> row_of;
    row_of.reserve(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      row_of.emplace(keys[i], static_cast<int>(i));  // first wins
    }
    std::vector<char> matched(m_, 0);
    std::vector<int> old_rows(pm);
    for (std::size_t i = 0; i < pm; ++i) {
      const auto it = row_of.find(snap.row_keys[i]);
      if (it == row_of.end()) {
        return false;
      }
      const int t = it->second;
      if (matched[static_cast<std::size_t>(t)]) {
        return false;
      }
      if (row_signature(problem_.rows()[static_cast<std::size_t>(t)].coeffs) !=
          snap.row_sigs[i]) {
        return false;
      }
      matched[static_cast<std::size_t>(t)] = 1;
      old_rows[i] = t;
    }
    // The expected basic set: snapshot members remapped onto this problem,
    // plus the basic slack of every border (new) row.
    std::vector<char> expected(n_ + m_, 0);
    for (std::size_t p = 0; p < pm; ++p) {
      const std::uint64_t id = snap.basis_ids[p];
      if (id & kSlackBit) {
        const auto it = row_of.find(id & ~kSlackBit);
        if (it == row_of.end() ||
            !matched[static_cast<std::size_t>(it->second)]) {
          return false;
        }
        expected[n_ + static_cast<std::size_t>(it->second)] = 1;
      } else {
        expected[static_cast<std::size_t>(id)] = 1;
      }
    }
    std::vector<FactorSnapshot::BorderRow> border;
    border.reserve(m_ - pm);
    for (std::size_t t = 0; t < m_; ++t) {
      if (matched[t]) {
        continue;
      }
      FactorSnapshot::BorderRow br;
      br.row = static_cast<int>(t);
      br.slack_coeff = -1.0;
      const auto& coeffs = problem_.rows()[t].coeffs;
      for (std::size_t p = 0; p < pm; ++p) {
        const std::uint64_t id = snap.basis_ids[p];
        if (id & kSlackBit) {
          continue;  // a slack is a singleton in its own (matched) row
        }
        const double c = coeffs[static_cast<std::size_t>(id)];
        if (c != 0.0) {
          br.terms.emplace_back(static_cast<int>(p), c);
        }
      }
      expected[n_ + t] = 1;
      border.push_back(std::move(br));
    }
    // candidates has exactly m_ distinct members (the caller checked), so
    // subset + equal cardinality => set equality.
    for (const std::size_t c : candidates) {
      if (!expected[c]) {
        return false;
      }
    }
    // Adopt: basis order becomes snapshot positions then border slacks.
    for (std::size_t p = 0; p < pm; ++p) {
      const std::uint64_t id = snap.basis_ids[p];
      ws_.basis[p] = (id & kSlackBit)
                         ? n_ + static_cast<std::size_t>(
                                    row_of.find(id & ~kSlackBit)->second)
                         : static_cast<std::size_t>(id);
    }
    for (std::size_t j = 0; j < border.size(); ++j) {
      ws_.basis[pm + j] = n_ + static_cast<std::size_t>(border[j].row);
    }
    // The snapshot chain is shared by reference; only the border extension
    // is fresh state.
    FactorRef keep;
    if (wf_keepalive_ != nullptr) {
      keep = *wf_keepalive_;
    }
    ws_.factor.adopt(std::move(keep), std::move(old_rows), std::move(border),
                     static_cast<int>(m_));
    return true;
  }

  WarmMode prepare_warm(const Basis& warm, const WarmFactor* wf,
                        const Vector& phase2_cost, LpSolution& out) {
    if (warm.cols.size() != n_ || warm.row_slacks.size() != m_) {
      return WarmMode::kCold;
    }
    std::vector<std::size_t> candidates;
    candidates.reserve(m_);
    for (std::size_t j = 0; j < n_ + m_; ++j) {
      const BasisStatus s =
          j < n_ ? warm.cols[j] : warm.row_slacks[j - n_];
      switch (s) {
        case BasisStatus::kBasic:
          candidates.push_back(j);
          break;
        case BasisStatus::kAtLower:
          if (std::isfinite(ws_.lower[j]) && ws_.lower[j] != ws_.upper[j]) {
            ws_.status[j] = VarStatus::kAtLower;
            ws_.value[j] = ws_.lower[j];
          }
          break;
        case BasisStatus::kAtUpper:
          if (std::isfinite(ws_.upper[j]) && ws_.lower[j] != ws_.upper[j]) {
            ws_.status[j] = VarStatus::kAtUpper;
            ws_.value[j] = ws_.upper[j];
          }
          break;
        case BasisStatus::kFree:
          if (!std::isfinite(ws_.lower[j]) && !std::isfinite(ws_.upper[j])) {
            ws_.status[j] = VarStatus::kFree;
            ws_.value[j] = 0.0;
          }
          break;
        case BasisStatus::kFixed:
        case BasisStatus::kUnset:
          break;  // keep the constructor's resting placement
      }
    }

    if (candidates.size() == m_) {
      ws_.basis = candidates;
      for (const std::size_t c : candidates) {
        ws_.status[c] = VarStatus::kBasic;
      }
      for (std::size_t i = 0; i < m_; ++i) {
        const std::size_t a = n_ + m_ + i;
        ws_.status[a] = VarStatus::kAtLower;
        ws_.value[a] = 0.0;
      }
      // One factorization serves both FTRAN and BTRAN here (unlike the
      // dense path, which must prove both orientations factor), obtained
      // either by adopting the parent's snapshot or by factoring fresh.
      bool have_factor = false;
      bool inherited = false;
      if (wf != nullptr && wf->snapshot != nullptr &&
          wf->row_keys.size() == m_) {
        wf_keepalive_ = &wf->snapshot;
        inherited = try_adopt(*wf->snapshot, wf->row_keys, candidates);
        wf_keepalive_ = nullptr;
        have_factor = inherited;
      }
      if (!have_factor) {
        have_factor = factorize_current();
      }
      if (have_factor) {
        refresh_basics();
        if (basics_feasible()) {
          factor_inherited_ = inherited;
          return WarmMode::kReuse;
        }
        if (dual_repair(phase2_cost)) {
          factor_inherited_ = inherited;
          return WarmMode::kDualRepair;
        }
      }
    }
    // No reuse: rebuild the cold start from scratch.
    for (std::size_t j = 0; j < total_; ++j) {
      init_nonbasic(j);
    }
    init_basis();
    ws_.factor.release();
    (void)out;
    return WarmMode::kCold;
  }

  /// Dual-simplex repair on the maintained factor; selection rules and
  /// tolerances identical to DenseSimplex::dual_repair.  Each pivot is
  /// absorbed as an eta update (or a refactorization when refused), and a
  /// singular rebuild bails to the cold start like every other failure.
  bool dual_repair(const Vector& cost) {
    const int cap = std::min(opts_.max_iterations - iterations_,
                             static_cast<int>(m_) + 10);
    const double pivot_tol = 1e-7;
    for (int it = 0;; ++it) {
      refresh_basics();

      std::ptrdiff_t r = -1;
      bool above = false;
      double worst = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        const std::size_t bj = ws_.basis[i];
        const double v = ws_.value[bj];
        if (v < ws_.lower[bj] - opts_.feasibility_tol &&
            ws_.lower[bj] - v > worst) {
          worst = ws_.lower[bj] - v;
          r = static_cast<std::ptrdiff_t>(i);
          above = false;
        } else if (v > ws_.upper[bj] + opts_.feasibility_tol &&
                   v - ws_.upper[bj] > worst) {
          worst = v - ws_.upper[bj];
          r = static_cast<std::ptrdiff_t>(i);
          above = true;
        }
      }
      if (r < 0) {
        return true;  // primal feasible: ready for Phase II
      }
      if (it >= cap) {
        return false;
      }
      // Row r of B^{-1}A via B^T w = e_r, and the duals y = B^{-T} c_B.
      std::fill(ws_.cb.begin(), ws_.cb.end(), 0.0);
      ws_.cb[static_cast<std::size_t>(r)] = 1.0;
      ws_.factor.btran(ws_.cb, ws_.w);
      Vector& wrow = ws_.w;  // by row
      for (std::size_t i = 0; i < m_; ++i) {
        ws_.cb[i] = cost[ws_.basis[i]];
      }
      ws_.factor.btran(ws_.cb, ws_.y);

      std::size_t entering = total_;
      double best_ratio = kInf;
      double best_alpha = 0.0;
      for (std::size_t j = 0; j < n_ + m_; ++j) {
        const VarStatus st = ws_.status[j];
        if (st == VarStatus::kBasic || st == VarStatus::kFixed) {
          continue;
        }
        double alpha = 0.0;
        double d = cost[j];
        if (j < n_) {
          const auto idx = ws_.csc.col_index(static_cast<int>(j));
          const auto val = ws_.csc.col_value(static_cast<int>(j));
          for (std::size_t k = 0; k < idx.size(); ++k) {
            const auto row = static_cast<std::size_t>(idx[k]);
            alpha += wrow[row] * val[k];
            d -= ws_.y[row] * val[k];
          }
        } else {
          alpha -= wrow[j - n_];  // slack coefficient -1
          d += ws_.y[j - n_];
        }
        if (std::fabs(alpha) <= pivot_tol) {
          continue;
        }
        bool eligible = st == VarStatus::kFree;
        if (!eligible && st == VarStatus::kAtLower) {
          eligible = above ? alpha > 0.0 : alpha < 0.0;
        }
        if (!eligible && st == VarStatus::kAtUpper) {
          eligible = above ? alpha < 0.0 : alpha > 0.0;
        }
        if (!eligible) {
          continue;
        }
        const double ratio = std::fabs(d) / std::fabs(alpha);
        if (ratio < best_ratio - 1e-12 ||
            (ratio < best_ratio + 1e-12 && std::fabs(alpha) > best_alpha)) {
          best_ratio = std::min(best_ratio, ratio);
          best_alpha = std::fabs(alpha);
          entering = j;
        }
      }
      if (entering == total_) {
        return false;  // no eligible pivot: likely primal infeasible
      }

      // Absorb the pivot into the factor before mutating the basis: the
      // eta needs the entering column's FTRAN image through the *old* B.
      gather_column(entering);
      ws_.factor.ftran(ws_.rhs, ws_.w);
      const std::size_t out_var = ws_.basis[static_cast<std::size_t>(r)];
      ws_.status[out_var] = above ? VarStatus::kAtUpper : VarStatus::kAtLower;
      ws_.value[out_var] = above ? ws_.upper[out_var] : ws_.lower[out_var];
      ws_.basis[static_cast<std::size_t>(r)] = entering;
      ws_.status[entering] = VarStatus::kBasic;
      if (!pivot_factor_update(static_cast<int>(r))) {
        return false;
      }
      ++iterations_;
    }
  }

  void capture_basis(Basis& out) const {
    for (std::size_t i = 0; i < m_; ++i) {
      if (ws_.status[n_ + m_ + i] == VarStatus::kBasic) {
        return;
      }
    }
    const auto to_basis = [](VarStatus s) {
      switch (s) {
        case VarStatus::kBasic:
          return BasisStatus::kBasic;
        case VarStatus::kAtLower:
          return BasisStatus::kAtLower;
        case VarStatus::kAtUpper:
          return BasisStatus::kAtUpper;
        case VarStatus::kFree:
          return BasisStatus::kFree;
        case VarStatus::kFixed:
          return BasisStatus::kFixed;
      }
      return BasisStatus::kUnset;
    };
    out.cols.resize(n_);
    for (std::size_t j = 0; j < n_; ++j) {
      out.cols[j] = to_basis(ws_.status[j]);
    }
    out.row_slacks.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      out.row_slacks[i] = to_basis(ws_.status[n_ + i]);
    }
  }

  /// Package the maintained factor for the next generation.  Declined when
  /// an artificial is still basic (the same condition that blocks basis
  /// capture: such a basis is not reusable).
  void capture_factor(LpSolution& out,
                      std::span<const std::uint64_t> keys) const {
    for (std::size_t i = 0; i < m_; ++i) {
      if (ws_.status[n_ + m_ + i] == VarStatus::kBasic) {
        return;
      }
    }
    std::vector<std::uint64_t> sigs(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      sigs[i] = row_signature(problem_.rows()[i].coeffs);
    }
    std::vector<std::uint64_t> ids(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t j = ws_.basis[i];
      ids[i] = j < n_ ? static_cast<std::uint64_t>(j)
                      : (keys[j - n_] | kSlackBit);
    }
    out.factor = ws_.factor.capture(n_, keys, std::move(sigs), std::move(ids));
  }

  LpStatus optimize(const Vector& cost) {
    const int bland_threshold =
        5 * static_cast<int>(total_ + m_) + 200;
    int phase_iterations = 0;

    for (;;) {
      if (iterations_ >= opts_.max_iterations) {
        return LpStatus::kIterationLimit;
      }
      const bool bland = phase_iterations > bland_threshold;

      // Pricing: y = B^{-T} c_B through the maintained factor, then
      // reduced costs by column structure (CSC for structural, singletons
      // for slack/artificial).  Entry order within a column matches the
      // dense engine's ascending-row loop, so the sums round identically
      // given equal inputs.
      for (std::size_t i = 0; i < m_; ++i) {
        ws_.cb[i] = cost[ws_.basis[i]];
      }
      ws_.factor.btran(ws_.cb, ws_.y);

      std::size_t entering = total_;
      int direction = 0;  // +1 increase, -1 decrease
      double best_score = opts_.optimality_tol;
      for (std::size_t j = 0; j < total_; ++j) {
        const VarStatus st = ws_.status[j];
        if (st == VarStatus::kBasic || st == VarStatus::kFixed) {
          continue;
        }
        double d = cost[j];
        if (j < n_) {
          const auto idx = ws_.csc.col_index(static_cast<int>(j));
          const auto val = ws_.csc.col_value(static_cast<int>(j));
          for (std::size_t k = 0; k < idx.size(); ++k) {
            d -= ws_.y[static_cast<std::size_t>(idx[k])] * val[k];
          }
        } else if (j < n_ + m_) {
          d += ws_.y[j - n_];  // slack coefficient -1
        } else {
          d -= ws_.y[j - n_ - m_] * ws_.art_sign[j - n_ - m_];
        }
        int dir = 0;
        if ((st == VarStatus::kAtLower || st == VarStatus::kFree) &&
            d < -opts_.optimality_tol) {
          dir = +1;
        } else if ((st == VarStatus::kAtUpper || st == VarStatus::kFree) &&
                   d > opts_.optimality_tol) {
          dir = -1;
        }
        if (dir == 0) {
          continue;
        }
        if (bland) {
          entering = j;
          direction = dir;
          break;  // smallest eligible index
        }
        if (std::fabs(d) > best_score) {
          best_score = std::fabs(d);
          entering = j;
          direction = dir;
        }
      }
      if (entering == total_) {
        // Optimal under this objective.  Values were maintained
        // incrementally since the last factorization; recompute them once
        // through the factor so the Phase-I infeasibility sum and the
        // reported vertex see solve-quality numbers.
        refresh_basics();
        return LpStatus::kOptimal;
      }

      // Direction through the basics: w = B^{-1} A_e.
      gather_column(entering);
      ws_.factor.ftran(ws_.rhs, ws_.w);
      Vector& w = ws_.w;

      // Ratio test (identical to the dense engine).
      double t_max = kInf;
      if (std::isfinite(ws_.lower[entering]) &&
          std::isfinite(ws_.upper[entering])) {
        t_max = ws_.upper[entering] - ws_.lower[entering];
      }
      std::ptrdiff_t leaving = -1;  // -1 => bound flip
      bool leaving_to_upper = false;
      double leaving_pivot_mag = 0.0;
      const double pivot_tol = 1e-9;
      for (std::size_t i = 0; i < m_; ++i) {
        const double rate = direction * w[i];  // basic i decreases at `rate`
        const std::size_t bj = ws_.basis[i];
        double limit = kInf;
        bool to_upper = false;
        if (rate > pivot_tol) {
          if (std::isfinite(ws_.lower[bj])) {
            limit = (ws_.value[bj] - ws_.lower[bj]) / rate;
          }
        } else if (rate < -pivot_tol) {
          if (std::isfinite(ws_.upper[bj])) {
            limit = (ws_.value[bj] - ws_.upper[bj]) / rate;
            to_upper = true;
          }
        } else {
          continue;
        }
        limit = std::max(limit, 0.0);  // degeneracy snap
        const bool better =
            limit < t_max - 1e-12 ||
            (limit < t_max + 1e-12 && std::fabs(w[i]) > leaving_pivot_mag);
        if (better && limit <= t_max + 1e-12) {
          t_max = std::min(t_max, limit);
          leaving = static_cast<std::ptrdiff_t>(i);
          leaving_to_upper = to_upper;
          leaving_pivot_mag = std::fabs(w[i]);
        }
      }

      if (!std::isfinite(t_max)) {
        return LpStatus::kUnbounded;
      }

      // Apply the step incrementally (the dense engine instead recomputes
      // every basic from a fresh factorization each pivot).
      for (std::size_t i = 0; i < m_; ++i) {
        ws_.value[ws_.basis[i]] -= t_max * direction * w[i];
      }
      ws_.value[entering] += direction * t_max;

      if (leaving < 0) {
        // Bound flip: entering traverses its whole span; the basis -- and
        // therefore the factorization -- is unchanged.
        ws_.status[entering] = direction > 0 ? VarStatus::kAtUpper
                                             : VarStatus::kAtLower;
        ws_.value[entering] =
            direction > 0 ? ws_.upper[entering] : ws_.lower[entering];
        ++bound_flips_;
      } else {
        const std::size_t out_var =
            ws_.basis[static_cast<std::size_t>(leaving)];
        ws_.status[out_var] =
            leaving_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
        ws_.value[out_var] =
            leaving_to_upper ? ws_.upper[out_var] : ws_.lower[out_var];
        ws_.basis[static_cast<std::size_t>(leaving)] = entering;
        ws_.status[entering] = VarStatus::kBasic;
        if (!pivot_factor_update(static_cast<int>(leaving))) {
          // A pivot reached a numerically singular basis -- possible only
          // on warm trajectories; the caller retries the solve cold.
          numeric_failure_ = true;
          return LpStatus::kIterationLimit;
        }
      }

      ++iterations_;
      ++phase_iterations;
    }
  }

  const LpProblem& problem_;
  SimplexOptions opts_;
  LpWorkspace& ws_;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::size_t total_ = 0;
  const FactorRef* wf_keepalive_ = nullptr;  // snapshot ref during adoption
  int iterations_ = 0;
  long factorizations_ = 0;
  long refactorizations_ = 0;
  long eta_updates_ = 0;
  long bound_flips_ = 0;
  bool factor_inherited_ = false;
  double factor_seconds_ = 0.0;
  double update_seconds_ = 0.0;
  bool numeric_failure_ = false;
};

/// Clears the reentrancy flag even when an assertion unwinds mid-solve.
struct WorkspaceGuard {
  LpWorkspace* ws;
  ~WorkspaceGuard() { ws->in_use = false; }
};

LpSolution solve_impl(const LpProblem& problem, const SimplexOptions& options,
                      const Basis* warm, const WarmFactor* wf) {
  if (problem.num_vars() == 0) {
    LpSolution out;
    out.status = LpStatus::kOptimal;
    out.objective = problem.objective_offset();
    return out;
  }
  // Reject inconsistent fixed bounds early (the simplex would report them as
  // Phase-I infeasible anyway, but this gives a crisper answer).
  for (std::size_t j = 0; j < problem.num_vars(); ++j) {
    if (problem.col_lower()[j] > problem.col_upper()[j]) {
      LpSolution out;
      out.status = LpStatus::kInfeasible;
      return out;
    }
  }
  common::WallTimer total_timer;
  LpSolution out;
  if (options.engine == LpEngine::kDense) {
    DenseSimplex simplex(problem, options);
    out = simplex.run(warm);
    if (simplex.numeric_failure()) {
      // Only a warm-started trajectory can pivot into a singular basis; for
      // a cold solve this is a genuine invariant violation.
      HSLB_ASSERT(warm != nullptr && !warm->empty(), "singular simplex basis");
      DenseSimplex retry(problem, options);
      out = retry.run(nullptr);
      HSLB_ASSERT(!retry.numeric_failure(), "singular simplex basis");
    }
  } else {
    // The sparse engine solves out of a per-thread workspace; a reentrant
    // solve on the same thread (none exist today, but the flag is cheap
    // insurance) gets a private heap-allocated one.
    LpWorkspace& shared = thread_workspace();
    std::unique_ptr<LpWorkspace> local;
    LpWorkspace* ws = &shared;
    if (shared.in_use) {
      local = std::make_unique<LpWorkspace>();
      ws = local.get();
    }
    ws->in_use = true;
    WorkspaceGuard guard{ws};
    SparseSimplex simplex(problem, options, *ws);
    out = simplex.run(warm, wf);
    if (simplex.numeric_failure()) {
      HSLB_ASSERT(warm != nullptr && !warm->empty(), "singular simplex basis");
      SparseSimplex retry(problem, options, *ws);
      out = retry.run(nullptr, wf);
      HSLB_ASSERT(!retry.numeric_failure(), "singular simplex basis");
    }
  }
  // Wall clock not spent factoring or updating is pivot work (pricing,
  // ratio tests, dual repair).  Timing never feeds fingerprints.
  out.pivot_seconds = std::max(
      0.0, total_timer.seconds() - out.factor_seconds - out.update_seconds);
  // Counters only (no span): B&B issues thousands of tiny LP solves and a
  // span per solve would swamp the trace.
  if (obs::Registry* metrics = obs::current_metrics()) {
    metrics->counter("lp.simplex.solves").add(1.0);
    metrics->counter("lp.simplex.pivots")
        .add(static_cast<double>(out.iterations));
    metrics
        ->histogram("lp.simplex.pivots_per_solve",
                    obs::Registry::hdr_count_bounds())
        .observe(static_cast<double>(out.iterations));
    if (out.warm_used) {
      metrics->counter("lp.simplex.warm_solves").add(1.0);
      if (out.warm_phase1_skipped) {
        metrics->counter("lp.simplex.warm_phase1_skips").add(1.0);
      }
    }
    metrics->counter("lp.simplex.factorizations")
        .add(static_cast<double>(out.factorizations));
    if (out.refactorizations > 0) {
      metrics->counter("lp.simplex.refactorizations")
          .add(static_cast<double>(out.refactorizations));
    }
    if (out.eta_updates > 0) {
      metrics->counter("lp.simplex.eta_updates")
          .add(static_cast<double>(out.eta_updates));
    }
    if (out.bound_flips > 0) {
      metrics->counter("lp.simplex.bound_flips")
          .add(static_cast<double>(out.bound_flips));
    }
    if (out.bt_fallbacks > 0) {
      metrics->counter("lp.simplex.bt_fallbacks")
          .add(static_cast<double>(out.bt_fallbacks));
    }
    if (out.factor_inherited) {
      metrics->counter("lp.simplex.factor_inherits").add(1.0);
    }
  }
  return out;
}

}  // namespace

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "unknown";
}

Basis map_basis(const Basis& from, std::span<const std::uint64_t> from_keys,
                std::span<const std::uint64_t> to_keys) {
  Basis out;
  out.cols = from.cols;
  // Rows with no match in the source basis are NEW rows: their slack enters
  // the basis (the textbook basis extension).  If the new row holds at the
  // warm point the extended basis is still primal feasible and Phase I is
  // skipped; if it cuts the point off, prepare_warm's feasibility check
  // rejects the basis and the solve falls back to a cold start.  kUnset here
  // would instead leave the basis short one member and force the cold path
  // for every added cut.
  out.row_slacks.assign(to_keys.size(), BasisStatus::kBasic);
  std::unordered_map<std::uint64_t, BasisStatus> by_key;
  const std::size_t known = std::min(from_keys.size(), from.row_slacks.size());
  by_key.reserve(known);
  for (std::size_t i = 0; i < known; ++i) {
    by_key.emplace(from_keys[i], from.row_slacks[i]);  // first wins
  }
  for (std::size_t i = 0; i < to_keys.size(); ++i) {
    if (const auto it = by_key.find(to_keys[i]); it != by_key.end()) {
      out.row_slacks[i] = it->second;
    }
  }
  return out;
}

LpSolution solve(const LpProblem& problem, const SimplexOptions& options) {
  return solve_impl(problem, options, nullptr, nullptr);
}

LpSolution resolve_from_basis(const LpProblem& problem, const Basis& warm,
                              const SimplexOptions& options) {
  return solve_impl(problem, options, &warm, nullptr);
}

LpSolution resolve_from_basis(const LpProblem& problem, const Basis& warm,
                              const WarmFactor& factor,
                              const SimplexOptions& options) {
  return solve_impl(problem, options, &warm, &factor);
}

}  // namespace hslb::lp
