// Two-phase bounded-variable primal simplex.
//
// Internal standard form: one slack per row turns `rlo <= a.x <= rup` into
// `a.x - s = 0, s in [rlo, rup]`, and Phase I adds one artificial column per
// row with a +/-1 coefficient chosen so the artificial starts nonnegative.
// The basis inverse is applied through a fresh LU factorization each pivot;
// problems here are tiny (m <= ~60), so robustness wins over speed.  B and
// B^T are singular together mathematically, but the absolute pivot
// threshold can reject one orientation of a badly row-scaled basis while
// accepting the other; wherever both orientations are needed, the
// factorization of B is the authority and B^T systems fall back to
// LuFactor::solve_transposed on it.
//
// Warm starts (resolve_from_basis) reuse a captured basis when it is still
// complete and factorizable.  If the basis is also primal feasible, Phase I
// is skipped outright; if not (the branch-and-bound norm: a child's bound
// change or a new cut exists precisely to cut off the parent's optimum), a
// dual-simplex repair phase pivots the violated basics out until the basis
// is primal feasible again, and only then does Phase II run.  The repair
// phase needs no dual-feasibility precondition for correctness: any valid
// basis change sequence that ends primal feasible is a legitimate Phase-II
// start, and its iteration cap sends everything else to the cold path.
#include "hslb/lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "hslb/common/error.hpp"
#include "hslb/linalg/factor.hpp"
#include "hslb/obs/obs.hpp"

namespace hslb::lp {
namespace {

using linalg::LuFactor;
using linalg::Matrix;
using linalg::Vector;

enum class VarStatus { kBasic, kAtLower, kAtUpper, kFree, kFixed };

/// How a warm basis was absorbed into the working state.
enum class WarmMode {
  kCold,        ///< no usable warm data; all-artificial start
  kReuse,       ///< warm basis primal feasible; Phase I skipped
  kDualRepair,  ///< warm basis repaired by dual pivots; Phase I skipped
};

/// Full simplex working state over structural + slack + artificial columns.
class Simplex {
 public:
  Simplex(const LpProblem& problem, const SimplexOptions& options)
      : problem_(problem), opts_(options) {
    n_ = problem.num_vars();
    m_ = problem.num_rows();
    total_ = n_ + 2 * m_;  // structural | slack | artificial

    lower_.assign(total_, -kInf);
    upper_.assign(total_, kInf);
    for (std::size_t j = 0; j < n_; ++j) {
      lower_[j] = problem.col_lower()[j];
      upper_[j] = problem.col_upper()[j];
    }
    for (std::size_t i = 0; i < m_; ++i) {
      lower_[n_ + i] = problem.rows()[i].lower;
      upper_[n_ + i] = problem.rows()[i].upper;
      lower_[n_ + m_ + i] = 0.0;  // artificials
    }

    // Column-access helper matrix: rows of [A | -I | G] where G is the
    // artificial sign matrix, filled in by init_basis().
    art_sign_.assign(m_, 1.0);

    status_.assign(total_, VarStatus::kAtLower);
    value_.assign(total_, 0.0);
    for (std::size_t j = 0; j < total_; ++j) {
      init_nonbasic(j);
    }

    init_basis();
  }

  LpSolution run(const Basis* warm) {
    LpSolution out;

    // The Phase-II objective, also used to price the dual repair pivots.
    Vector cost(total_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
      cost[j] = problem_.cost()[j];
    }

    WarmMode mode = WarmMode::kCold;
    if (warm != nullptr && !warm->empty()) {
      mode = prepare_warm(*warm, cost);
    }
    out.warm_used = mode != WarmMode::kCold;
    out.warm_phase1_skipped = mode != WarmMode::kCold;

    if (mode == WarmMode::kCold) {
      // ---- Phase I: minimize the sum of artificial values. ----
      Vector phase1_cost(total_, 0.0);
      for (std::size_t i = 0; i < m_; ++i) {
        phase1_cost[n_ + m_ + i] = 1.0;
      }
      const LpStatus st1 = optimize(phase1_cost);
      out.phase1_iterations = iterations_;
      if (st1 == LpStatus::kIterationLimit) {
        out.status = st1;
        out.iterations = iterations_;
        return out;
      }
      double infeasibility = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        infeasibility += value_[n_ + m_ + i];
      }
      if (infeasibility >
          opts_.feasibility_tol * std::max<double>(1.0, static_cast<double>(m_))) {
        out.status = LpStatus::kInfeasible;
        out.iterations = iterations_;
        return out;
      }
    }

    // Freeze artificials at zero for Phase II.
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t a = n_ + m_ + i;
      lower_[a] = upper_[a] = 0.0;
      if (status_[a] != VarStatus::kBasic) {
        status_[a] = VarStatus::kFixed;
        value_[a] = 0.0;
      }
    }

    // ---- Phase II: the real objective. ----
    const LpStatus st2 = optimize(cost);
    out.status = st2;
    out.iterations = iterations_;
    if (st2 == LpStatus::kOptimal) {
      out.x.assign(value_.begin(), value_.begin() + static_cast<std::ptrdiff_t>(n_));
      out.objective = problem_.objective_offset();
      for (std::size_t j = 0; j < n_; ++j) {
        out.objective += problem_.cost()[j] * out.x[j];
      }
      if (opts_.capture_basis) {
        capture_basis(out.basis);
      }
    }
    return out;
  }

 private:
  /// Coefficient of column j in row i of [A | -I | G].
  double coeff(std::size_t i, std::size_t j) const {
    if (j < n_) {
      return problem_.rows()[i].coeffs[j];
    }
    if (j < n_ + m_) {
      return j - n_ == i ? -1.0 : 0.0;
    }
    return j - n_ - m_ == i ? art_sign_[i] : 0.0;
  }

  /// Place a freshly created nonbasic variable at its natural resting value.
  void init_nonbasic(std::size_t j) {
    const double lo = lower_[j];
    const double hi = upper_[j];
    if (lo == hi) {
      status_[j] = VarStatus::kFixed;
      value_[j] = lo;
    } else if (std::isfinite(lo) && std::isfinite(hi)) {
      const bool lower_closer = std::fabs(lo) <= std::fabs(hi);
      status_[j] = lower_closer ? VarStatus::kAtLower : VarStatus::kAtUpper;
      value_[j] = lower_closer ? lo : hi;
    } else if (std::isfinite(lo)) {
      status_[j] = VarStatus::kAtLower;
      value_[j] = lo;
    } else if (std::isfinite(hi)) {
      status_[j] = VarStatus::kAtUpper;
      value_[j] = hi;
    } else {
      status_[j] = VarStatus::kFree;
      value_[j] = 0.0;
    }
  }

  /// Choose artificial signs so every artificial starts >= 0, and make the
  /// artificials the initial basis.
  void init_basis() {
    basis_.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      // Row residual with artificial at zero: sum over structural + slack.
      double v = 0.0;
      for (std::size_t j = 0; j < n_; ++j) {
        v += problem_.rows()[i].coeffs[j] * value_[j];
      }
      v -= value_[n_ + i];  // slack column is -1
      // Need v + g * t = 0 with t >= 0  =>  g = -sign(v), t = |v|.
      art_sign_[i] = v > 0.0 ? -1.0 : 1.0;
      const std::size_t a = n_ + m_ + i;
      basis_[i] = a;
      status_[a] = VarStatus::kBasic;
      value_[a] = std::fabs(v);
    }
  }

  /// Absorb a warm basis.  The warm basic set must be complete and
  /// factorizable; if it is also primal feasible, Phase I is skipped
  /// outright (kReuse), and if not, a dual-simplex repair phase pivots the
  /// violated basics out (kDualRepair) -- the branch-and-bound norm, since
  /// a child's bound change or a fresh cut exists precisely to cut off the
  /// parent's optimum, at which the captured basis rests.  On any failure
  /// the working state is reset to the cold all-artificial start.  (An
  /// earlier revision fell back to a "crash" start that seeded Phase I from
  /// the warm nonbasic placements; measured on the branch-and-bound
  /// workload it *increased* Phase I pivots by ~50% -- after branching the
  /// parent's resting point is exactly the vertex the child excludes -- so
  /// the fallback is now a clean cold start.)
  WarmMode prepare_warm(const Basis& warm, const Vector& phase2_cost) {
    if (warm.cols.size() != n_ || warm.row_slacks.size() != m_) {
      return WarmMode::kCold;
    }
    std::vector<std::size_t> candidates;
    candidates.reserve(m_);
    for (std::size_t j = 0; j < n_ + m_; ++j) {
      const BasisStatus s =
          j < n_ ? warm.cols[j] : warm.row_slacks[j - n_];
      switch (s) {
        case BasisStatus::kBasic:
          candidates.push_back(j);
          break;
        case BasisStatus::kAtLower:
          if (std::isfinite(lower_[j]) && lower_[j] != upper_[j]) {
            status_[j] = VarStatus::kAtLower;
            value_[j] = lower_[j];
          }
          break;
        case BasisStatus::kAtUpper:
          if (std::isfinite(upper_[j]) && lower_[j] != upper_[j]) {
            status_[j] = VarStatus::kAtUpper;
            value_[j] = upper_[j];
          }
          break;
        case BasisStatus::kFree:
          if (!std::isfinite(lower_[j]) && !std::isfinite(upper_[j])) {
            status_[j] = VarStatus::kFree;
            value_[j] = 0.0;
          }
          break;
        case BasisStatus::kFixed:
        case BasisStatus::kUnset:
          break;  // keep the constructor's resting placement
      }
    }

    if (candidates.size() == m_) {
      basis_ = candidates;
      for (const std::size_t c : candidates) {
        status_[c] = VarStatus::kBasic;
      }
      // Artificials out of the basis, resting at zero.
      for (std::size_t i = 0; i < m_; ++i) {
        const std::size_t a = n_ + m_ + i;
        status_[a] = VarStatus::kAtLower;
        value_[a] = 0.0;
      }
      if (const auto lu = factor_basis()) {
        // Require both orientations to factor before accepting the basis:
        // a warm basis that only factors as B is too ill-conditioned to
        // price reliably (see dual_repair), so it goes to the cold start.
        Matrix bt(m_, m_);
        for (std::size_t i = 0; i < m_; ++i) {
          for (std::size_t k = 0; k < m_; ++k) {
            bt(i, k) = coeff(k, basis_[i]);
          }
        }
        if (LuFactor::compute(bt).has_value()) {
          refresh_basics(*lu);
          if (basics_feasible()) {
            return WarmMode::kReuse;
          }
          if (dual_repair(phase2_cost)) {
            return WarmMode::kDualRepair;
          }
        }
      }
    }
    // No reuse: rebuild the cold start from scratch (the scan above and a
    // failed repair may have moved placements and the basis around).
    for (std::size_t j = 0; j < total_; ++j) {
      init_nonbasic(j);
    }
    init_basis();
    return WarmMode::kCold;
  }

  bool basics_feasible() const {
    // Absolute tolerance: Phase II never pulls a basic back inside its
    // bound (the ratio test only blocks further excursions), so any slack
    // granted here survives to the reported vertex.  A relative tolerance
    // was measured to let values ~1e4 sit ~1e-3 outside their bounds,
    // yielding super-optimal LP bounds that stall branch-and-bound pruning.
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t bj = basis_[i];
      const double v = value_[bj];
      if (v < lower_[bj] - opts_.feasibility_tol ||
          v > upper_[bj] + opts_.feasibility_tol) {
        return false;
      }
    }
    return true;
  }

  /// Dual-simplex repair for the warm path: starting from a complete,
  /// factorizable basis whose basic values violate their bounds, pivot the
  /// most-violated basic out to its nearest bound and bring in the nonbasic
  /// column winning the dual ratio test (|reduced cost| / |pivot|, priced
  /// against the Phase-II objective), until every basic value is within
  /// bounds.  Correctness does not rest on the pricing: any valid basis
  /// change sequence that ends primal feasible is a legitimate Phase-II
  /// start, so a stall, a singular basis, or the iteration cap simply
  /// reports failure and the caller falls back to the cold start.  All
  /// choices tie-break on the smallest index, so the repair is
  /// deterministic.
  bool dual_repair(const Vector& cost) {
    // A repair that has not restored feasibility within ~m pivots is
    // churning on degeneracy; the cold start is cheaper than letting it
    // run (measured: pathological repairs averaged ~200 pivots under a
    // 20m cap where a cold solve takes ~40).
    const int cap = std::min(opts_.max_iterations - iterations_,
                             static_cast<int>(m_) + 10);
    // Stricter than the primal ratio test's 1e-9: a tiny repair pivot
    // leaves a near-singular basis that Phase II inherits.  Refusing the
    // pivot bails to the cold start instead.
    const double pivot_tol = 1e-7;
    for (int it = 0;; ++it) {
      const auto lu = factor_basis();
      if (!lu) {
        return false;
      }
      refresh_basics(*lu);

      // Leaving row: the most-violated basic (smallest row on ties).
      std::ptrdiff_t r = -1;
      bool above = false;
      double worst = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        const std::size_t bj = basis_[i];
        const double v = value_[bj];
        // Absolute tolerance, matching basics_feasible(): the repair must
        // hand Phase II a vertex whose residual violations are too small
        // to show up in the objective.
        if (v < lower_[bj] - opts_.feasibility_tol && lower_[bj] - v > worst) {
          worst = lower_[bj] - v;
          r = static_cast<std::ptrdiff_t>(i);
          above = false;
        } else if (v > upper_[bj] + opts_.feasibility_tol &&
                   v - upper_[bj] > worst) {
          worst = v - upper_[bj];
          r = static_cast<std::ptrdiff_t>(i);
          above = true;
        }
      }
      // Row r of B^{-1}A and the duals, via one factorization of B^T.
      // Factored before the feasibility exit so success also certifies a
      // well-conditioned basis in both orientations: repairs that end on a
      // basis B^T refuses to factor were measured to leave Phase II at
      // slightly sub-optimal vertices, whose too-low bounds then stall
      // branch-and-bound pruning.  Bailing to the cold start is cheaper.
      Matrix bt(m_, m_);
      for (std::size_t i = 0; i < m_; ++i) {
        for (std::size_t k = 0; k < m_; ++k) {
          bt(i, k) = coeff(k, basis_[i]);
        }
      }
      const auto lut = LuFactor::compute(bt);
      if (!lut) {
        return false;
      }
      if (r < 0) {
        return true;  // primal feasible: ready for Phase II
      }
      if (it >= cap) {
        return false;
      }
      Vector er(m_, 0.0);
      er[static_cast<std::size_t>(r)] = 1.0;
      const Vector w = lut->solve(er);
      Vector cb(m_);
      for (std::size_t i = 0; i < m_; ++i) {
        cb[i] = cost[basis_[i]];
      }
      const Vector y = lut->solve(cb);

      // Entering column: the leaving basic must move toward its violated
      // bound, which fixes the sign of the pivot element each nonbasic may
      // contribute.  Artificials never re-enter.
      std::size_t entering = total_;
      double best_ratio = kInf;
      double best_alpha = 0.0;
      for (std::size_t j = 0; j < n_ + m_; ++j) {
        const VarStatus st = status_[j];
        if (st == VarStatus::kBasic || st == VarStatus::kFixed) {
          continue;
        }
        double alpha = 0.0;
        double d = cost[j];
        for (std::size_t i = 0; i < m_; ++i) {
          const double a = coeff(i, j);
          if (a != 0.0) {
            alpha += w[i] * a;
            d -= y[i] * a;
          }
        }
        if (std::fabs(alpha) <= pivot_tol) {
          continue;
        }
        // x_Br moves by -alpha * dj_step.  To DECREASE x_Br (above its
        // upper bound) an at-lower column needs alpha > 0 (it can only
        // increase) and an at-upper column alpha < 0; mirrored when x_Br
        // must increase.  Free columns may move either way.
        bool eligible = st == VarStatus::kFree;
        if (!eligible && st == VarStatus::kAtLower) {
          eligible = above ? alpha > 0.0 : alpha < 0.0;
        }
        if (!eligible && st == VarStatus::kAtUpper) {
          eligible = above ? alpha < 0.0 : alpha > 0.0;
        }
        if (!eligible) {
          continue;
        }
        const double ratio = std::fabs(d) / std::fabs(alpha);
        // Stability tie-break: among (near-)equal ratios take the largest
        // pivot element.  Strict >, so exact ties keep the smallest index
        // and the repair stays deterministic.
        if (ratio < best_ratio - 1e-12 ||
            (ratio < best_ratio + 1e-12 && std::fabs(alpha) > best_alpha)) {
          best_ratio = std::min(best_ratio, ratio);
          best_alpha = std::fabs(alpha);
          entering = j;
        }
      }
      if (entering == total_) {
        return false;  // no eligible pivot: likely primal infeasible
      }

      const std::size_t out_var = basis_[static_cast<std::size_t>(r)];
      status_[out_var] = above ? VarStatus::kAtUpper : VarStatus::kAtLower;
      value_[out_var] = above ? upper_[out_var] : lower_[out_var];
      basis_[static_cast<std::size_t>(r)] = entering;
      status_[entering] = VarStatus::kBasic;
      ++iterations_;
    }
  }

  /// Read the final statuses into a reusable Basis.  A basis that still
  /// contains an artificial (degenerate Phase-I leftover) is not reusable
  /// and is reported as empty.
  void capture_basis(Basis& out) const {
    for (std::size_t i = 0; i < m_; ++i) {
      if (status_[n_ + m_ + i] == VarStatus::kBasic) {
        return;
      }
    }
    const auto to_basis = [](VarStatus s) {
      switch (s) {
        case VarStatus::kBasic:
          return BasisStatus::kBasic;
        case VarStatus::kAtLower:
          return BasisStatus::kAtLower;
        case VarStatus::kAtUpper:
          return BasisStatus::kAtUpper;
        case VarStatus::kFree:
          return BasisStatus::kFree;
        case VarStatus::kFixed:
          return BasisStatus::kFixed;
      }
      return BasisStatus::kUnset;
    };
    out.cols.resize(n_);
    for (std::size_t j = 0; j < n_; ++j) {
      out.cols[j] = to_basis(status_[j]);
    }
    out.row_slacks.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      out.row_slacks[i] = to_basis(status_[n_ + i]);
    }
  }

  /// Recompute basic variable values from the nonbasic resting values:
  /// solve B x_B = -N x_N  (the rhs of every row is zero).
  bool refresh_basics(const LuFactor& lu) {
    Vector rhs(m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      double v = 0.0;
      for (std::size_t j = 0; j < total_; ++j) {
        if (status_[j] != VarStatus::kBasic && value_[j] != 0.0) {
          v += coeff(i, j) * value_[j];
        }
      }
      rhs[i] = -v;
    }
    const Vector xb = lu.solve(rhs);
    for (std::size_t i = 0; i < m_; ++i) {
      value_[basis_[i]] = xb[i];
    }
    return true;
  }

  std::optional<LuFactor> factor_basis() const {
    Matrix b(m_, m_);
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t k = 0; k < m_; ++k) {
        b(i, k) = coeff(i, basis_[k]);
      }
    }
    return LuFactor::compute(b);
  }

  LpStatus optimize(const Vector& cost) {
    const int bland_threshold =
        5 * static_cast<int>(total_ + m_) + 200;
    int phase_iterations = 0;

    for (;;) {
      if (iterations_ >= opts_.max_iterations) {
        return LpStatus::kIterationLimit;
      }
      const bool bland = phase_iterations > bland_threshold;

      auto lu = factor_basis();
      if (!lu.has_value()) {
        // A cold start never produces this (asserted by the caller); a
        // warm-started trajectory can pivot into a numerically singular
        // basis, and the caller then retries the whole solve cold.
        numeric_failure_ = true;
        return LpStatus::kIterationLimit;
      }
      refresh_basics(*lu);

      // Pricing: y = B^{-T} c_B, then reduced costs on nonbasics.  B^T is
      // factored directly when it can be, but an absolute pivot threshold
      // can declare B^T singular even though B factored fine: a badly
      // scaled cut row (tiny coefficients) is a tiny *column* of B^T.  The
      // two orientations are singular together mathematically, so in that
      // case the pricing system is solved through the factorization of B
      // instead of failing the solve.
      Vector cb(m_);
      for (std::size_t i = 0; i < m_; ++i) {
        cb[i] = cost[basis_[i]];
      }
      Matrix bt(m_, m_);
      for (std::size_t i = 0; i < m_; ++i) {
        for (std::size_t k = 0; k < m_; ++k) {
          bt(i, k) = coeff(k, basis_[i]);
        }
      }
      const auto lut = LuFactor::compute(bt);
      const Vector y = lut.has_value() ? lut->solve(cb)
                                       : lu->solve_transposed(cb);

      std::size_t entering = total_;
      int direction = 0;  // +1 increase, -1 decrease
      double best_score = opts_.optimality_tol;
      for (std::size_t j = 0; j < total_; ++j) {
        const VarStatus st = status_[j];
        if (st == VarStatus::kBasic || st == VarStatus::kFixed) {
          continue;
        }
        double d = cost[j];
        for (std::size_t i = 0; i < m_; ++i) {
          const double a = coeff(i, j);
          if (a != 0.0) {
            d -= y[i] * a;
          }
        }
        int dir = 0;
        if ((st == VarStatus::kAtLower || st == VarStatus::kFree) &&
            d < -opts_.optimality_tol) {
          dir = +1;
        } else if ((st == VarStatus::kAtUpper || st == VarStatus::kFree) &&
                   d > opts_.optimality_tol) {
          dir = -1;
        }
        if (dir == 0) {
          continue;
        }
        if (bland) {
          entering = j;
          direction = dir;
          break;  // smallest eligible index
        }
        if (std::fabs(d) > best_score) {
          best_score = std::fabs(d);
          entering = j;
          direction = dir;
        }
      }
      if (entering == total_) {
        return LpStatus::kOptimal;
      }

      // Direction through the basics: w = B^{-1} A_e.
      Vector ae(m_);
      for (std::size_t i = 0; i < m_; ++i) {
        ae[i] = coeff(i, entering);
      }
      const Vector w = lu->solve(ae);

      // Ratio test.  x_B(t) = x_B - t * direction * w;  entering moves by
      // +/- t from its current bound, capped by its own bound span.
      double t_max = kInf;
      if (std::isfinite(lower_[entering]) && std::isfinite(upper_[entering])) {
        t_max = upper_[entering] - lower_[entering];
      }
      std::ptrdiff_t leaving = -1;  // -1 => bound flip
      bool leaving_to_upper = false;
      double leaving_pivot_mag = 0.0;
      const double pivot_tol = 1e-9;
      for (std::size_t i = 0; i < m_; ++i) {
        const double rate = direction * w[i];  // basic i decreases at `rate`
        const std::size_t bj = basis_[i];
        double limit = kInf;
        bool to_upper = false;
        if (rate > pivot_tol) {
          if (std::isfinite(lower_[bj])) {
            limit = (value_[bj] - lower_[bj]) / rate;
          }
        } else if (rate < -pivot_tol) {
          if (std::isfinite(upper_[bj])) {
            limit = (value_[bj] - upper_[bj]) / rate;
            to_upper = true;
          }
        } else {
          continue;
        }
        limit = std::max(limit, 0.0);  // degeneracy snap
        const bool better =
            limit < t_max - 1e-12 ||
            (limit < t_max + 1e-12 && std::fabs(w[i]) > leaving_pivot_mag);
        if (better && limit <= t_max + 1e-12) {
          t_max = std::min(t_max, limit);
          leaving = static_cast<std::ptrdiff_t>(i);
          leaving_to_upper = to_upper;
          leaving_pivot_mag = std::fabs(w[i]);
        }
      }

      if (!std::isfinite(t_max)) {
        return LpStatus::kUnbounded;
      }

      // Apply the step.
      for (std::size_t i = 0; i < m_; ++i) {
        value_[basis_[i]] -= t_max * direction * w[i];
      }
      value_[entering] += direction * t_max;

      if (leaving < 0) {
        // Bound flip: entering traverses its whole span, basis unchanged.
        status_[entering] = direction > 0 ? VarStatus::kAtUpper
                                          : VarStatus::kAtLower;
        value_[entering] = direction > 0 ? upper_[entering] : lower_[entering];
      } else {
        const std::size_t out_var = basis_[static_cast<std::size_t>(leaving)];
        status_[out_var] =
            leaving_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
        value_[out_var] = leaving_to_upper ? upper_[out_var] : lower_[out_var];
        basis_[static_cast<std::size_t>(leaving)] = entering;
        status_[entering] = VarStatus::kBasic;
      }

      ++iterations_;
      ++phase_iterations;
    }
  }

 public:
  /// True when a pivot reached a numerically singular basis.  Possible only
  /// on warm-started trajectories; the caller retries the solve cold.
  bool numeric_failure() const { return numeric_failure_; }

 private:
  const LpProblem& problem_;
  SimplexOptions opts_;
  std::size_t n_ = 0;      // structural columns
  std::size_t m_ = 0;      // rows (== slack count == artificial count)
  std::size_t total_ = 0;  // n + 2m
  Vector lower_, upper_, value_;
  Vector art_sign_;
  std::vector<VarStatus> status_;
  std::vector<std::size_t> basis_;
  int iterations_ = 0;
  bool numeric_failure_ = false;
};

LpSolution solve_impl(const LpProblem& problem, const SimplexOptions& options,
                      const Basis* warm) {
  if (problem.num_vars() == 0) {
    LpSolution out;
    out.status = LpStatus::kOptimal;
    out.objective = problem.objective_offset();
    return out;
  }
  // Reject inconsistent fixed bounds early (the simplex would report them as
  // Phase-I infeasible anyway, but this gives a crisper answer).
  for (std::size_t j = 0; j < problem.num_vars(); ++j) {
    if (problem.col_lower()[j] > problem.col_upper()[j]) {
      LpSolution out;
      out.status = LpStatus::kInfeasible;
      return out;
    }
  }
  Simplex simplex(problem, options);
  LpSolution out = simplex.run(warm);
  if (simplex.numeric_failure()) {
    // Only a warm-started trajectory can pivot into a singular basis; for a
    // cold solve this is a genuine invariant violation.
    HSLB_ASSERT(warm != nullptr && !warm->empty(), "singular simplex basis");
    Simplex retry(problem, options);
    out = retry.run(nullptr);
    HSLB_ASSERT(!retry.numeric_failure(), "singular simplex basis");
  }
  // Counters only (no span): B&B issues thousands of tiny LP solves and a
  // span per solve would swamp the trace.
  if (obs::Registry* metrics = obs::current_metrics()) {
    metrics->counter("lp.simplex.solves").add(1.0);
    metrics->counter("lp.simplex.pivots")
        .add(static_cast<double>(out.iterations));
    metrics
        ->histogram("lp.simplex.pivots_per_solve",
                    obs::Registry::hdr_count_bounds())
        .observe(static_cast<double>(out.iterations));
    if (out.warm_used) {
      metrics->counter("lp.simplex.warm_solves").add(1.0);
      if (out.warm_phase1_skipped) {
        metrics->counter("lp.simplex.warm_phase1_skips").add(1.0);
      }
    }
  }
  return out;
}

}  // namespace

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "unknown";
}

Basis map_basis(const Basis& from, std::span<const std::uint64_t> from_keys,
                std::span<const std::uint64_t> to_keys) {
  Basis out;
  out.cols = from.cols;
  // Rows with no match in the source basis are NEW rows: their slack enters
  // the basis (the textbook basis extension).  If the new row holds at the
  // warm point the extended basis is still primal feasible and Phase I is
  // skipped; if it cuts the point off, prepare_warm's feasibility check
  // rejects the basis and the solve falls back to a cold start.  kUnset here
  // would instead leave the basis short one member and force the cold path
  // for every added cut.
  out.row_slacks.assign(to_keys.size(), BasisStatus::kBasic);
  std::unordered_map<std::uint64_t, BasisStatus> by_key;
  const std::size_t known = std::min(from_keys.size(), from.row_slacks.size());
  by_key.reserve(known);
  for (std::size_t i = 0; i < known; ++i) {
    by_key.emplace(from_keys[i], from.row_slacks[i]);  // first wins
  }
  for (std::size_t i = 0; i < to_keys.size(); ++i) {
    if (const auto it = by_key.find(to_keys[i]); it != by_key.end()) {
      out.row_slacks[i] = it->second;
    }
  }
  return out;
}

LpSolution solve(const LpProblem& problem, const SimplexOptions& options) {
  return solve_impl(problem, options, nullptr);
}

LpSolution resolve_from_basis(const LpProblem& problem, const Basis& warm,
                              const SimplexOptions& options) {
  return solve_impl(problem, options, &warm);
}

}  // namespace hslb::lp
