// Two-phase bounded-variable primal simplex.
//
// Internal standard form: one slack per row turns `rlo <= a.x <= rup` into
// `a.x - s = 0, s in [rlo, rup]`, and Phase I adds one artificial column per
// row with a +/-1 coefficient chosen so the artificial starts nonnegative.
// The basis inverse is applied through a fresh LU factorization each pivot;
// problems here are tiny (m <= ~60), so robustness wins over speed.
#include "hslb/lp/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"
#include "hslb/linalg/factor.hpp"
#include "hslb/obs/obs.hpp"

namespace hslb::lp {
namespace {

using linalg::LuFactor;
using linalg::Matrix;
using linalg::Vector;

enum class VarStatus { kBasic, kAtLower, kAtUpper, kFree, kFixed };

/// Full simplex working state over structural + slack + artificial columns.
class Simplex {
 public:
  Simplex(const LpProblem& problem, const SimplexOptions& options)
      : problem_(problem), opts_(options) {
    n_ = problem.num_vars();
    m_ = problem.num_rows();
    total_ = n_ + 2 * m_;  // structural | slack | artificial

    lower_.assign(total_, -kInf);
    upper_.assign(total_, kInf);
    for (std::size_t j = 0; j < n_; ++j) {
      lower_[j] = problem.col_lower()[j];
      upper_[j] = problem.col_upper()[j];
    }
    for (std::size_t i = 0; i < m_; ++i) {
      lower_[n_ + i] = problem.rows()[i].lower;
      upper_[n_ + i] = problem.rows()[i].upper;
      lower_[n_ + m_ + i] = 0.0;  // artificials
    }

    // Column-access helper matrix: rows of [A | -I | G] where G is the
    // artificial sign matrix, filled in by init_basis().
    art_sign_.assign(m_, 1.0);

    status_.assign(total_, VarStatus::kAtLower);
    value_.assign(total_, 0.0);
    for (std::size_t j = 0; j < total_; ++j) {
      init_nonbasic(j);
    }

    init_basis();
  }

  LpSolution run() {
    LpSolution out;

    // ---- Phase I: minimize the sum of artificial values. ----
    Vector phase1_cost(total_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      phase1_cost[n_ + m_ + i] = 1.0;
    }
    const LpStatus st1 = optimize(phase1_cost);
    if (st1 == LpStatus::kIterationLimit) {
      out.status = st1;
      out.iterations = iterations_;
      return out;
    }
    double infeasibility = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      infeasibility += value_[n_ + m_ + i];
    }
    if (infeasibility > opts_.feasibility_tol * std::max<double>(1.0, static_cast<double>(m_))) {
      out.status = LpStatus::kInfeasible;
      out.iterations = iterations_;
      return out;
    }

    // Freeze artificials at zero for Phase II.
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t a = n_ + m_ + i;
      lower_[a] = upper_[a] = 0.0;
      if (status_[a] != VarStatus::kBasic) {
        status_[a] = VarStatus::kFixed;
        value_[a] = 0.0;
      }
    }

    // ---- Phase II: the real objective. ----
    Vector cost(total_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
      cost[j] = problem_.cost()[j];
    }
    const LpStatus st2 = optimize(cost);
    out.status = st2;
    out.iterations = iterations_;
    if (st2 == LpStatus::kOptimal) {
      out.x.assign(value_.begin(), value_.begin() + static_cast<std::ptrdiff_t>(n_));
      out.objective = problem_.objective_offset();
      for (std::size_t j = 0; j < n_; ++j) {
        out.objective += problem_.cost()[j] * out.x[j];
      }
    }
    return out;
  }

 private:
  /// Coefficient of column j in row i of [A | -I | G].
  double coeff(std::size_t i, std::size_t j) const {
    if (j < n_) {
      return problem_.rows()[i].coeffs[j];
    }
    if (j < n_ + m_) {
      return j - n_ == i ? -1.0 : 0.0;
    }
    return j - n_ - m_ == i ? art_sign_[i] : 0.0;
  }

  /// Place a freshly created nonbasic variable at its natural resting value.
  void init_nonbasic(std::size_t j) {
    const double lo = lower_[j];
    const double hi = upper_[j];
    if (lo == hi) {
      status_[j] = VarStatus::kFixed;
      value_[j] = lo;
    } else if (std::isfinite(lo) && std::isfinite(hi)) {
      const bool lower_closer = std::fabs(lo) <= std::fabs(hi);
      status_[j] = lower_closer ? VarStatus::kAtLower : VarStatus::kAtUpper;
      value_[j] = lower_closer ? lo : hi;
    } else if (std::isfinite(lo)) {
      status_[j] = VarStatus::kAtLower;
      value_[j] = lo;
    } else if (std::isfinite(hi)) {
      status_[j] = VarStatus::kAtUpper;
      value_[j] = hi;
    } else {
      status_[j] = VarStatus::kFree;
      value_[j] = 0.0;
    }
  }

  /// Choose artificial signs so every artificial starts >= 0, and make the
  /// artificials the initial basis.
  void init_basis() {
    basis_.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      // Row residual with artificial at zero: sum over structural + slack.
      double v = 0.0;
      for (std::size_t j = 0; j < n_; ++j) {
        v += problem_.rows()[i].coeffs[j] * value_[j];
      }
      v -= value_[n_ + i];  // slack column is -1
      // Need v + g * t = 0 with t >= 0  =>  g = -sign(v), t = |v|.
      art_sign_[i] = v > 0.0 ? -1.0 : 1.0;
      const std::size_t a = n_ + m_ + i;
      basis_[i] = a;
      status_[a] = VarStatus::kBasic;
      value_[a] = std::fabs(v);
    }
  }

  /// Recompute basic variable values from the nonbasic resting values:
  /// solve B x_B = -N x_N  (the rhs of every row is zero).
  bool refresh_basics(const LuFactor& lu) {
    Vector rhs(m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      double v = 0.0;
      for (std::size_t j = 0; j < total_; ++j) {
        if (status_[j] != VarStatus::kBasic && value_[j] != 0.0) {
          v += coeff(i, j) * value_[j];
        }
      }
      rhs[i] = -v;
    }
    const Vector xb = lu.solve(rhs);
    for (std::size_t i = 0; i < m_; ++i) {
      value_[basis_[i]] = xb[i];
    }
    return true;
  }

  std::optional<LuFactor> factor_basis() const {
    Matrix b(m_, m_);
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t k = 0; k < m_; ++k) {
        b(i, k) = coeff(i, basis_[k]);
      }
    }
    return LuFactor::compute(b);
  }

  LpStatus optimize(const Vector& cost) {
    const int bland_threshold =
        5 * static_cast<int>(total_ + m_) + 200;
    int phase_iterations = 0;

    for (;;) {
      if (iterations_ >= opts_.max_iterations) {
        return LpStatus::kIterationLimit;
      }
      const bool bland = phase_iterations > bland_threshold;

      auto lu = factor_basis();
      HSLB_ASSERT(lu.has_value(), "singular simplex basis");
      refresh_basics(*lu);

      // Pricing: y = B^{-T} c_B, then reduced costs on nonbasics.
      Vector cb(m_);
      for (std::size_t i = 0; i < m_; ++i) {
        cb[i] = cost[basis_[i]];
      }
      // Solve B^T y = c_B by factoring B^T (m is tiny; clarity first).
      Matrix bt(m_, m_);
      for (std::size_t i = 0; i < m_; ++i) {
        for (std::size_t k = 0; k < m_; ++k) {
          bt(i, k) = coeff(k, basis_[i]);
        }
      }
      auto lut = LuFactor::compute(bt);
      HSLB_ASSERT(lut.has_value(), "singular transposed simplex basis");
      const Vector y = lut->solve(cb);

      std::size_t entering = total_;
      int direction = 0;  // +1 increase, -1 decrease
      double best_score = opts_.optimality_tol;
      for (std::size_t j = 0; j < total_; ++j) {
        const VarStatus st = status_[j];
        if (st == VarStatus::kBasic || st == VarStatus::kFixed) {
          continue;
        }
        double d = cost[j];
        for (std::size_t i = 0; i < m_; ++i) {
          const double a = coeff(i, j);
          if (a != 0.0) {
            d -= y[i] * a;
          }
        }
        int dir = 0;
        if ((st == VarStatus::kAtLower || st == VarStatus::kFree) &&
            d < -opts_.optimality_tol) {
          dir = +1;
        } else if ((st == VarStatus::kAtUpper || st == VarStatus::kFree) &&
                   d > opts_.optimality_tol) {
          dir = -1;
        }
        if (dir == 0) {
          continue;
        }
        if (bland) {
          entering = j;
          direction = dir;
          break;  // smallest eligible index
        }
        if (std::fabs(d) > best_score) {
          best_score = std::fabs(d);
          entering = j;
          direction = dir;
        }
      }
      if (entering == total_) {
        return LpStatus::kOptimal;
      }

      // Direction through the basics: w = B^{-1} A_e.
      Vector ae(m_);
      for (std::size_t i = 0; i < m_; ++i) {
        ae[i] = coeff(i, entering);
      }
      const Vector w = lu->solve(ae);

      // Ratio test.  x_B(t) = x_B - t * direction * w;  entering moves by
      // +/- t from its current bound, capped by its own bound span.
      double t_max = kInf;
      if (std::isfinite(lower_[entering]) && std::isfinite(upper_[entering])) {
        t_max = upper_[entering] - lower_[entering];
      }
      std::ptrdiff_t leaving = -1;  // -1 => bound flip
      bool leaving_to_upper = false;
      double leaving_pivot_mag = 0.0;
      const double pivot_tol = 1e-9;
      for (std::size_t i = 0; i < m_; ++i) {
        const double rate = direction * w[i];  // basic i decreases at `rate`
        const std::size_t bj = basis_[i];
        double limit = kInf;
        bool to_upper = false;
        if (rate > pivot_tol) {
          if (std::isfinite(lower_[bj])) {
            limit = (value_[bj] - lower_[bj]) / rate;
          }
        } else if (rate < -pivot_tol) {
          if (std::isfinite(upper_[bj])) {
            limit = (value_[bj] - upper_[bj]) / rate;
            to_upper = true;
          }
        } else {
          continue;
        }
        limit = std::max(limit, 0.0);  // degeneracy snap
        const bool better =
            limit < t_max - 1e-12 ||
            (limit < t_max + 1e-12 && std::fabs(w[i]) > leaving_pivot_mag);
        if (better && limit <= t_max + 1e-12) {
          t_max = std::min(t_max, limit);
          leaving = static_cast<std::ptrdiff_t>(i);
          leaving_to_upper = to_upper;
          leaving_pivot_mag = std::fabs(w[i]);
        }
      }

      if (!std::isfinite(t_max)) {
        return LpStatus::kUnbounded;
      }

      // Apply the step.
      for (std::size_t i = 0; i < m_; ++i) {
        value_[basis_[i]] -= t_max * direction * w[i];
      }
      value_[entering] += direction * t_max;

      if (leaving < 0) {
        // Bound flip: entering traverses its whole span, basis unchanged.
        status_[entering] = direction > 0 ? VarStatus::kAtUpper
                                          : VarStatus::kAtLower;
        value_[entering] = direction > 0 ? upper_[entering] : lower_[entering];
      } else {
        const std::size_t out_var = basis_[static_cast<std::size_t>(leaving)];
        status_[out_var] =
            leaving_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
        value_[out_var] = leaving_to_upper ? upper_[out_var] : lower_[out_var];
        basis_[static_cast<std::size_t>(leaving)] = entering;
        status_[entering] = VarStatus::kBasic;
      }

      ++iterations_;
      ++phase_iterations;
    }
  }

  const LpProblem& problem_;
  SimplexOptions opts_;
  std::size_t n_ = 0;      // structural columns
  std::size_t m_ = 0;      // rows (== slack count == artificial count)
  std::size_t total_ = 0;  // n + 2m
  Vector lower_, upper_, value_;
  Vector art_sign_;
  std::vector<VarStatus> status_;
  std::vector<std::size_t> basis_;
  int iterations_ = 0;
};

}  // namespace

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "unknown";
}

LpSolution solve(const LpProblem& problem, const SimplexOptions& options) {
  if (problem.num_vars() == 0) {
    LpSolution out;
    out.status = LpStatus::kOptimal;
    out.objective = problem.objective_offset();
    return out;
  }
  // Reject inconsistent fixed bounds early (the simplex would report them as
  // Phase-I infeasible anyway, but this gives a crisper answer).
  for (std::size_t j = 0; j < problem.num_vars(); ++j) {
    if (problem.col_lower()[j] > problem.col_upper()[j]) {
      LpSolution out;
      out.status = LpStatus::kInfeasible;
      return out;
    }
  }
  Simplex simplex(problem, options);
  LpSolution out = simplex.run();
  // Counters only (no span): B&B issues thousands of tiny LP solves and a
  // span per solve would swamp the trace.
  if (obs::Registry* metrics = obs::current_metrics()) {
    metrics->counter("lp.simplex.solves").add(1.0);
    metrics->counter("lp.simplex.pivots")
        .add(static_cast<double>(out.iterations));
  }
  return out;
}

}  // namespace hslb::lp
