#include "hslb/lp/problem.hpp"

#include "hslb/common/error.hpp"

namespace hslb::lp {

std::size_t LpProblem::add_variable(double lower, double upper, double cost,
                                    std::string name) {
  HSLB_REQUIRE(lower <= upper, "variable bounds crossed");
  HSLB_REQUIRE(rows_.empty(), "add all variables before adding rows");
  cost_.push_back(cost);
  col_lower_.push_back(lower);
  col_upper_.push_back(upper);
  names_.push_back(name.empty() ? "x" + std::to_string(cost_.size() - 1)
                                : std::move(name));
  return cost_.size() - 1;
}

std::size_t LpProblem::add_row(linalg::Vector coeffs, double lower,
                               double upper, std::string name) {
  HSLB_REQUIRE(coeffs.size() == num_vars(),
               "row coefficient count must equal variable count");
  HSLB_REQUIRE(lower <= upper, "row bounds crossed");
  rows_.push_back(Row{std::move(coeffs), lower, upper, std::move(name)});
  return rows_.size() - 1;
}

void LpProblem::set_cost(std::size_t var, double cost) {
  HSLB_REQUIRE(var < num_vars(), "set_cost: variable index out of range");
  cost_[var] = cost;
}

void LpProblem::set_col_bounds(std::size_t var, double lower, double upper) {
  HSLB_REQUIRE(var < num_vars(), "set_col_bounds: index out of range");
  HSLB_REQUIRE(lower <= upper, "set_col_bounds: bounds crossed");
  col_lower_[var] = lower;
  col_upper_[var] = upper;
}

}  // namespace hslb::lp
