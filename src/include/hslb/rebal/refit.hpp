// Incremental re-fitting for the rebalancing loop.
//
// Between rebalances the allocation is fixed, so the per-component node
// counts never vary and a full 4-parameter Table II re-fit is unidentifiable
// from in-loop data.  What *is* identifiable -- and what the drift model
// produces -- is a multiplicative scale on each component's base curve.  The
// ScaleTracker estimates that scale online:
//   * recursive least squares with a forgetting factor follows slow drift,
//   * a CUSUM over standardized residuals flags regime shifts, and
//   * on a flag the scale is re-estimated from a short window of recent
//     ratios with a Huber M-estimate (the PR 2 bounded-influence loss, so a
//     co-occurring noise spike cannot poison the new level) and the RLS
//     covariance is reset for fast re-convergence.
// The generic d-dimensional RLS is exposed for callers that do have varying
// regressors (and for the unit tests' RLS-vs-batch-LS identity).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hslb::rebal {

/// Recursive least squares with exponential forgetting factor lambda:
/// minimizes sum_i lambda^(t-i) (y_i - x_i . theta)^2 incrementally.
/// lambda == 1 reproduces batch least squares exactly (given a large
/// initial covariance); lambda < 1 tracks drifting parameters with an
/// effective memory of ~1/(1-lambda) samples.
class RecursiveLeastSquares {
 public:
  RecursiveLeastSquares(std::size_t dim, double lambda = 0.98,
                        double initial_covariance = 1e6);

  void observe(std::span<const double> x, double y);

  /// Current estimate x . theta for a regressor.
  double predict(std::span<const double> x) const;

  const std::vector<double>& theta() const { return theta_; }
  long samples() const { return samples_; }

  /// Re-inflate the covariance (keeps theta): the estimator re-converges at
  /// fresh-start speed.  Used after a detected regime shift.
  void reset_covariance(double initial_covariance = 1e6);

  /// Overwrite the estimate (the Huber re-fit installs its level here).
  void set_theta(std::span<const double> theta);

 private:
  std::size_t dim_ = 0;
  double lambda_ = 1.0;
  std::vector<double> theta_;
  std::vector<double> p_;  ///< dim x dim covariance, row-major
  long samples_ = 0;
};

/// Two-sided CUSUM over standardized residuals: accumulates
/// max(0, s + |z| - k) per side and flags when either side crosses h.
/// k (the allowance) absorbs the RLS tracking lag on slow drift; h sets the
/// evidence needed to call a shift.
struct CusumOptions {
  double k = 0.5;   ///< per-step allowance, in sigma units
  double h = 12.0;  ///< decision threshold, in sigma units
};

class ResidualCusum {
 public:
  explicit ResidualCusum(const CusumOptions& options = {});

  /// Feed one standardized residual; true when a shift is flagged (the
  /// accumulators reset on a flag).
  bool observe(double z);

  void reset();
  double positive() const { return positive_; }
  double negative() const { return negative_; }

 private:
  CusumOptions options_;
  double positive_ = 0.0;
  double negative_ = 0.0;
};

/// Huber M-estimate of location over `samples` (IRLS with MAD scale):
/// behaves like the mean for inliers, bounds the influence of outliers
/// beyond delta robust-sigma.  Returns 0 for an empty span.
double huber_location(std::span<const double> samples, double delta = 1.345);

struct ScaleTrackerOptions {
  double forgetting = 0.97;     ///< RLS lambda for the slow-drift path
  CusumOptions cusum;           ///< regime-shift flagging
  int refit_window = 6;         ///< recent ratios fed to the Huber re-fit
  double huber_delta = 1.345;   ///< PR 2 robust transition point
  /// Floor on the residual sigma estimate (relative units) so a noise-free
  /// stream cannot standardize rounding error into fake shifts.
  double min_sigma = 1e-3;
  /// Samples of plain (unweighted) variance averaging before the CUSUM is
  /// trusted, at start and again after every shift reset: seeding the
  /// exponentially weighted variance from one residual would let an early
  /// small noise draw shrink sigma and standardize noise into fake shifts.
  int variance_warmup = 8;
  /// Covariance after a regime shift: large enough to re-converge in a few
  /// steps, small enough that one noisy sample cannot override the Huber
  /// level the re-fit just installed.
  double shift_covariance = 0.5;
};

/// Online estimator of one component's multiplicative cost scale from the
/// stream of ratios  observed_seconds / base_curve_seconds.
class ScaleTracker {
 public:
  explicit ScaleTracker(const ScaleTrackerOptions& options = {});

  struct Update {
    double scale = 1.0;        ///< current estimate after this sample
    bool regime_shift = false; ///< CUSUM flagged; Huber re-fit applied
  };

  Update observe(double ratio);

  double scale() const;
  long samples() const { return rls_.samples(); }
  long regime_shifts() const { return regime_shifts_; }

 private:
  ScaleTrackerOptions options_;
  RecursiveLeastSquares rls_;
  ResidualCusum cusum_;
  std::vector<double> recent_;  ///< ring of the last refit_window ratios
  int next_recent_ = 0;
  int recent_filled_ = 0;
  double residual_var_ = 0.0;   ///< EW estimate of residual variance
  int var_samples_ = 0;         ///< samples since the last variance reset
  long regime_shifts_ = 0;
};

}  // namespace hslb::rebal
