// The closed rebalancing control loop:
//
//   observe per-component step timings (DriftSimulator or a live source)
//     -> detect sustained imbalance (ImbalanceDetector, HemoCell trigger)
//     -> re-fit the drifted curves (ScaleTracker: RLS + CUSUM + Huber)
//     -> warm re-solve the allocation (minlp::solve re-entered from the
//        previous incumbent, root basis, and factor snapshot), with the
//        scenario heuristic grid search as the in-loop fallback rung
//     -> adopt the new allocation and keep observing.
//
// Accounting is split along the repo's determinism convention: everything a
// replay must reproduce byte-identically (step times, allocations, detector
// fires, solver node/pivot counts, the modeled rebalance overhead) is a pure
// function of (scenario, seed, options); wall-clock times are recorded
// separately and never feed back into control decisions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hslb/minlp/branch_and_bound.hpp"
#include "hslb/rebal/detector.hpp"
#include "hslb/rebal/drift.hpp"
#include "hslb/rebal/refit.hpp"
#include "hslb/scen/scenario.hpp"

namespace hslb::rebal {

struct LoopOptions {
  std::uint64_t seed = 2026;   ///< drift replay seed
  long horizon = 1000;         ///< execute steps to simulate
  DetectorOptions detector;
  ScaleTrackerOptions tracker;

  /// false: static arm -- solve once at step 0 and never rebalance (the
  /// paper's offline HSLB, measured under drift for comparison).
  bool rebalance = true;
  /// Warm re-solves (previous incumbent + root basis + factor snapshot).
  /// false: every re-solve starts cold -- the A/B arm of the bench.
  bool warm = true;

  /// Node budget per in-loop re-solve; on exhaustion without an incumbent
  /// the loop drops to the heuristic grid-search rung.
  long solver_max_nodes = 50'000;
  int solver_threads = 1;

  /// Modeled cost of one rebalance, charged deterministically as this many
  /// steps of machine time at the pre-rebalance step duration (solver wall
  /// time is machine-dependent and is reported separately as timing data).
  double rebalance_overhead_steps = 2.0;
};

/// One accepted rebalance.
struct RebalanceEvent {
  long step = 0;
  bool heuristic = false;      ///< fallback rung produced the allocation
  bool warm_used = false;      ///< root LP reused the previous basis
  long warm_primes = 0;        ///< incumbent primings inside the solve
  long nodes_explored = 0;
  long lp_solves = 0;
  long simplex_iterations = 0;
  long factor_inherits = 0;
  double objective = 0.0;      ///< model objective of the new allocation
  double wall_seconds = 0.0;   ///< measured re-solve time (timing only)
  std::vector<int> allocation;
};

struct HorizonResult {
  long steps = 0;
  /// Machine-time integral: sum over steps of true step seconds (under the
  /// ground-truth drifted curves) x nodes x cores_per_node / 3600, plus the
  /// modeled overhead of every rebalance.  The bench's headline metric.
  double core_hours = 0.0;
  double step_seconds_sum = 0.0;      ///< same integral in machine-seconds
  double overhead_core_hours = 0.0;   ///< modeled rebalance cost included above

  long detector_fires = 0;
  long rebalances = 0;          ///< fires that produced a new allocation
  long heuristic_fallbacks = 0;
  long regime_shifts_flagged = 0;  ///< CUSUM flags across all trackers

  /// Aggregate solver work across all in-loop re-solves (deterministic).
  long resolve_nodes = 0;
  long resolve_lp_solves = 0;
  long resolve_simplex_iterations = 0;
  long resolve_factor_inherits = 0;
  long resolve_warm_primes = 0;
  double resolve_wall_seconds = 0.0;  ///< measured (timing only)

  std::vector<long> fire_steps;
  std::vector<RebalanceEvent> events;
  std::vector<int> initial_allocation;
  std::vector<int> final_allocation;

  /// FNV-1a over the deterministic trajectory (per-step true seconds and
  /// noisy observed seconds bit patterns, fire steps, adopted allocations):
  /// byte-identical replays per seed mean equal fingerprints.  16 hex
  /// digits.
  std::string replay_fingerprint;
};

/// Score detector fires against the scripted regime-shift ground truth: a
/// fire within `match_window` steps at-or-after a shift is a true positive;
/// shifts nobody fired on within the window are false negatives; remaining
/// fires are false positives.  Each shift matches at most one fire.
struct DetectorScore {
  long true_positives = 0;
  long false_positives = 0;
  long false_negatives = 0;
  double precision = 1.0;  ///< 1 when there were no fires
  double recall = 1.0;     ///< 1 when there were no shifts
};
DetectorScore score_detector(const std::vector<long>& fire_steps,
                             const std::vector<long>& shift_steps,
                             long match_window);

/// Run the control loop over `scenario`'s scripted drift horizon.  The
/// scenario must carry drift directives for the run to be interesting, but
/// any valid scenario is accepted (no drift -> the loop never fires).
HorizonResult run_horizon(const scen::Scenario& scenario,
                          const LoopOptions& options);

}  // namespace hslb::rebal
