// Deterministic drift simulation for the online-rebalancing loop.
//
// A scenario's `drift` directives script how each component's true cost
// evolves over a long horizon: a slow exponential trend (hardware aging,
// queue contention creep), step regime shifts (a resolution change, a new
// physics package, a node-class swap), and per-step observation noise.  The
// simulator turns those directives into per-step timings the control loop
// observes, while keeping the ground truth available for the bench's
// detector precision/recall scoring.
//
// Determinism contract: every noise draw is a pure function of
// (seed, step, component) through cesm::mix_fault_key, the same pure-hash
// scheme the fault and chaos injectors use.  Replaying a horizon with the
// same seed is byte-identical regardless of thread count or call order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hslb/scen/scenario.hpp"

namespace hslb::rebal {

/// True (noise-free) multiplicative cost scale of one drift spec at `step`:
///   exp(rate * step) * prod of every shift factor with shift.step <= step.
double drift_scale(const scen::DriftSpec& spec, long step);

/// `base` with component j's curve multiplied by scales[j] (> 0): pow-family
/// coefficients a, b, d and the comm term e scale linearly; piecewise knots
/// scale their seconds.  Convexity and the model structure are preserved, so
/// the scaled scenario lowers onto a structurally identical minlp::Model --
/// the property cross-solve warm starts rely on.
scen::Scenario scaled_scenario(const scen::Scenario& base,
                               std::span<const double> scales);

/// Replays a scenario's scripted drift over a horizon.
class DriftSimulator {
 public:
  DriftSimulator(scen::Scenario scenario, std::uint64_t seed);

  const scen::Scenario& base() const { return scenario_; }
  std::uint64_t seed() const { return seed_; }

  /// True cost scale of component j at `step` (1.0 when j has no drift).
  double true_scale(int j, long step) const;

  /// All components' true scales at `step`.
  std::vector<double> true_scales(long step) const;

  /// The ground-truth scenario at `step`: base curves scaled by the true
  /// scales.  What an oracle re-fitter would hand the solver.
  scen::Scenario scenario_at(long step) const;

  /// Observed execute-step seconds of component j at `step` under an
  /// allocation of `nodes`: curve(nodes) * true_scale * lognormal noise of
  /// the spec's relative amplitude.  Pure in (seed, step, j).
  double observed_seconds(int j, long step, int nodes) const;

  /// Sorted, deduplicated steps at which any component has a scripted
  /// regime shift -- the ground truth the detector is scored against.
  std::vector<long> shift_steps() const;

 private:
  const scen::DriftSpec* spec_of(int j) const;

  scen::Scenario scenario_;
  std::uint64_t seed_ = 0;
};

}  // namespace hslb::rebal
