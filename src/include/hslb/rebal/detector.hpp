// Streaming imbalance detector in the HemoCell trigger shape.
//
// HemoCell's load balancer polls calculateFractionalLoadImbalance() and
// calls doLoadBalance() when the value crosses a threshold.  This detector
// keeps that shape but hardens the trigger for noisy timings: per-component
// loads are averaged over a sliding window before the fractional imbalance
// is computed (so single-step noise cannot fire it), the trigger demands
// `sustain` consecutive over-threshold steps (so it fires on sustained
// drift, not excursions), and after firing it holds a cooldown and a lower
// re-arm threshold (hysteresis) so one plateau cannot fire it twice.
//
// The detector is a pure state machine over the samples it is fed -- no
// clocks, no randomness -- so horizon replays are deterministic.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hslb::rebal {

struct DetectorOptions {
  int window = 16;        ///< steps averaged per component before the FLI
  double fire_threshold = 0.15;   ///< windowed FLI that starts the sustain count
  double clear_threshold = 0.05;  ///< FLI below which the trigger re-arms
  int sustain = 4;        ///< consecutive over-threshold steps to fire
  int cooldown = 50;      ///< steps after a fire before re-arming can begin
};

/// Fractional load imbalance of one sample of per-component loads:
///   max_j load_j / mean_j load_j - 1
/// (0 when perfectly balanced; HemoCell's FLI in our normalized setting).
double fractional_imbalance(std::span<const double> loads);

class ImbalanceDetector {
 public:
  enum class State {
    kArmed,      ///< watching; sustain counter may be accumulating
    kCooldown,   ///< recently fired; ignoring the signal
    kBlocked,    ///< cooldown elapsed, FLI still in/above the hysteresis
                 ///< band; re-arms below clear_threshold, re-fires on
                 ///< sustained FLI above fire_threshold
  };

  explicit ImbalanceDetector(const DetectorOptions& options = {});

  /// Feed one step's per-component load ratios (observed / expected under
  /// the model the current allocation was solved for).  Returns true when
  /// the trigger fires -- the caller should attempt a rebalance.  The
  /// component count must stay constant across calls.
  bool observe(std::span<const double> loads);

  /// Reset the windows and sustain counter (call after a rebalance: the
  /// expectation baseline changed, so the buffered history is stale).
  /// Cooldown state is kept -- a rebalance must not shorten it.
  void reset_window();

  State state() const { return state_; }
  /// Current windowed fractional imbalance (0 before any sample).
  double windowed_imbalance() const;
  long fires() const { return fires_; }

 private:
  DetectorOptions options_;
  State state_ = State::kArmed;
  std::vector<double> window_sums_;   ///< per component, over the ring
  std::vector<double> ring_;          ///< column-major [component][slot]
  std::size_t components_ = 0;
  int filled_ = 0;
  int next_slot_ = 0;
  int sustain_count_ = 0;
  int cooldown_left_ = 0;
  long fires_ = 0;
};

}  // namespace hslb::rebal
