// Allocation recycling for the solver hot path.
//
// Branch-and-bound churns through short-lived, identically shaped buffers:
// node bound vectors, warm-basis status arrays, cut terms, simplex scratch,
// eta vectors.  The general-purpose allocator handles each of them fine in
// isolation, but at ~10^4 nodes x ~10 vectors per node the malloc/free
// traffic shows up in profiles and fragments the heap.  Two small tools:
//
//  * Arena      -- a chunked bump allocator for trivially destructible
//                  scratch; reset() recycles every chunk at once.
//  * VectorPool -- a free list of std::vector<T> that hands buffers back
//                  with their capacity intact, so steady-state acquire()
//                  never touches the heap.
//
// Neither is thread-safe; the users own one per worker (or thread_local).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace hslb::common {

/// Chunked bump allocator.  allocate() carves aligned blocks out of
/// geometrically growing chunks; reset() makes every chunk reusable without
/// returning memory to the system.  Only for trivially destructible payloads
/// (no destructors run -- the arena hands out raw storage).
class Arena {
 public:
  explicit Arena(std::size_t first_chunk_bytes = 4096)
      : next_chunk_bytes_(first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw storage, aligned to `align` (a power of two).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    std::uintptr_t at = (cursor_ + (align - 1)) & ~(align - 1);
    if (chunk_ >= chunks_.size() || at + bytes > chunk_end_) {
      grow(bytes + align);
      at = (cursor_ + (align - 1)) & ~(align - 1);
    }
    cursor_ = at + bytes;
    return reinterpret_cast<void*>(at);
  }

  /// Typed convenience: `count` default-constructible Ts (trivial only).
  template <typename T>
  T* allocate_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Recycle every chunk: subsequent allocations reuse the same memory.
  void reset() {
    chunk_ = 0;
    if (!chunks_.empty()) {
      cursor_ = reinterpret_cast<std::uintptr_t>(chunks_[0].data.get());
      chunk_end_ = cursor_ + chunks_[0].bytes;
    } else {
      cursor_ = chunk_end_ = 0;
    }
  }

  /// Total bytes held across chunks (capacity, not live allocations).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) {
      total += c.bytes;
    }
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t bytes = 0;
  };

  void grow(std::size_t need) {
    // Advance to the next already-allocated chunk when one fits; otherwise
    // append a new chunk at least `need` bytes and doubling in size.
    while (chunk_ + 1 < chunks_.size()) {
      ++chunk_;
      if (chunks_[chunk_].bytes >= need) {
        cursor_ = reinterpret_cast<std::uintptr_t>(chunks_[chunk_].data.get());
        chunk_end_ = cursor_ + chunks_[chunk_].bytes;
        return;
      }
    }
    std::size_t bytes = next_chunk_bytes_;
    while (bytes < need) {
      bytes *= 2;
    }
    next_chunk_bytes_ = bytes * 2;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(bytes), bytes});
    chunk_ = chunks_.size() - 1;
    cursor_ = reinterpret_cast<std::uintptr_t>(chunks_.back().data.get());
    chunk_end_ = cursor_ + bytes;
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;            // index of the chunk being bumped
  std::uintptr_t cursor_ = 0;        // next free byte in the current chunk
  std::uintptr_t chunk_end_ = 0;     // one past the current chunk
  std::size_t next_chunk_bytes_;     // size for the next fresh chunk
};

/// Free list of std::vector<T>.  acquire() returns an empty vector with
/// whatever capacity its previous life left behind; release() takes a dead
/// buffer back.  Steady-state usage allocates nothing.
template <typename T>
class VectorPool {
 public:
  std::vector<T> acquire() {
    if (free_.empty()) {
      return {};
    }
    std::vector<T> out = std::move(free_.back());
    free_.pop_back();
    out.clear();
    return out;
  }

  /// Copy `src` into a pooled buffer (the common "inherit parent state"
  /// shape in branch-and-bound).
  std::vector<T> acquire_copy(const std::vector<T>& src) {
    std::vector<T> out = acquire();
    out.assign(src.begin(), src.end());
    return out;
  }

  void release(std::vector<T>&& dead) {
    if (dead.capacity() > 0 && free_.size() < kMaxFree) {
      free_.push_back(std::move(dead));
    }
  }

  std::size_t size() const { return free_.size(); }

 private:
  // Unbounded pools would pin the high-water mark of the whole solve; a
  // small cap keeps the pool at working-set size.
  static constexpr std::size_t kMaxFree = 64;
  std::vector<std::vector<T>> free_;
};

}  // namespace hslb::common
