// Wall-clock timing helper for solver statistics and benchmark harnesses.
#pragma once

#include <chrono>

namespace hslb::common {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Reset the epoch to now.
  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hslb::common
