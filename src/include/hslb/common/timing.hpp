// Wall-clock timing helper for solver statistics and benchmark harnesses.
#pragma once

#include <chrono>

namespace hslb::common {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()), lap_(start_) {}

  /// Reset the epoch (and the lap epoch) to now.
  void restart() { start_ = Clock::now(); lap_ = start_; }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double milliseconds() const { return seconds() * 1e3; }

  /// Seconds since the last lap() (or construction/restart()), resetting
  /// the lap epoch -- per-iteration splits without a second timer.
  double lap() {
    const Clock::time_point now = Clock::now();
    const double s = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return s;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

}  // namespace hslb::common
