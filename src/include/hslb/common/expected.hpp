// A minimal Expected<T, E>: the typed error channel for operations whose
// failure is an *expected data condition* rather than a programmer error
// (see error.hpp's philosophy note).  Parsing a truncated timing file or
// gathering a benchmark on a flaky machine fails routinely; those paths
// return Expected instead of tripping HSLB_REQUIRE, and the caller decides
// whether to retry, degrade, or escalate to an exception.
//
// Deliberately small (no monadic sugar beyond map/error propagation): the
// call sites read as `if (!r) { ... r.error() ... } use(r.value())`.
#pragma once

#include <utility>
#include <variant>

#include "hslb/common/error.hpp"

namespace hslb::common {

/// Tag wrapper so Expected<T, E> can be constructed unambiguously from an
/// error value even when T and E are convertible.
template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
Unexpected<std::decay_t<E>> make_unexpected(E&& error) {
  return Unexpected<std::decay_t<E>>{std::forward<E>(error)};
}

template <typename T, typename E>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> unexpected)
      : storage_(std::in_place_index<1>, std::move(unexpected.error)) {}

  bool has_value() const { return storage_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  T& value() {
    HSLB_ASSERT(has_value(), "Expected::value() on an error");
    return std::get<0>(storage_);
  }
  const T& value() const {
    HSLB_ASSERT(has_value(), "Expected::value() on an error");
    return std::get<0>(storage_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  E& error() {
    HSLB_ASSERT(!has_value(), "Expected::error() on a value");
    return std::get<1>(storage_);
  }
  const E& error() const {
    HSLB_ASSERT(!has_value(), "Expected::error() on a value");
    return std::get<1>(storage_);
  }

  /// The value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return has_value() ? std::get<0>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, E> storage_;
};

}  // namespace hslb::common
