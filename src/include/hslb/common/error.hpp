// Error handling primitives shared by every hslb module.
//
// Philosophy (C++ Core Guidelines E.2/E.3): exceptions signal *programmer or
// model-construction errors* (indexing a variable that does not exist,
// building a constraint with mismatched dimensions).  Expected algorithmic
// outcomes -- an infeasible LP, a fit that did not converge -- are reported
// through status enums on the result structs, never through exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace hslb {

/// Base class for all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an API precondition is violated (bad index, bad size, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated; indicates a library bug.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// HSLB_REQUIRE(cond, msg): precondition check that throws InvalidArgument.
/// Kept enabled in release builds -- these guard the public API surface and
/// the cost is negligible next to the numerical work.
#define HSLB_REQUIRE(cond, msg)                                     \
  do {                                                              \
    if (!(cond)) {                                                  \
      throw ::hslb::InvalidArgument(std::string("precondition `") + \
                                    #cond + "` failed: " + (msg));  \
    }                                                               \
  } while (false)

/// HSLB_ASSERT(cond, msg): internal invariant check (library bug if it fires).
#define HSLB_ASSERT(cond, msg)                                    \
  do {                                                            \
    if (!(cond)) {                                                \
      throw ::hslb::InternalError(std::string("invariant `") +    \
                                  #cond + "` violated: " + (msg)); \
    }                                                             \
  } while (false)

}  // namespace hslb
