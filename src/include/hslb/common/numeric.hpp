// Canonical text form of a double: the shortest decimal string that parses
// back to the exact same bits.  Used everywhere a float becomes part of an
// identity -- service cache keys (svc/request.cpp), bench artifact files and
// their fingerprints (report/) -- so that equal doubles always produce equal
// bytes and distinct doubles never collide.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace hslb::common {

/// Shortest of the three precisions that round-trips the exact double, so
/// 0.5 prints "0.5" (not "0.50000000000000000") while every distinct value
/// still gets a distinct string.  -0.0 folds to "0"; NaN prints "nan".
inline std::string shortest_double(double value) {
  if (std::isnan(value)) {
    return "nan";
  }
  if (value == 0.0) {
    return "0";  // folds -0.0 into +0.0
  }
  char buf[40];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) {
      break;
    }
  }
  return buf;
}

}  // namespace hslb::common
