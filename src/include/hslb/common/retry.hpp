// Retry policy with exponential backoff against a simulated clock.
//
// Benchmark campaigns on a real machine wait in queues, time out, and are
// resubmitted; the simulator models the *cost* of that (simulated seconds
// lost to backoff and hang timeouts) without sleeping.  All delays are
// accounted against a SimClock so reports can say how much machine time the
// fault handling consumed, and so tests stay instantaneous.
#pragma once

#include <algorithm>
#include <cmath>

namespace hslb::common {

struct RetryPolicy {
  int max_attempts = 4;                ///< total tries per benchmark run
  double base_backoff_seconds = 60.0;  ///< wait before the first retry
  double backoff_multiplier = 2.0;     ///< exponential growth per retry
  double max_backoff_seconds = 3600.0; ///< backoff ceiling
  double run_timeout_seconds = 7200.0; ///< hung jobs are killed after this

  /// Backoff charged before retrying after failed attempt `attempt`
  /// (0-based): base * multiplier^attempt, clamped to the ceiling.
  double backoff_for(int attempt) const {
    const double raw =
        base_backoff_seconds *
        std::pow(backoff_multiplier, std::max(0, attempt));
    return std::min(raw, max_backoff_seconds);
  }
};

/// Accumulator of simulated wall-clock seconds (queue waits, timeouts).
class SimClock {
 public:
  void advance(double seconds) { seconds_ += std::max(0.0, seconds); }
  double seconds() const { return seconds_; }

 private:
  double seconds_ = 0.0;
};

}  // namespace hslb::common
