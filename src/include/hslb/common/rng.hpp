// Deterministic random number generation.
//
// Every stochastic element of the library (benchmark noise, multi-start
// fitting, decomposition jitter) draws from this generator so that a run is
// fully reproducible from a single seed.  The engine is xoshiro256**, seeded
// through SplitMix64, which is both faster and of higher statistical quality
// than std::mt19937 and -- unlike the standard distributions -- produces
// identical streams across standard library implementations.
#pragma once

#include <cstdint>
#include <limits>

namespace hslb::common {

/// xoshiro256** engine with SplitMix64 seeding and portable distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialize the full state from a single 64-bit seed.
  void reseed(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface (usable with std::shuffle etc.).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive (unbiased via rejection).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Marsaglia polar method, cached pair).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal multiplicative noise factor with E[x] = 1 and the given
  /// coefficient of variation; the natural shape for timing jitter, which is
  /// positive and right-skewed.
  double lognormal_noise(double cv);

  /// Split off an independent stream (for per-thread / per-component use).
  Rng split();

 private:
  std::uint64_t s_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace hslb::common
