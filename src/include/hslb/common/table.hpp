// Plain-text table rendering used by the report generators and the
// paper-reproduction benchmarks (Table III et al.).  Produces aligned
// monospace tables and CSV.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace hslb::common {

/// Column alignment for rendered tables.
enum class Align { kLeft, kRight };

/// A small row/column text table with aligned rendering.
///
/// Values are stored as strings; helpers format numbers consistently
/// (fixed precision, `-` for missing).  This is intentionally simple --
/// benchmark output, not a spreadsheet.
class Table {
 public:
  /// Create a table with the given column headers (left-aligned header for
  /// the first column, right-aligned for the rest by default).
  explicit Table(std::vector<std::string> headers);

  /// Override alignment of one column.
  void set_align(std::size_t column, Align align);

  /// Start a new row; subsequent cell() calls fill it left to right.
  void add_row();

  /// Append a string cell to the current row.
  void cell(std::string value);

  /// Append a numeric cell with fixed `precision` decimals.
  void cell(double value, int precision = 3);

  /// Append an integer cell.
  void cell(long long value);

  /// Append an empty-marker cell ("-").
  void cell_missing();

  /// Number of completed + current rows.
  std::size_t rows() const { return rows_.size(); }

  /// Render as an aligned monospace table with a header underline.
  std::string to_text() const;

  /// Render as CSV (RFC-4180-ish quoting of commas/quotes).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed decimals (shared helper, also used by cells).
std::string format_fixed(double value, int precision);

std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace hslb::common
