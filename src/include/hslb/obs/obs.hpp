// Observability context and instrumentation macros.
//
// Library code is instrumented against a *thread-local* context (one trace
// session pointer + one metrics registry pointer).  Per-thread installs make
// Install reentrant: concurrent pipelines -- the allocation service runs one
// per worker thread -- each see only their own sinks, and nested installs
// restore correctly without cross-thread races.  Code that fans work out to
// other threads captures obs::current_context() and re-installs it on the
// worker (see the OpenMP campaign loops).  When nothing is installed every
// instrumentation point degenerates to a thread-local load and a not-taken
// branch; defining HSLB_OBS_DISABLE at compile time removes the macros
// entirely.
//
// Usage:
//   obs::TraceSession trace;
//   obs::Registry metrics;
//   {
//     obs::Install install(&trace, &metrics);   // overlay, restored on exit
//     run_workload();
//   }
//   write_file("trace.json", trace.to_chrome_json());
#pragma once

#include "hslb/obs/metrics.hpp"
#include "hslb/obs/trace.hpp"

namespace hslb::obs {

/// Observability wiring carried by configs (e.g. core::PipelineConfig).
/// Both pointers are borrowed: the caller owns the session/registry and
/// reads them after the run.  Null members mean "leave as is".
///
/// `parent_span` carries the span-nesting context across threads: when a
/// captured context is Installed on another thread, spans opened there nest
/// under the span that was open at capture time (the OpenMP campaign loops
/// and the solver worker pool both rely on this; the allocation service
/// sets it explicitly so solver epochs nest under the owning request span).
/// 0 means "leave the thread's current nesting as is".
struct Options {
  TraceSession* trace = nullptr;
  Registry* metrics = nullptr;
  std::uint64_t parent_span = 0;
  bool enabled() const { return trace != nullptr || metrics != nullptr; }
};

/// Currently installed sinks on *this thread* (null when observability is
/// off).  TraceSession and Registry are themselves thread-safe, so the same
/// session may be installed on many threads at once.
TraceSession* current_trace();
Registry* current_metrics();

/// Both current sinks plus the innermost open span as an Options bundle --
/// capture this before handing work to another thread, then Install it
/// there: counters land in the same registry and spans nest under the span
/// that was open at capture time.
Options current_context();

/// RAII overlay of the calling thread's context.  Only non-null members
/// override; the previous context is restored on destruction, so nested
/// installs (pipeline inside an instrumented harness) compose.
class Install {
 public:
  explicit Install(const Options& options);
  Install(TraceSession* trace, Registry* metrics);
  ~Install();
  Install(const Install&) = delete;
  Install& operator=(const Install&) = delete;

 private:
  TraceSession* previous_trace_ = nullptr;
  Registry* previous_metrics_ = nullptr;
  std::uint64_t previous_parent_span_ = 0;
};

}  // namespace hslb::obs

#if defined(HSLB_OBS_DISABLE)

#define HSLB_SPAN(...) \
  do {                 \
  } while (false)
#define HSLB_COUNT(name, delta) \
  do {                          \
  } while (false)

#else

#define HSLB_OBS_CONCAT_INNER(a, b) a##b
#define HSLB_OBS_CONCAT(a, b) HSLB_OBS_CONCAT_INNER(a, b)

/// Open a span for the rest of the enclosing scope:
///   HSLB_SPAN("minlp.solve");
/// Records into the installed trace session; no-op when none is installed.
#define HSLB_SPAN(...)                                 \
  ::hslb::obs::ScopedSpan HSLB_OBS_CONCAT(             \
      hslb_obs_span_, __LINE__)(__VA_ARGS__)

/// Bump a named counter in the installed registry (no-op when none):
///   HSLB_COUNT("lp.simplex.solves", 1);
/// Hot loops should cache &registry->counter(...) instead (map lookup here).
#define HSLB_COUNT(name, delta)                                       \
  do {                                                                \
    if (::hslb::obs::Registry* hslb_obs_registry =                    \
            ::hslb::obs::current_metrics()) {                         \
      hslb_obs_registry->counter(name).add(                           \
          static_cast<double>(delta));                                \
    }                                                                 \
  } while (false)

#endif  // HSLB_OBS_DISABLE
