// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// The registry hands out stable references (instruments never move once
// created), so hot loops look a counter up once and then update it through
// the pointer with a single relaxed atomic add.  Snapshots and the
// common::Table renderers are for end-of-run reporting next to the Table III
// output, not for live scraping.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "hslb/common/table.hpp"

namespace hslb::obs {

/// Monotonically increasing value (double so time-in-seconds accumulates
/// without scaling tricks).  Thread-safe.
class Counter {
 public:
  void add(double delta = 1.0) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-write-wins scalar.  Thread-safe.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper edges;
/// one implicit overflow bucket catches everything above the last edge.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  long long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, size bounds().size() + 1 (last = overflow).
  std::vector<long long> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<long long>> buckets_;
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every instrument, for rendering or assertions.
struct MetricsSnapshot {
  struct HistogramRow {
    std::string name;
    long long count = 0;
    double sum = 0.0;
    std::vector<double> bounds;
    std::vector<long long> buckets;
  };
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramRow> histograms;
};

/// Named-instrument registry.  Lookup is mutex-guarded; the returned
/// references stay valid for the registry's lifetime.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Get or create; `bounds` are only used on first creation.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = default_time_bounds());

  MetricsSnapshot snapshot() const;

  /// Counters and gauges, one row each, sorted by name.
  common::Table counters_table() const;
  /// Histograms: count / sum / mean plus a compact bucket column.
  common::Table histograms_table() const;

  /// Log-spaced edges suited to per-call wall times in milliseconds.
  static std::vector<double> default_time_bounds();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hslb::obs
