// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// The registry hands out stable references (instruments never move once
// created), so hot loops look a counter up once and then update it through
// the pointer with a single relaxed atomic add.  Snapshots and the
// common::Table renderers are for end-of-run reporting next to the Table III
// output, not for live scraping.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "hslb/common/table.hpp"

namespace hslb::obs {

/// Monotonically increasing value (double so time-in-seconds accumulates
/// without scaling tricks).  Thread-safe.
class Counter {
 public:
  void add(double delta = 1.0) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-write-wins scalar.  Thread-safe.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper edges;
/// one implicit overflow bucket catches everything above the last edge.
///
/// Internally the counts live in a fixed set of cache-line-aligned
/// *per-thread shards*: observe() is a handful of relaxed atomic adds on a
/// shard chosen once per thread, so concurrent recorders (service workers,
/// solver pool helpers) never bounce the same cache line.  Readers
/// (count/sum/bucket_counts, i.e. every scrape) merge the shards; the merge
/// is exact for counts and order-stable for sums.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  long long count() const;
  double sum() const;
  double mean() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts merged across shards, size bounds().size() + 1
  /// (last = overflow).
  std::vector<long long> bucket_counts() const;

  /// Number of internal per-thread shards (fixed; exposed for tests).
  static constexpr std::size_t kShards = 8;

 private:
  struct alignas(64) Shard {
    std::atomic<long long> count{0};
    std::atomic<double> sum{0.0};
    std::unique_ptr<std::atomic<long long>[]> buckets;
  };

  Shard& shard_for_current_thread();

  std::vector<double> bounds_;
  std::unique_ptr<Shard[]> shards_;
};

/// Point-in-time copy of every instrument, for rendering or assertions.
struct MetricsSnapshot {
  struct HistogramRow {
    std::string name;
    long long count = 0;
    double sum = 0.0;
    std::vector<double> bounds;
    std::vector<long long> buckets;
  };
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramRow> histograms;

  /// The named histogram row, or nullptr.  Matches either the raw
  /// instrument name ("svc.request.ms") or its Prometheus-sanitized form
  /// ("hslb_svc_request_ms"), so analysis code works identically on live
  /// registries and re-parsed exposition snapshots.
  const HistogramRow* find_histogram(const std::string& name) const;
  /// The named counter's value (same name matching), or `fallback`.
  double counter_value(const std::string& name, double fallback = 0.0) const;
  /// The named gauge's value (same name matching), or `fallback`.
  double gauge_value(const std::string& name, double fallback = 0.0) const;
};

/// Prometheus-compatible form of an instrument name: "hslb_" + the name
/// with every character outside [a-zA-Z0-9_:] replaced by '_'
/// ("svc.request.ms" -> "hslb_svc_request_ms").  Shared by the exposition
/// renderer/parser and MetricsSnapshot's name matching.
std::string prometheus_name(const std::string& name);

/// Upper-edge percentile estimate from fixed buckets, nearest-rank over the
/// cumulative counts: the smallest bucket upper edge covering at least
/// ceil(q * count) observations.  Exact when observations sit on bucket
/// edges (the edges are inclusive).  Ranks landing in the overflow bucket
/// return +infinity (the histogram cannot bound them); an empty histogram
/// returns NaN.
double histogram_percentile(const MetricsSnapshot::HistogramRow& row,
                            double q);

/// Merge two rows with identical bounds (shards of one logical histogram,
/// or the same instrument scraped from two processes).  Counts add exactly.
MetricsSnapshot::HistogramRow merge(const MetricsSnapshot::HistogramRow& a,
                                    const MetricsSnapshot::HistogramRow& b);

/// Named-instrument registry.  Lookup is mutex-guarded; the returned
/// references stay valid for the registry's lifetime.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Get or create; `bounds` are only used on first creation.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = default_time_bounds());

  MetricsSnapshot snapshot() const;

  /// Counters and gauges, one row each, sorted by name.
  common::Table counters_table() const;
  /// Histograms: count / sum / mean plus a compact bucket column.
  common::Table histograms_table() const;

  /// Log-spaced edges suited to per-call wall times in milliseconds.
  static std::vector<double> default_time_bounds();

  /// HDR-style 1-2-5 log-scale edges in milliseconds, 1 us .. 100 s: fine
  /// enough that nearest-rank percentiles carry ~2x resolution across eight
  /// decades, small enough (25 buckets) that per-thread shards stay cheap.
  /// The request-telemetry phase histograms (svc.*.ms) all use these.
  static std::vector<double> hdr_time_bounds();

  /// 1-2-5 log-scale edges over counts (1 .. 1e6), for size distributions
  /// like simplex pivots per solve.
  static std::vector<double> hdr_count_bounds();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hslb::obs
