// Live metrics exposition: Prometheus text format plus a minimal scrape
// endpoint.
//
// render_prometheus turns a MetricsSnapshot into the Prometheus text
// exposition format (one "# TYPE" header per instrument, cumulative
// `_bucket{le="..."}` ladders for histograms).  The rendering is
// *schema-stable*: every registered histogram emits its full bucket ladder
// even at count=0, so a scraper sees the same series set on every scrape
// regardless of which code paths have run yet.
//
// parse_prometheus inverts the renderer (it only promises to read what
// render_prometheus writes, not arbitrary exposition text); the trace
// analyzer (tools/hslb_trace) uses it to ingest a snapshot file next to a
// Chrome trace.
//
// ExpositionServer is a deliberately tiny HTTP/1.0 responder: one accept
// loop thread, every request answered with a fresh snapshot of the bound
// registry.  It exists so `allocation_server --metrics-port` can be curled
// mid-run; it is not a general HTTP server.
#pragma once

#include <string>

#include "hslb/common/expected.hpp"
#include "hslb/obs/metrics.hpp"

namespace hslb::obs {

/// Prometheus text exposition of the snapshot.  Instrument names are
/// sanitized via prometheus_name(); output order is counters, gauges,
/// histograms, each sorted by raw name (snapshot order).  Deterministic for
/// a given snapshot.
std::string render_prometheus(const MetricsSnapshot& snapshot);

/// Parse text produced by render_prometheus back into a snapshot.  Names in
/// the result are the sanitized ("hslb_...") forms; MetricsSnapshot's
/// lookup helpers match those against raw instrument names transparently.
/// The error string names the first offending line.
common::Expected<MetricsSnapshot, std::string> parse_prometheus(
    const std::string& text);

/// Atomically-ish replace `path` with the rendered snapshot (write to a
/// temp file in the same directory, then rename), so a concurrent reader
/// never sees a torn file.  Returns false (with no exception) when the path
/// is unwritable.
bool write_metrics_file(const std::string& path,
                        const MetricsSnapshot& snapshot);

/// Minimal HTTP scrape endpoint serving `registry`'s current snapshot on
/// every GET.  Binds 127.0.0.1:`port` (port 0 picks an ephemeral port --
/// read it back via port()).  The registry must outlive the server.
class ExpositionServer {
 public:
  /// Starts the accept loop.  Throws common::Error when the port cannot be
  /// bound (already in use, privileged).
  ExpositionServer(const Registry* registry, int port);
  ~ExpositionServer();
  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// The bound port (resolves port-0 requests to the actual port).
  int port() const { return port_; }

  /// Stop accepting and join the loop thread.  Idempotent; the destructor
  /// calls it.
  void stop();

 private:
  struct Impl;
  Impl* impl_ = nullptr;
  const Registry* registry_ = nullptr;
  int port_ = 0;
};

}  // namespace hslb::obs
