// Per-request phase attribution: where a request's latency actually went.
//
// The allocation service (svc/service.cpp) emits one "svc.request" span per
// request plus "svc.phase.*" child spans (admission, queue, cache, coalesce,
// solve), and the solver tags its "minlp.epoch" spans with the LP time spent
// inside each epoch.  This module walks that span tree -- re-parsed from a
// Chrome trace file or taken live from a TraceSession -- and answers the
// scaling question the bench keeps raising: when p99 climbs, which phase is
// climbing?
//
// The analysis is deterministic: requests sort by (latency, span id), the
// percentile windows are fixed ranks, and every share vector sums to 1 by
// construction (a residual "other" phase absorbs un-attributed time).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "hslb/common/expected.hpp"
#include "hslb/common/table.hpp"
#include "hslb/obs/trace.hpp"
#include "hslb/report/json.hpp"

namespace hslb::obs {

/// Attribution phase taxonomy.  kSolveLp is the LP-re-solve time inside the
/// solve phase (from minlp.epoch "lp_ms" tags); kSolveOther is the rest of
/// the solve phase (branching, pivots bookkeeping, merge).  kOther is the
/// residual so per-request shares always sum to exactly one.
enum class Phase {
  kAdmission = 0,
  kQueue,
  kCache,
  kCoalesce,
  kSolveLp,
  kSolveOther,
  kOther,
};

inline constexpr std::size_t kPhaseCount = 7;

/// Stable lowercase phase label ("queue", "solve.lp", ...).
const char* phase_name(Phase phase);

/// One request's reconstructed timeline.
struct RequestTimeline {
  std::uint64_t span = 0;   ///< id of the svc.request span
  std::string label;        ///< the request's "id" arg when present
  double start_us = 0.0;    ///< request span start (session epoch)
  double total_ms = 0.0;    ///< end-to-end request latency
  std::array<double, kPhaseCount> phase_ms{};  ///< per-phase wall time
};

/// Phase shares averaged over a deterministic window of requests around one
/// latency percentile.  Shares are fractions of per-request latency and sum
/// to 1 (up to float rounding).
struct PercentileAttribution {
  double quantile = 0.0;
  double latency_ms = 0.0;  ///< nearest-rank request latency at `quantile`
  std::array<double, kPhaseCount> share{};
};

/// Arrival-vs-service sanity check (M/M/c-style, no distributional claims):
/// lambda from request starts over the trace wall span, mu from mean
/// worker-side time (cache + solve phases).  utilization = lambda /
/// (workers * mu); NaN when the worker count is unknown.
struct QueueingCheck {
  double wall_s = 0.0;
  double arrival_rate_hz = 0.0;
  double per_worker_service_rate_hz = 0.0;
  double workers = 0.0;
  double utilization = 0.0;
  std::string verdict;  ///< "saturated" / "near-saturation" / "headroom"
};

/// LP engine health rolled up over every "minlp.epoch" span in the trace:
/// where LP time went (factorize / eta update / pivot) and the maintained-
/// factor event counts the solver tagged onto its epoch spans.  A nonzero
/// `bt_fallbacks` means some B^T solve left the factored fast path and
/// solved through B instead -- previously silent, now attributable.
struct LpEngineRollup {
  double lp_ms = 0.0;      ///< summed LP wall time across epochs
  double factor_ms = 0.0;  ///< ... spent building LU factorizations
  double update_ms = 0.0;  ///< ... spent appending eta updates
  double pivot_ms = 0.0;   ///< ... spent in the pivot loops proper
  long eta_updates = 0;
  long refactorizations = 0;
  long factor_inherits = 0;
  long bt_fallbacks = 0;
  long epochs = 0;  ///< minlp.epoch spans seen (0: trace carries no solver)
};

/// Full analysis result.
struct Attribution {
  std::vector<RequestTimeline> requests;  ///< sorted by (total_ms, span)
  std::vector<PercentileAttribution> percentiles;  ///< p50, p90, p99
  QueueingCheck queueing;
  LpEngineRollup lp;               ///< trace-wide solver LP phase rollup
  std::string dominant_p99_phase;  ///< phase_name of the largest p99 share
  std::string verdict;             ///< one human-readable sentence
};

/// Parse a Chrome trace_event file written by TraceSession::to_chrome_json
/// back into span events ("ph":"X" only; counter samples are skipped).  The
/// span/parent/depth args round-trip; other args come back as strings.
common::Expected<std::vector<TraceEvent>, std::string> parse_chrome_trace(
    const std::string& json_text);

/// Run the analysis.  `workers` sizes the queueing check (pass the service's
/// worker count, e.g. from the svc.workers gauge); 0 leaves utilization NaN.
Attribution attribute_phases(const std::vector<TraceEvent>& events,
                             double workers = 0.0);

/// Percentile rows (latency + per-phase share columns) for terminals.
common::Table attribution_table(const Attribution& attribution);

/// Machine-readable form: request count, queueing numbers, dominant phase,
/// and per-percentile share objects.  Canonical key order.
report::Json attribution_json(const Attribution& attribution);

}  // namespace hslb::obs
