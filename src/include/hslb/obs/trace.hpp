// Span-based tracer exporting Chrome trace_event JSON.
//
// A TraceSession collects complete ("ph":"X") span events and counter
// ("ph":"C") samples from any thread; ScopedSpan is the RAII recorder.  The
// JSON loads directly in chrome://tracing or https://ui.perfetto.dev, and
// flame_summary() renders an aggregated per-span table for terminals.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hslb::obs {

/// One closed span.  Timestamps are microseconds since the session epoch;
/// `depth` is the nesting level at open time (0 = top level) on its thread.
/// `id`/`parent` form the cross-thread span tree: ids are unique within a
/// session (allocated by TraceSession::next_span_id), `parent` is the id of
/// the span that was open when this one started -- on the same thread via
/// the thread-local tracker, or on another thread via the propagated
/// obs::Options::parent_span -- and 0 means "root".  The request-telemetry
/// analyzer (obs/attribution.hpp) walks these links to group solver work
/// under the owning service request.
struct TraceEvent {
  std::string name;
  std::string category;
  double start_us = 0.0;
  double duration_us = 0.0;
  int thread_id = 0;
  int depth = 0;
  std::uint64_t id = 0;      ///< session-unique span id (0 = unassigned)
  std::uint64_t parent = 0;  ///< id of the enclosing span (0 = root)
  std::vector<std::pair<std::string, std::string>> args;
};

/// One counter sample (rendered as a Chrome counter track).
struct CounterSample {
  std::string name;
  double timestamp_us = 0.0;
  double value = 0.0;
  int thread_id = 0;
};

/// Thread-safe trace collector.  Create one per run, install it with
/// obs::Install (or pass it to ScopedSpan directly), then export.
class TraceSession {
 public:
  TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Microseconds since the session was constructed.
  double now_us() const;

  /// Allocate a fresh span id (never 0).  ScopedSpan calls this itself;
  /// code that records cross-thread spans manually (the allocation service's
  /// queue-phase events, which open on one thread and close on another)
  /// allocates the id up front so children can reference it before the
  /// parent event is recorded.
  std::uint64_t next_span_id();

  void record(TraceEvent event);
  void record_counter(const std::string& name, double value);

  /// Copy of all closed spans, ordered by start time.
  std::vector<TraceEvent> events() const;
  std::vector<CounterSample> counter_samples() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  std::string to_chrome_json() const;

  /// Aggregate per-span-name table (count, total/mean/max ms), widest first.
  std::string flame_summary() const;

  /// Dense id for the calling thread (0 for the first thread seen).
  int thread_id_for_current_thread();

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::vector<CounterSample> counters_;
  std::unordered_map<std::thread::id, int> thread_ids_;
};

/// RAII span.  The no-session constructors consult the installed context
/// (obs::current_trace()); an inactive span costs one atomic load.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, std::string category = "hslb");
  ScopedSpan(TraceSession* session, std::string name,
             std::string category = "hslb");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach a key/value argument shown in the trace viewer's detail pane.
  void arg(std::string key, std::string value);
  void arg(std::string key, double value);
  void arg(std::string key, long long value);

  bool active() const { return session_ != nullptr; }

  /// Session-unique id of this span (0 when inactive).  Hand it to another
  /// thread via obs::Options::parent_span to nest that thread's spans here.
  std::uint64_t id() const { return event_.id; }

 private:
  TraceSession* session_ = nullptr;
  TraceEvent event_;
  std::uint64_t previous_parent_ = 0;
};

/// Id of the innermost span currently open on this thread (0 when none).
/// Seeded across threads by Install when Options::parent_span is set.
std::uint64_t current_span();

}  // namespace hslb::obs
