// Span-based tracer exporting Chrome trace_event JSON.
//
// A TraceSession collects complete ("ph":"X") span events and counter
// ("ph":"C") samples from any thread; ScopedSpan is the RAII recorder.  The
// JSON loads directly in chrome://tracing or https://ui.perfetto.dev, and
// flame_summary() renders an aggregated per-span table for terminals.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hslb::obs {

/// One closed span.  Timestamps are microseconds since the session epoch;
/// `depth` is the nesting level at open time (0 = top level) on its thread.
struct TraceEvent {
  std::string name;
  std::string category;
  double start_us = 0.0;
  double duration_us = 0.0;
  int thread_id = 0;
  int depth = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// One counter sample (rendered as a Chrome counter track).
struct CounterSample {
  std::string name;
  double timestamp_us = 0.0;
  double value = 0.0;
  int thread_id = 0;
};

/// Thread-safe trace collector.  Create one per run, install it with
/// obs::Install (or pass it to ScopedSpan directly), then export.
class TraceSession {
 public:
  TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Microseconds since the session was constructed.
  double now_us() const;

  void record(TraceEvent event);
  void record_counter(const std::string& name, double value);

  /// Copy of all closed spans, ordered by start time.
  std::vector<TraceEvent> events() const;
  std::vector<CounterSample> counter_samples() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  std::string to_chrome_json() const;

  /// Aggregate per-span-name table (count, total/mean/max ms), widest first.
  std::string flame_summary() const;

  /// Dense id for the calling thread (0 for the first thread seen).
  int thread_id_for_current_thread();

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::vector<CounterSample> counters_;
  std::unordered_map<std::thread::id, int> thread_ids_;
};

/// RAII span.  The no-session constructors consult the installed context
/// (obs::current_trace()); an inactive span costs one atomic load.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, std::string category = "hslb");
  ScopedSpan(TraceSession* session, std::string name,
             std::string category = "hslb");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach a key/value argument shown in the trace viewer's detail pane.
  void arg(std::string key, std::string value);
  void arg(std::string key, double value);
  void arg(std::string key, long long value);

  bool active() const { return session_ != nullptr; }

 private:
  TraceSession* session_ = nullptr;
  TraceEvent event_;
};

}  // namespace hslb::obs
