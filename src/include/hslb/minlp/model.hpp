// Mixed-integer nonlinear program container.
//
// This module plays the role of MINOTAUR's modeling layer.  A model holds
//   * variables (continuous / integer / binary) with bounds,
//   * a linear objective (a nonlinear objective is auto-reformulated through
//     an epigraph variable),
//   * linear constraints,
//   * general smooth constraints g(x) <= 0 from the expr DSL (must be convex
//     for the outer-approximation solver to be exact),
//   * univariate "defined time" links  t == fn(n)  -- the structure of every
//     Table I model, where fn is a fitted performance function, and
//   * SOS1 sets modeling the paper's discrete allocation choices
//     (sum z_k = 1, sum z_k * w_k = n) with special-ordered-set branching.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "hslb/expr/expr.hpp"
#include "hslb/linalg/matrix.hpp"
#include "hslb/lp/problem.hpp"

namespace hslb::minlp {

enum class VarType { kContinuous, kInteger, kBinary };

struct Variable {
  std::string name;
  VarType type = VarType::kContinuous;
  double lower = 0.0;
  double upper = lp::kInf;
};

/// Sparse linear constraint: lower <= sum coeff_i * x_{var_i} <= upper.
struct LinearConstraint {
  std::vector<std::pair<std::size_t, double>> terms;
  double lower = -lp::kInf;
  double upper = lp::kInf;
  std::string name;
};

/// Smooth scalar function of one variable with derivative, plus an explicit
/// curvature declaration used by the cut machinery.
enum class Curvature { kConvex, kConcave, kAuto };

struct UnivariateFn {
  std::function<double(double)> value;
  std::function<double(double)> deriv;
  Curvature curvature = Curvature::kAuto;
  /// Optional symbolic form (fn applied to a variable expression); enables
  /// the root NLP relaxation solve used to seed linearization points.
  std::function<expr::Expr(const expr::Expr&)> as_expr;
};

/// Defined-variable link  t_var == fn(n_var).
struct UnivariateLink {
  std::size_t t_var = 0;
  std::size_t n_var = 0;
  UnivariateFn fn;
  std::string name;
};

/// General smooth constraint  g(x) <= upper  (convex g for exact OA).
struct NonlinearConstraint {
  expr::Expr g;
  double upper = 0.0;
  std::string name;
};

/// Special ordered set of type 1 over binary variables, with reference
/// weights used for branching order (the discrete allocation values).
struct Sos1Set {
  std::vector<std::size_t> vars;
  std::vector<double> weights;
  std::string name;
};

class Model {
 public:
  /// Add a variable; returns its index.
  std::size_t add_variable(std::string name, VarType type, double lower,
                           double upper);

  /// Expression handle for variable `index` (for nonlinear constraints).
  expr::Expr var(std::size_t index) const;

  /// Minimize the given expression.  Linear objectives are used directly; a
  /// nonlinear (convex) objective is moved into an epigraph constraint.
  void minimize(const expr::Expr& objective);

  /// lower <= sum(terms) <= upper.
  std::size_t add_linear(std::vector<std::pair<std::size_t, double>> terms,
                         double lower, double upper, std::string name = {});

  /// t == fn(n).  `fn` must be smooth on [lower(n), upper(n)].
  std::size_t add_link(std::size_t t_var, std::size_t n_var, UnivariateFn fn,
                       std::string name = {});

  /// g(x) <= upper with convex g.
  std::size_t add_nonlinear(expr::Expr g, double upper, std::string name = {});

  /// Restrict an integer variable to an explicit value set:
  ///   sum z_k = 1,  sum z_k * values[k] = var.
  /// With `use_sos` the set is registered for SOS1 branching (the paper's
  /// two-orders-of-magnitude speedup); without it, the binaries are branched
  /// individually (the ablation baseline).
  void restrict_to_set(std::size_t var, const std::vector<double>& values,
                       bool use_sos, const std::string& name = {});

  /// Register an SOS1 set over existing binary variables.
  void add_sos1(std::vector<std::size_t> vars, std::vector<double> weights,
                std::string name = {});

  // --- Introspection --------------------------------------------------------
  std::size_t num_vars() const { return vars_.size(); }
  const std::vector<Variable>& variables() const { return vars_; }
  const std::vector<LinearConstraint>& linear_constraints() const {
    return linear_;
  }
  const std::vector<UnivariateLink>& links() const { return links_; }
  const std::vector<NonlinearConstraint>& nonlinear_constraints() const {
    return nonlinear_;
  }
  const std::vector<Sos1Set>& sos1_sets() const { return sos1_; }

  /// Linear objective coefficients (size num_vars) and constant offset.
  const linalg::Vector& objective_coeffs() const { return obj_coeffs_; }
  double objective_offset() const { return obj_offset_; }

  /// True objective value at a point (offset + linear part; the epigraph
  /// reformulation makes this exact at feasible points).
  double objective_value(std::span<const double> x) const;

  /// Check a point against every constraint class (within `tol`).
  /// Returns a human-readable description of the first violation, or
  /// nullopt when feasible.
  std::optional<std::string> check_feasible(std::span<const double> x,
                                            double tol = 1e-6) const;

 private:
  std::vector<Variable> vars_;
  std::vector<LinearConstraint> linear_;
  std::vector<UnivariateLink> links_;
  std::vector<NonlinearConstraint> nonlinear_;
  std::vector<Sos1Set> sos1_;
  linalg::Vector obj_coeffs_;
  double obj_offset_ = 0.0;
};

/// Make a UnivariateFn from value/derivative callables.
UnivariateFn make_univariate(std::function<double(double)> value,
                             std::function<double(double)> deriv,
                             Curvature curvature = Curvature::kAuto);

/// Determine curvature by sampling midpoint convexity over [lo, hi].
Curvature detect_curvature(const UnivariateFn& fn, double lo, double hi);

}  // namespace hslb::minlp
