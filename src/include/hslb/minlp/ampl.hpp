// AMPL-lite: a textual model format.
//
// The paper's optimization models were written in AMPL and solved through
// MINOTAUR; this module gives the reimplemented stack the same kind of
// declarative surface.  A compact dialect covers everything the Table I
// models need:
//
//   # comments run to end of line
//   var n_atm integer >= 8 <= 40960;
//   var T >= 0;
//   minimize obj: T;
//   s.t. time_atm: t_atm = 27000 / n_atm + 45;        # becomes a link
//   s.t. nesting: n_ice + n_lnd <= n_atm;
//   s.t. sync: -5 <= t_lnd - t_ice <= 5;              # range row
//   set ocean_counts: n_ocn in {2, 4, 8, 480, 768};   # SOS1 allocation set
//
// Semantics:
//   * affine constraints become linear rows;
//   * an equality "t = f(n)" whose right side references exactly one other
//     variable becomes a univariate link (derivatives via autodiff);
//   * any other nonlinear constraint goes in as g(x) <= 0 (convexity is the
//     modeler's promise, as with the outer-approximation solver itself);
//   * "set" lines call Model::restrict_to_set with SOS1 branching.
//
// write_ampl() emits this dialect; parse_ampl() reads it back.  Round trips
// preserve the optimum (see tests/ampl_test.cpp).
#pragma once

#include <string>

#include "hslb/minlp/model.hpp"

namespace hslb::minlp {

/// Render the model as AMPL-lite text.  Every link must carry a symbolic
/// form (fn.as_expr); SOS1 sets are written over their binary variables.
std::string write_ampl(const Model& model);

/// Parse AMPL-lite text into a model.  Throws InvalidArgument with a line
/// number on malformed input.
[[nodiscard]] Model parse_ampl(const std::string& text);

/// Parse a single arithmetic expression over the given variable names
/// (exposed for tests and tooling).
expr::Expr parse_expression(const std::string& text,
                            const std::vector<std::string>& variable_names);

}  // namespace hslb::minlp
