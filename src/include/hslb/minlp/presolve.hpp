// Presolve: feasibility-based bound tightening (FBBT).
//
// Before the branch-and-bound starts, variable bounds are tightened by
//   * activity-based propagation through every linear row,
//   * interval propagation through every univariate link (the image of
//     t == fn(n) over [lo(n), up(n)] bounds t), and
//   * integrality rounding.
// Tighter root bounds mean tighter chords, fewer OA cuts, and smaller
// trees; infeasibility detected here skips the solve entirely.
#pragma once

#include "hslb/minlp/model.hpp"

namespace hslb::minlp {

struct PresolveResult {
  linalg::Vector lower;   ///< tightened per-variable lower bounds
  linalg::Vector upper;   ///< tightened per-variable upper bounds
  bool infeasible = false;
  int rounds = 0;         ///< propagation sweeps performed
  int tightenings = 0;    ///< individual bound changes applied
};

/// Run FBBT to a fixpoint (at most `max_rounds` sweeps).
[[nodiscard]] PresolveResult presolve(const Model& model, int max_rounds = 8);

/// Range of fn over [lo, hi] for a one-signed-curvature function:
/// endpoints plus the interior extremum located by golden-section search.
struct FnRange {
  double min = 0.0;
  double max = 0.0;
};
FnRange univariate_range(const UnivariateFn& fn, Curvature curvature,
                         double lo, double hi);

}  // namespace hslb::minlp
