// LP/NLP-based branch-and-bound (outer approximation) for convex MINLPs.
//
// The algorithm follows the description in the paper (Quesada-Grossmann
// LP/NLP-based branch-and-bound as implemented in MINOTAUR):
//   * an LP master relaxation carrying linearization cuts,
//   * a branch-and-bound tree over integer variables and SOS1 sets,
//   * new linearizations added lazily when an (integer-feasible) master
//     solution violates the nonlinear constraints,
//   * SOS1 branching on the discrete allocation sets (the feature the paper
//     credits with a two-orders-of-magnitude speedup over branching on the
//     individual binary variables).
// Univariate links t == fn(n) additionally get node-local chord rows, which
// close the relaxation gap as the tree tightens variable intervals, so the
// solver is exact for the (possibly concave) fitted performance functions.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hslb/lp/simplex.hpp"
#include "hslb/minlp/model.hpp"

namespace hslb::minlp {

enum class MinlpStatus {
  kOptimal,
  kInfeasible,
  kNodeLimit,
  kTimeLimit,
  kUnbounded,
};

const char* to_string(MinlpStatus status);

enum class NodeSelection { kBestBound, kDepthFirst };

/// One structured solver progress event.  The solver emits these through
/// SolverOptions::event_sink; `to_line()` renders the legacy text format
/// that the plain-string `logger` used to receive.
struct SolverEvent {
  enum class Kind {
    kPresolve,   ///< after FBBT: tightenings/rounds filled
    kProgress,   ///< periodic node-count heartbeat
    kIncumbent,  ///< a new best feasible solution was accepted
    kDone,       ///< final summary
  };
  Kind kind = Kind::kProgress;
  long node = 0;               ///< nodes explored when the event fired
  std::size_t open_nodes = 0;  ///< size of the open-node queue
  bool have_incumbent = false;
  double incumbent = 0.0;      ///< objective of the best solution so far
  double best_bound = 0.0;     ///< valid global lower bound (kDone only)
  int presolve_tightenings = 0;
  int presolve_rounds = 0;
  long lp_solves = 0;
  long cuts_added = 0;

  /// Render in the legacy one-line logger format.
  std::string to_line() const;
};

using SolverEventSink = std::function<void(const SolverEvent&)>;

/// Cross-solve warm-start state: everything a later solve of a structurally
/// identical model (same variables and links, possibly re-fitted
/// coefficients) can reuse.  Produced by a solve with
/// SolverOptions::capture_warm_start and fed back through
/// SolverOptions::warm_start -- the rebalancing loop re-enters the solver
/// this way after every re-fit.  Every piece degrades safely when the model
/// moved: the incumbent is re-completed against the new model (dropped if
/// infeasible), the basis is remapped by stable row keys, and the factor
/// snapshot validates row identity and declines itself on any mismatch.
struct WarmStart {
  linalg::Vector incumbent;  ///< previous best point (empty: none)
  lp::Basis root_basis;      ///< root LP basis from the previous solve
  std::vector<std::uint64_t> root_keys;  ///< row keys it was captured on
  lp::FactorRef root_factor;             ///< maintained LU snapshot

  bool empty() const {
    return incumbent.empty() && root_basis.empty() && root_factor == nullptr;
  }
};

struct SolverOptions {
  bool use_sos_branching = true;   ///< false: branch binaries individually
  bool use_root_nlp = true;        ///< seed cuts from a barrier NLP solve
  bool use_presolve = true;        ///< FBBT bound tightening before B&B
  NodeSelection node_selection = NodeSelection::kBestBound;
  double integer_tol = 1e-6;
  double rel_gap = 1e-8;           ///< relative optimality gap
  long max_nodes = 2'000'000;
  /// Wall-clock budget in seconds; <= 0 means unlimited.  When the budget
  /// expires the solve stops and returns the best incumbent found so far
  /// with status kTimeLimit (kTimeLimit without a point means no feasible
  /// solution was found in time).
  double max_wall_seconds = 0.0;
  int cut_rounds_per_node = 8;     ///< OA re-solve rounds per node
  int initial_tangents_per_link = 5;
  /// Structured progress sink (presolve summary, incumbent updates,
  /// periodic node counts, final summary).
  SolverEventSink event_sink;
  /// Legacy plain-text sink, kept for back compatibility: receives
  /// SolverEvent::to_line() for every event the sink above would see.
  std::function<void(const std::string&)> logger;
  /// Node-count cadence for kProgress events.  The first heartbeat fires
  /// at node 1 (so short solves still produce one), then every multiple.
  long log_every_nodes = 100;

  // --- Parallel tree search (deterministic) --------------------------------
  /// Worker threads processing nodes; <= 0 picks hardware concurrency.  The
  /// result is byte-identical for every thread count: each epoch pops a
  /// fixed-size batch of nodes in heap order, workers evaluate them against
  /// an immutable snapshot of the cut pool and cutoff, and the results merge
  /// back in batch order.  Which thread ran a node never affects the answer.
  int threads = 1;
  /// Nodes popped per epoch.  Thread-count INDEPENDENT by design: changing
  /// `epoch_batch` changes the search (batch members do not see each
  /// other's cuts or incumbents), changing `threads` does not.  1 reproduces
  /// the classic serial node loop exactly.  Each epoch takes half its picks
  /// by the configured node selection and half as dives to the deepest open
  /// nodes, so incumbents keep arriving even though a batch shares one
  /// snapshot.  Larger batches expose more parallelism but search with
  /// staler cuts/cutoffs and so explore more nodes; 4 measured best on the
  /// Table I cases (bench_minlp_parallel sweeps this).
  int epoch_batch = 4;
  /// Warm-start every node LP from the parent's captured simplex basis
  /// (remapped by stable row keys).  Deterministic: the warm basis a node
  /// inherits depends only on the epoch structure, never on thread count.
  bool warm_start_lp = true;
  /// Simplex engine for every master-LP solve.  kSparse (the default) is
  /// the maintained-factor revised simplex; kDense keeps the dense tableau
  /// path selectable for A/B comparison (bench_scen_corpus's dense arm).
  /// Factor handoff across nodes only applies under kSparse.
  lp::LpEngine lp_engine = lp::LpEngine::kSparse;
  /// Cap on pooled cuts; the oldest non-root cuts age out at epoch
  /// boundaries (a deterministic point) when the pool exceeds this.
  std::size_t max_pool_cuts = 512;

  // --- Cross-solve warm starts (the online rebalancing loop) ---------------
  /// State captured by a previous solve of a structurally identical model.
  /// Borrowed; may be null.  The previous incumbent is rounded, clamped to
  /// the new root box, and completed into an initial incumbent (so the tree
  /// starts with a working cutoff); the root node inherits the previous
  /// basis/keys/factor exactly as a child inherits its parent's.
  const WarmStart* warm_start = nullptr;
  /// Capture this solve's root basis/keys/factor and final incumbent into
  /// MinlpResult::warm for a later warm re-solve.  Capture never changes the
  /// search; only feeding the state back does.
  bool capture_warm_start = false;
};

struct SolveStats {
  int presolve_tightenings = 0;
  long nodes_explored = 0;
  long lp_solves = 0;
  long nlp_solves = 0;
  long cuts_added = 0;
  long simplex_iterations = 0;
  long incumbent_updates = 0;
  long pruned_by_bound = 0;    ///< nodes discarded against the cutoff
  long pruned_infeasible = 0;  ///< nodes whose master LP was infeasible
  long epochs = 0;             ///< parallel-search epochs (merge points)
  long warm_lp_solves = 0;     ///< LP solves that used a warm basis
  long warm_phase1_skips = 0;  ///< warm solves whose basis reuse skipped Phase I
  long warm_simplex_iterations = 0;  ///< pivots inside warm-started solves
  long cold_simplex_iterations = 0;  ///< pivots inside cold solves
  long lp_factorizations = 0;    ///< fresh basis LUs built inside node LPs
  long lp_refactorizations = 0;  ///< eta-triggered mid-solve refactorizations
  long lp_eta_updates = 0;       ///< product-form basis updates appended
  long lp_bound_flips = 0;       ///< pivots resolved without a basis change
  long lp_bt_fallbacks = 0;      ///< dense-engine B^T solve fallbacks
  long lp_factor_inherits = 0;   ///< node LPs begun on the parent's factor
  long warm_incumbent_primes = 0;  ///< solves seeded from a prior incumbent
  double lp_seconds = 0.0;     ///< wall time inside master-LP solves
  double lp_factor_seconds = 0.0;  ///< LP time building LU factorizations
  double lp_update_seconds = 0.0;  ///< LP time appending eta updates
  double lp_pivot_seconds = 0.0;   ///< LP time inside the pivot loops proper
  double wall_seconds = 0.0;
  double best_bound = -lp::kInf;
};

struct MinlpResult {
  MinlpStatus status = MinlpStatus::kInfeasible;
  linalg::Vector x;        ///< best point found (empty if none)
  double objective = 0.0;  ///< objective at x
  SolveStats stats;
  /// Filled when SolverOptions::capture_warm_start: feed back as
  /// SolverOptions::warm_start on the next structurally identical solve.
  WarmStart warm;
};

/// Solve the MINLP to global optimality (for convex nonlinear constraints
/// and one-signed-curvature links).
[[nodiscard]] MinlpResult solve(const Model& model,
                                const SolverOptions& options = {});

}  // namespace hslb::minlp
