// LP/NLP-based branch-and-bound (outer approximation) for convex MINLPs.
//
// The algorithm follows the description in the paper (Quesada-Grossmann
// LP/NLP-based branch-and-bound as implemented in MINOTAUR):
//   * an LP master relaxation carrying linearization cuts,
//   * a branch-and-bound tree over integer variables and SOS1 sets,
//   * new linearizations added lazily when an (integer-feasible) master
//     solution violates the nonlinear constraints,
//   * SOS1 branching on the discrete allocation sets (the feature the paper
//     credits with a two-orders-of-magnitude speedup over branching on the
//     individual binary variables).
// Univariate links t == fn(n) additionally get node-local chord rows, which
// close the relaxation gap as the tree tightens variable intervals, so the
// solver is exact for the (possibly concave) fitted performance functions.
#pragma once

#include <functional>

#include "hslb/minlp/model.hpp"

namespace hslb::minlp {

enum class MinlpStatus {
  kOptimal,
  kInfeasible,
  kNodeLimit,
  kUnbounded,
};

const char* to_string(MinlpStatus status);

enum class NodeSelection { kBestBound, kDepthFirst };

struct SolverOptions {
  bool use_sos_branching = true;   ///< false: branch binaries individually
  bool use_root_nlp = true;        ///< seed cuts from a barrier NLP solve
  bool use_presolve = true;        ///< FBBT bound tightening before B&B
  NodeSelection node_selection = NodeSelection::kBestBound;
  double integer_tol = 1e-6;
  double rel_gap = 1e-8;           ///< relative optimality gap
  long max_nodes = 2'000'000;
  int cut_rounds_per_node = 8;     ///< OA re-solve rounds per node
  int initial_tangents_per_link = 5;
  /// Optional progress sink: receives one line per logged event (presolve
  /// summary, incumbent updates, periodic node counts, final summary).
  std::function<void(const std::string&)> logger;
  long log_every_nodes = 100;      ///< node-count cadence for progress lines
};

struct SolveStats {
  int presolve_tightenings = 0;
  long nodes_explored = 0;
  long lp_solves = 0;
  long nlp_solves = 0;
  long cuts_added = 0;
  long simplex_iterations = 0;
  double wall_seconds = 0.0;
  double best_bound = -lp::kInf;
};

struct MinlpResult {
  MinlpStatus status = MinlpStatus::kInfeasible;
  linalg::Vector x;        ///< best point found (empty if none)
  double objective = 0.0;  ///< objective at x
  SolveStats stats;
};

/// Solve the MINLP to global optimality (for convex nonlinear constraints
/// and one-signed-curvature links).
[[nodiscard]] MinlpResult solve(const Model& model,
                                const SolverOptions& options = {});

}  // namespace hslb::minlp
