// Fixed-size fork-join worker pool for epoch-parallel tree search.
//
// A deliberately small alternative to OpenMP for the solver's inner loop:
// plain std::thread workers are ThreadSanitizer-friendly (no runtime false
// positives) and let us propagate the calling thread's observability context
// (obs::current_context()) into every worker, so counters bumped inside
// worker-side LP solves land in the installed registry.
//
// run(count, fn) executes fn(0..count-1) across the pool; items are handed
// out dynamically (atomic counter), which is safe for deterministic solves
// because every item writes only its own result slot -- WHICH worker runs an
// item never affects WHAT the item computes.  The calling thread
// participates as worker 0, so a pool of size 1 adds no synchronization at
// all.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "hslb/obs/obs.hpp"

namespace hslb::minlp {

class WorkerPool {
 public:
  /// `threads` = total participants including the calling thread; spawns
  /// threads-1 helpers.  Captures the caller's obs context for the helpers.
  explicit WorkerPool(int threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Run fn(i) for every i in [0, count); returns when all are done.  The
  /// calling thread participates.  Not reentrant.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn);

  int size() const { return static_cast<int>(helpers_.size()) + 1; }

  /// Items processed per worker (index 0 = calling thread), accumulated
  /// across run() calls.  Only valid between run() calls.
  const std::vector<long>& items_per_worker() const { return items_; }

 private:
  void helper_loop(std::size_t worker_index);
  void drain(std::size_t worker_index, std::size_t count,
             const std::function<void(std::size_t)>& fn);

  std::vector<std::thread> helpers_;
  std::vector<long> items_;
  obs::Options obs_context_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  std::size_t count_ = 0;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::atomic<std::size_t> next_{0};
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace hslb::minlp
