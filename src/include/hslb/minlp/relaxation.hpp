// LP relaxation construction for the outer-approximation branch-and-bound.
//
// The master LP over the model's variables contains
//   * every linear constraint of the model,
//   * a growing pool of globally valid linearization cuts
//     (tangents of convex link functions / OA cuts of convex constraints),
//   * node-local chord (secant) rows for each univariate link, computed from
//     the node's current bounds -- the standard convex-envelope treatment of
//     a univariate nonlinearity, exact once the variable's interval closes.
#pragma once

#include <vector>

#include "hslb/linalg/matrix.hpp"
#include "hslb/lp/problem.hpp"
#include "hslb/minlp/model.hpp"

namespace hslb::minlp {

/// A linear row over model variables, used for pooled cuts.
struct CutRow {
  std::vector<std::pair<std::size_t, double>> terms;
  double lower = -lp::kInf;
  double upper = lp::kInf;
};

/// Pool of globally valid linearizations.
class CutPool {
 public:
  /// Tangent of link `link_index` at `point`:
  ///   convex fn  ->  t >= fn(p) + fn'(p) (n - p)   (lower support)
  ///   concave fn ->  t <= fn(p) + fn'(p) (n - p)   (upper support)
  /// Duplicate points (within a relative tolerance) are skipped.
  /// Returns true if a cut was added.
  bool add_link_tangent(const Model& model,
                        const std::vector<Curvature>& curvature,
                        std::size_t link_index, double point);

  /// OA cut for nonlinear constraint `nc_index` (convex g <= ub) at `x`:
  ///   g(x0) + grad g(x0) . (x - x0) <= ub.
  void add_nonlinear_cut(const Model& model, std::size_t nc_index,
                         std::span<const double> x);

  const std::vector<CutRow>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }

 private:
  std::vector<CutRow> rows_;
  // (link_index, point) pairs already linearized, for dedup.
  std::vector<std::pair<std::size_t, double>> tangent_points_;
};

/// Resolve each link's curvature (declared or sampled over variable bounds).
std::vector<Curvature> resolve_curvatures(const Model& model);

/// Build the master LP for a node.
///   node_lower/node_upper: per-variable bounds for this node.
///   For each link the node-local chord over [lo(n), up(n)] is added; when
///   the interval has closed (lo == up) the link variable t is pinned to the
///   exact fn value instead.
[[nodiscard]] lp::LpProblem build_master_lp(
    const Model& model, const CutPool& pool,
    const std::vector<Curvature>& curvature,
    std::span<const double> node_lower, std::span<const double> node_upper);

/// Completion solve: fix every integer variable to its (rounded) value in
/// `x`, pin every link variable to the exact fn value, and re-solve the LP
/// for the remaining continuous variables.  Returns the completed point and
/// true objective, or nullopt if the fixed problem is infeasible.
struct Completion {
  linalg::Vector x;
  double objective = 0.0;
};
std::optional<Completion> complete_integer_point(
    const Model& model, const CutPool& pool,
    const std::vector<Curvature>& curvature, std::span<const double> x,
    std::span<const double> node_lower, std::span<const double> node_upper);

}  // namespace hslb::minlp
