// LP relaxation construction for the outer-approximation branch-and-bound.
//
// The master LP over the model's variables contains
//   * every linear constraint of the model,
//   * a growing pool of globally valid linearization cuts
//     (tangents of convex link functions / OA cuts of convex constraints),
//   * node-local chord (secant) rows for each univariate link, computed from
//     the node's current bounds -- the standard convex-envelope treatment of
//     a univariate nonlinearity, exact once the variable's interval closes.
//
// Cuts carry stable IDs so that (a) worker-local cut deltas merge into the
// shared pool deterministically and without duplicates, and (b) master-LP
// rows can be named by stable keys (see row_key below) for warm-start basis
// remapping across parent/child LPs whose row sets differ.
#pragma once

#include <cstdint>
#include <vector>

#include "hslb/linalg/matrix.hpp"
#include "hslb/lp/problem.hpp"
#include "hslb/lp/simplex.hpp"
#include "hslb/minlp/model.hpp"

namespace hslb::minlp {

/// Stable identifiers for master-LP rows, used as lp::map_basis keys.  The
/// top byte tags the row family so indices can never collide across
/// families.
namespace row_key {
constexpr std::uint64_t linear(std::size_t index) {
  return (1ULL << 56) | static_cast<std::uint64_t>(index);
}
constexpr std::uint64_t cut(std::uint64_t cut_id) { return (2ULL << 56) | cut_id; }
constexpr std::uint64_t chord(std::size_t link_index) {
  return (3ULL << 56) | static_cast<std::uint64_t>(link_index);
}
}  // namespace row_key

/// A linear row over model variables, used for pooled cuts.
struct CutRow {
  std::vector<std::pair<std::size_t, double>> terms;
  double lower = -lp::kInf;
  double upper = lp::kInf;
  /// Stable, deterministic identity (assigned by the solver; see
  /// branch_and_bound.cpp).  Feeds row_key::cut() for basis remapping and
  /// keeps pool merges idempotent.
  std::uint64_t id = 0;
  /// For link tangents: the (link, point) dedup key.  -1 for other cuts.
  int link = -1;
  double point = 0.0;
};

/// Pool of globally valid linearizations.
class CutPool {
 public:
  /// Tangent of link `link_index` at `point`:
  ///   convex fn  ->  t >= fn(p) + fn'(p) (n - p)   (lower support)
  ///   concave fn ->  t <= fn(p) + fn'(p) (n - p)   (upper support)
  /// Duplicate points (within a relative tolerance) are skipped.
  /// Returns true if a cut was added.
  bool add_link_tangent(const Model& model,
                        const std::vector<Curvature>& curvature,
                        std::size_t link_index, double point,
                        std::uint64_t id = 0);

  /// OA cut for nonlinear constraint `nc_index` (convex g <= ub) at `x`:
  ///   g(x0) + grad g(x0) . (x - x0) <= ub.
  void add_nonlinear_cut(const Model& model, std::size_t nc_index,
                         std::span<const double> x, std::uint64_t id = 0);

  /// True when a (numerically) identical tangent is already pooled.
  bool has_link_tangent(std::size_t link_index, double point) const;

  /// Merge another pool's rows into this one.  Link tangents that duplicate
  /// an existing point are dropped; rows whose id is already present are
  /// dropped (idempotent re-merge).  Returns the number of rows added.
  /// Merge order is the delta's row order, so merging deltas in a fixed
  /// sequence yields a deterministic pool.
  std::size_t absorb(const CutPool& delta);

  /// Deterministic aging: when the pool exceeds `max_rows`, drop the oldest
  /// non-root cuts (root seed cuts -- id < 1<<16 -- are always kept) until
  /// the size is back under the cap.  Called only at deterministic points
  /// (epoch boundaries), so the pool contents never depend on thread count.
  void age_to(std::size_t max_rows);

  const std::vector<CutRow>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }

 private:
  std::vector<CutRow> rows_;
};

/// Resolve each link's curvature (declared or sampled over variable bounds).
std::vector<Curvature> resolve_curvatures(const Model& model);

/// Build the master LP for a node.
///   node_lower/node_upper: per-variable bounds for this node.
///   For each link the node-local chord over [lo(n), up(n)] is added; when
///   the interval has closed (lo == up) the link variable t is pinned to the
///   exact fn value instead.
///   `extra`, when non-null, is a second pool appended after `pool`'s rows
///   (worker-local cuts not yet merged into the shared pool).
///   `row_keys`, when non-null, receives one row_key per LP row in order,
///   for lp::map_basis.
[[nodiscard]] lp::LpProblem build_master_lp(
    const Model& model, const CutPool& pool,
    const std::vector<Curvature>& curvature,
    std::span<const double> node_lower, std::span<const double> node_upper,
    const CutPool* extra = nullptr,
    std::vector<std::uint64_t>* row_keys = nullptr);

/// Completion solve: fix every integer variable to its (rounded) value in
/// `x`, pin every link variable to the exact fn value, and re-solve the LP
/// for the remaining continuous variables.  Returns the completed point and
/// true objective, or nullopt if the fixed problem is infeasible.
/// When `warm` is non-empty it is remapped (via `warm_keys`, the row keys of
/// the LP it was captured on) onto the completion LP and used as a warm
/// start.
struct Completion {
  linalg::Vector x;
  double objective = 0.0;
};
std::optional<Completion> complete_integer_point(
    const Model& model, const CutPool& pool,
    const std::vector<Curvature>& curvature, std::span<const double> x,
    std::span<const double> node_lower, std::span<const double> node_upper,
    const CutPool* extra = nullptr, const lp::Basis* warm = nullptr,
    std::span<const std::uint64_t> warm_keys = {});

}  // namespace hslb::minlp
