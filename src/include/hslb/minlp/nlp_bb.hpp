// Nonlinear branch-and-bound (NLP-BB).
//
// The classical alternative to LP/NLP-based branch-and-bound that MINOTAUR
// also offers: every node solves the continuous NLP relaxation with the
// barrier solver and branching happens on fractional integer variables.
// Links are relaxed one-sided (t >= fn(n)), which is a valid convex
// relaxation when every link function is convex; integer candidates are
// completed exactly (t == fn(n)) before being accepted as incumbents.
//
// Restrictions (checked): no SOS1 sets (use the LP/NLP-BB solver for the
// discrete allocation-set models) and convex link functions.
#pragma once

#include "hslb/minlp/branch_and_bound.hpp"
#include "hslb/minlp/model.hpp"

namespace hslb::minlp {

struct NlpBbOptions {
  double integer_tol = 1e-6;
  double rel_gap = 1e-6;
  long max_nodes = 100000;
  /// Worker threads for node NLP solves; <= 0 picks hardware concurrency.
  /// Same deterministic epoch scheme as SolverOptions: the result is
  /// byte-identical for every thread count.
  int threads = 1;
  /// Nodes per epoch; thread-count independent.  1 reproduces the classic
  /// serial DFS loop exactly.
  int epoch_batch = 4;
};

/// Solve by NLP-based branch-and-bound.  Every link must provide `as_expr`.
[[nodiscard]] MinlpResult solve_nlp_bb(const Model& model,
                                       const NlpBbOptions& options = {});

}  // namespace hslb::minlp
