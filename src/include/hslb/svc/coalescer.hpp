// In-flight request coalescing (single-flight).
//
// When N identical requests are in flight at once, exactly one -- the
// *leader*, the first to join -- executes the solver; the other N-1
// (*followers*) attach to the leader's slot and receive a copy of the same
// outcome through a shared_future.  Combined with the solve cache this
// closes the classic stampede window: a miss storm on one hot key costs one
// solver run, not N.
//
// The coalescer owns no threads and runs no solver code; the service layer
// decides what a leader does and calls complete() with the outcome.
#pragma once

#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "hslb/common/expected.hpp"
#include "hslb/svc/request.hpp"

namespace hslb::svc {

/// What a request resolves to: the response, or a typed service error.
using SolveOutcome = common::Expected<AllocationResponse, Error>;
using ResponseFuture = std::shared_future<SolveOutcome>;

class Coalescer {
 public:
  struct Slot {
    std::promise<SolveOutcome> promise;
    ResponseFuture future;
    int followers = 0;  ///< requests coalesced onto this slot (not the leader)
  };

  struct Join {
    std::shared_ptr<Slot> slot;
    bool leader = false;  ///< true: caller must eventually call complete()
  };

  /// Attach to the in-flight slot for `key`, creating it (leader) if absent.
  Join join(const std::string& key);

  /// Resolve `key`'s slot with `outcome`, waking every attached future, and
  /// retire it so the next identical request starts a fresh flight.  The
  /// promise is fulfilled outside the lock: a future continuation must not
  /// be able to re-enter join() against a held mutex.
  void complete(const std::string& key, SolveOutcome outcome);

  std::size_t in_flight() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Slot>> slots_;
};

}  // namespace hslb::svc
