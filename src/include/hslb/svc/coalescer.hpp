// In-flight request coalescing (single-flight).
//
// When N identical requests are in flight at once, exactly one -- the
// *leader*, the first to join -- executes the solver; the other N-1
// (*followers*) attach to the leader's slot and receive a copy of the same
// outcome through a shared_future.  Combined with the solve cache this
// closes the classic stampede window: a miss storm on one hot key costs one
// solver run, not N.
//
// The coalescer owns no threads and runs no solver code; the service layer
// decides what a leader does and calls complete() with the outcome.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "hslb/common/expected.hpp"
#include "hslb/svc/request.hpp"

namespace hslb::svc {

/// What a request resolves to: the response, or a typed service error.
using SolveOutcome = common::Expected<AllocationResponse, Error>;
using ResponseFuture = std::shared_future<SolveOutcome>;

class Coalescer {
 public:
  /// Telemetry carried by a follower from join time to completion time: a
  /// follower's request span and coalesce-wait phase only *end* when the
  /// leader completes, on the leader's worker thread, so the closing side
  /// needs the opening side's span id and timestamps.  All-zero when
  /// tracing is off.
  struct Follower {
    std::uint64_t request_span = 0;  ///< svc.request span id (0 = off)
    double request_start_us = 0.0;   ///< request span open (session epoch)
    double wait_start_us = 0.0;      ///< coalesce-wait phase start
    int thread_id = 0;               ///< submitting thread's trace id
    long long request_id = 0;
  };

  struct Slot {
    std::promise<SolveOutcome> promise;
    ResponseFuture future;
    int followers = 0;  ///< requests coalesced onto this slot (not the leader)
    /// One entry per traced follower; written under the coalescer mutex
    /// while the slot is joinable, read by the completing thread after
    /// complete() retires the slot (the mutex in complete() orders the two).
    std::vector<Follower> follower_meta;
  };

  struct Join {
    std::shared_ptr<Slot> slot;
    bool leader = false;  ///< true: caller must eventually call complete()
  };

  /// Attach to the in-flight slot for `key`, creating it (leader) if absent.
  /// `meta` is recorded only when the caller ends up a follower and tracing
  /// is on (meta.request_span != 0).
  Join join(const std::string& key, const Follower& meta);
  Join join(const std::string& key);

  /// Resolve `key`'s slot with `outcome`, waking every attached future, and
  /// retire it so the next identical request starts a fresh flight.  The
  /// promise is fulfilled outside the lock: a future continuation must not
  /// be able to re-enter join() against a held mutex.  Returns the retired
  /// slot (null when the key had none) so the caller can close follower
  /// telemetry; no new followers can attach once it is returned.
  std::shared_ptr<Slot> complete(const std::string& key,
                                 SolveOutcome outcome);

  std::size_t in_flight() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Slot>> slots_;
};

}  // namespace hslb::svc
