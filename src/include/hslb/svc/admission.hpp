// p99-driven adaptive admission for the allocation service.
//
// Queue-depth-only shedding (ServiceConfig::max_queue) rejects work only
// after the queue is already full -- by then every queued request is likely
// to blow its deadline.  The admission controller instead watches the tail
// of the end-to-end latency distribution the telemetry layer already
// records (the `svc.request.ms` HDR histogram) and sheds *early*: when the
// measured p99 exceeds a headroom fraction of the request's deadline budget
// and the queue has started to form, new arrivals are turned away with
// kOverloaded instead of being queued to die.
//
// The p99 is refreshed from the histogram every `refresh_interval`
// decisions (a scrape-and-scan, cheap but not free) and cached between
// refreshes.  With `enabled` false (the default) admit() is uncondition-
// ally true and the service behaves exactly as before this controller
// existed.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>

#include "hslb/obs/metrics.hpp"

namespace hslb::svc {

struct AdmissionConfig {
  /// Off by default: pre-admission behaviour (queue-depth shedding only).
  bool enabled = false;
  /// Shed when measured p99 exceeds headroom * deadline budget.  < 1 sheds
  /// before the tail actually reaches the deadline -- the point of the
  /// controller is to act early.
  double headroom = 0.8;
  /// Histogram observations required before the controller may shed (a
  /// cold service has no tail worth trusting).
  long long min_observations = 32;
  /// Decisions between p99 refreshes; the value is cached in between.
  int refresh_interval = 16;
  /// Only shed when at least this many requests are already queued: an
  /// idle service should accept work even if the last busy period's tail
  /// was bad.
  std::size_t min_queue_depth = 1;
};

/// One decision's audit trail.
struct AdmissionDecision {
  bool admit = true;
  double p99_ms = 0.0;     ///< tail estimate used (0 before first refresh)
  double budget_ms = 0.0;  ///< headroom * deadline, what p99 was tested against
};

/// Thread-safe; one instance per Service.  Reads `svc.request.ms` from the
/// registry the service's telemetry writes into.
class AdmissionController {
 public:
  /// `metrics` is borrowed and must outlive the controller; it is both the
  /// p99 source and where decisions are exported (svc.shed.overload
  /// counter, svc.admission.p99_ms gauge).
  AdmissionController(AdmissionConfig config, obs::Registry* metrics);

  /// Decide whether to admit a request carrying `deadline_seconds` of
  /// budget while `queue_depth` requests are already waiting.
  AdmissionDecision admit(double deadline_seconds, std::size_t queue_depth);

  /// The cached tail estimate (refreshed at most every refresh_interval
  /// decisions; +inf when the tail escaped the histogram's last bucket).
  double last_p99_ms() const;
  long long shed_count() const;

 private:
  void refresh_p99();

  AdmissionConfig config_;
  obs::Registry* metrics_;
  obs::Counter* shed_counter_ = nullptr;
  obs::Gauge* p99_gauge_ = nullptr;

  std::mutex refresh_mutex_;
  std::atomic<long long> decisions_{0};
  std::atomic<double> p99_ms_{0.0};
  std::atomic<long long> shed_{0};
};

}  // namespace hslb::svc
