// Allocation-service wire types: the question a client asks (which layout
// should this machine slice run?), the answer the service returns, the typed
// error channel, and the canonical request key the solve cache and the
// in-flight coalescer share.
//
// Requests are *data only* -- no callbacks, no borrowed pointers -- so that
// two requests asking the same question canonicalize to the same key no
// matter how the caller assembled them.  Serving-time knobs that do not
// change the answer (the queue deadline, the solver thread count -- the
// solver's deterministic epoch scheme guarantees thread-count-invariant
// answers) are deliberately excluded from the key; everything that can
// change the solver's output is included.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hslb/cesm/campaign.hpp"
#include "hslb/hslb/layout_model.hpp"
#include "hslb/perf/fit.hpp"

namespace hslb::svc {

/// Why a request was not answered.  These are expected service outcomes
/// (load shedding, bad input), reported through common::Expected -- the
/// service never aborts on a request it cannot serve.
enum class ErrorCode {
  kQueueFull,         ///< bounded submission queue was full (shed at submit)
  kDeadlineExceeded,  ///< deadline expired before a worker picked it up
  kShutdown,          ///< service stopping; request not accepted/completed
  kUnknownCase,       ///< case_name not in the service catalog
  kBadRequest,        ///< malformed request (no timing data, missing fits...)
  kSolveFailed,       ///< pipeline rejected the request (solver error, ...)
  kOverloaded,        ///< adaptive admission shed: measured p99 over budget
};

const char* to_string(ErrorCode code);

/// The typed error channel.  `message` carries the root cause verbatim (the
/// solver exception's what(), the chaos fault label, the breaker verdict)
/// and `phase` names where on the request path it happened ("admission",
/// "queue", "solve", "ladder", "breaker") -- serving metadata, so a shed is
/// auditable instead of a bare enum.
struct Error {
  ErrorCode code = ErrorCode::kBadRequest;
  std::string message;
  std::string phase;
};

/// One allocation question.  Timing data comes in exactly one of two forms:
///   * `samples`  -- raw benchmark observations; the service runs fit+solve
///     (core::run_hslb_from_samples), or
///   * `fits`     -- precomputed Table II curves per component; the service
///     runs solve only (core::run_hslb_from_fits).
/// When both are present the fits win (they are what the solver consumes).
struct AllocationRequest {
  std::string case_name = "1deg";  ///< catalog key (machine + constraint sets)
  cesm::LayoutKind layout = cesm::LayoutKind::kHybrid;
  core::Objective objective = core::Objective::kMinMax;
  int total_nodes = 0;   ///< target machine slice N
  double tsync = -1.0;   ///< ice/land sync tolerance; < 0: pipeline auto rule
  bool constrain_atm = true;
  bool constrain_ocean = true;
  bool use_sos = true;
  /// MINLP wall-clock budget in seconds (SolverOptions::max_wall_seconds);
  /// <= 0 means unlimited.  Part of the cache key: the budget can change the
  /// answer (time-limited incumbent), so differently-budgeted requests must
  /// not share a cache line.
  double max_wall_seconds = 0.0;
  long max_nodes = 2'000'000;  ///< B&B node budget (SolverOptions::max_nodes)
  /// Worker threads for the MINLP solve (SolverOptions::threads); <= 0 picks
  /// hardware concurrency.  NOT part of the cache key: the solver's epoch
  /// scheme makes the answer byte-identical across thread counts, so
  /// requests that differ only here can safely share a cache line.
  int solver_threads = 1;
  /// Queue + wait deadline in seconds; <= 0 falls back to the service
  /// default.  A request still queued when it expires is shed with
  /// kDeadlineExceeded.  NOT part of the cache key: it bounds waiting, not
  /// the answer.
  double deadline_seconds = 0.0;
  /// Fit knobs used when solving from `samples` (ignored with `fits`).
  perf::FitOptions fit_options;
  std::vector<cesm::BenchmarkSample> samples;
  std::map<cesm::ComponentKind, perf::PerfModel> fits;
};

/// Which rung of the service's degradation ladder produced a response.
/// kExact covers both a fresh solve and a warm cache hit (a hit is a copy
/// of an exact answer; Ticket::cache_hit records the serving path).  The
/// lower rungs are brownout answers: still usable, flagged degraded.
enum class ServeLevel {
  kExact = 0,       ///< the MINLP solved (or a warm cache copy of it)
  kStaleCache = 1,  ///< expired-but-checksummed cache entry served stale
  kHeuristic = 2,   ///< grid-search allocation replaced the solver
};

const char* to_string(ServeLevel level);

/// The answer: a solved allocation plus enough solver provenance to audit
/// it.  Responses are value types; the cache stores and fans out copies.
/// Everything here is deterministic in the request, which is what makes a
/// cache hit byte-identical (see to_json) to a fresh solve.
struct AllocationResponse {
  core::Allocation allocation;
  double tsync_used = 0.0;
  minlp::MinlpStatus solver_status = minlp::MinlpStatus::kInfeasible;
  long nodes_explored = 0;
  bool degraded = false;
  /// Degradation-ladder provenance.  kExact answers serialize exactly as
  /// they did before the ladder existed (to_json appends the serve/fault
  /// fields only on the lower rungs), so chaos-off outputs stay
  /// byte-identical.
  ServeLevel served = ServeLevel::kExact;
  /// Why the ladder descended (the exact solve's root-cause failure);
  /// empty on kExact answers.
  std::string fault_detail;
  /// Scenario-case answers (corpus-registered cases solve the generalized
  /// N-component model, not the fixed CESM layout): per-component node
  /// counts and the schedule+comm objective.  Empty for classic cases;
  /// to_json appends them only when populated, so classic responses stay
  /// byte-identical.
  std::map<std::string, int> scenario_nodes;
  double scenario_objective = 0.0;
};

/// Canonical cache/coalescing key.  Invariant to how the caller assembled
/// the request: samples are sorted (component, nodes, seconds) before
/// serialization, map fields iterate in key order, and every float is
/// printed through a normalizing formatter (-0 folds to 0, shortest
/// round-trip form) so numerically equal requests collide.
std::string canonical_key(const AllocationRequest& request);

/// Canonical response serialization -- the byte-identity surface for cache
/// verification (a warm hit must serialize identically to a cold solve).
std::string to_json(const AllocationResponse& response);

/// The normalizing float formatter canonical_key/to_json use (shortest
/// round-trip decimal via %.17g with a -0.0 fold).  Exposed for tests.
std::string canonical_double(double value);

/// FNV-1a checksum over the canonical serialization -- the per-entry
/// integrity check the solve cache stores next to every response so a
/// poisoned shard is *detected* (checksum mismatch at lookup) rather than
/// silently served.
std::uint64_t response_checksum(const AllocationResponse& response);

}  // namespace hslb::svc
