// Per-case circuit breaker for the allocation service's solve path.
//
// A case whose solves keep failing (a poisoned catalog entry, a chaos storm,
// a genuinely infeasible configuration) should stop burning solver budget on
// every request.  The breaker watches a rolling window of solve outcomes per
// case and trips open when the failure share crosses a threshold; while
// open, requests shed immediately (the ladder can still serve stale/
// heuristic answers).  Recovery is probed: after a fixed number of rejected
// attempts the breaker goes half-open and lets a bounded number of trial
// solves through -- all must succeed to close, any failure re-opens.
//
// Every transition is count-based (outcomes seen, rejects absorbed, probes
// returned), never wall-clock-based, so a chaos replay drives the breaker
// through the exact same state sequence on every run.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>

namespace hslb::svc {

struct BreakerConfig {
  int window = 16;            ///< rolling outcome window per case
  int min_samples = 4;        ///< outcomes required before the breaker may trip
  double failure_ratio = 0.5; ///< trip when failures/window >= this
  int open_rejects = 4;       ///< rejects absorbed while open before probing
  int half_open_probes = 2;   ///< consecutive probe successes needed to close
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* to_string(BreakerState state);

/// Rolled-up lifetime tally for one breaker.
struct BreakerStats {
  BreakerState state = BreakerState::kClosed;
  long long rejected = 0;    ///< allow() calls turned away
  long long opened = 0;      ///< closed/half-open -> open transitions
  long long closed = 0;      ///< half-open -> closed recoveries
  long long outcomes = 0;    ///< record() calls observed
};

/// One case's breaker.  Thread-safe; all methods are O(window).
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config);

  /// Whether the caller may attempt a solve now.  While open this counts
  /// the reject and may transition to half-open; while half-open it admits
  /// at most `half_open_probes` concurrent trial solves.
  bool allow();

  /// Report the outcome of an attempt that allow() admitted.  Failures in
  /// half-open re-open immediately; enough failures in the rolling window
  /// trip a closed breaker.
  void record(bool success);

  BreakerState state() const;
  BreakerStats stats() const;

 private:
  void trip_open();  // requires mutex_ held

  BreakerConfig config_;
  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::kClosed;
  std::deque<bool> window_;     ///< recent outcomes, front = oldest
  int failures_in_window_ = 0;
  int rejects_while_open_ = 0;
  int probes_issued_ = 0;       ///< half-open trial solves admitted
  int probes_succeeded_ = 0;
  BreakerStats stats_;
};

}  // namespace hslb::svc
