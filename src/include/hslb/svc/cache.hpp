// Sharded LRU solve cache with TTL.
//
// Keys are canonical request strings (request.hpp); values are full
// AllocationResponses.  The key is hashed onto one of `shards` independent
// LRU maps, each behind its own mutex, so concurrent workers rarely
// contend.  Entries expire `ttl_seconds` after insertion (0 = never); a
// lookup that finds an expired entry removes it and reports a miss.
//
// Time is passed in explicitly (steady_clock time_points) rather than read
// inside, so TTL behaviour is testable without sleeping; the service layer
// passes the real clock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hslb/obs/metrics.hpp"
#include "hslb/svc/request.hpp"

namespace hslb::svc {

struct CacheConfig {
  std::size_t capacity = 1024;  ///< total entries across all shards
  std::size_t shards = 8;       ///< independent LRU maps (>= 1)
  double ttl_seconds = 0.0;     ///< entry lifetime; <= 0 means no expiry
};

/// Point-in-time tally (monotonic except `size`).
struct CacheStats {
  long long hits = 0;
  long long misses = 0;
  long long evictions = 0;    ///< LRU-capacity removals
  long long expirations = 0;  ///< TTL removals
  std::size_t size = 0;       ///< entries currently resident
};

class SolveCache {
 public:
  using Clock = std::chrono::steady_clock;

  /// `metrics` is optional and borrowed: when set, hit/miss/evict/expire
  /// counters are bumped in the registry (svc.cache.*) alongside the
  /// internal tally.  Instrument pointers are resolved once here -- the
  /// registry hands out stable references -- so the hot path never takes
  /// the registry lock.
  explicit SolveCache(CacheConfig config, obs::Registry* metrics = nullptr);

  /// The cached response, refreshing its LRU position; nullopt on miss or
  /// TTL expiry (the expired entry is removed).
  std::optional<AllocationResponse> get(const std::string& key,
                                        Clock::time_point now);

  /// Insert or overwrite.  Overwriting refreshes both the value and the
  /// insertion time; capacity overflow evicts the shard's LRU tail.
  void put(const std::string& key, AllocationResponse response,
           Clock::time_point now);

  CacheStats stats() const;
  std::size_t size() const;

 private:
  struct Entry {
    std::string key;
    AllocationResponse response;
    Clock::time_point inserted;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  Shard& shard_for(const std::string& key);
  bool expired(const Entry& entry, Clock::time_point now) const;

  CacheConfig config_;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
  std::atomic<long long> evictions_{0};
  std::atomic<long long> expirations_{0};

  obs::Counter* hit_counter_ = nullptr;
  obs::Counter* miss_counter_ = nullptr;
  obs::Counter* evict_counter_ = nullptr;
  obs::Counter* expire_counter_ = nullptr;
  obs::Gauge* size_gauge_ = nullptr;
};

}  // namespace hslb::svc
