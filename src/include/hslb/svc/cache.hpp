// Sharded LRU solve cache with TTL, per-entry checksums, and stale serving.
//
// Keys are canonical request strings (request.hpp); values are full
// AllocationResponses.  The key is hashed onto one of `shards` independent
// LRU maps, each behind its own mutex, so concurrent workers rarely
// contend.  Entries expire `ttl_seconds` after insertion (0 = never); a
// lookup that finds an expired entry reports a miss -- and removes it,
// unless `keep_expired` retains it for the degradation ladder's stale-serve
// rung (get_stale).
//
// Every entry carries an FNV-1a checksum of its canonical serialization,
// verified on every read: a poisoned shard (bit rot, a buggy writer, or the
// chaos layer's injected corruption) is detected and dropped as a miss --
// counted in `poison_detected` -- never silently served.
//
// Time is passed in explicitly (steady_clock time_points) rather than read
// inside, so TTL behaviour is testable without sleeping; the service layer
// passes the real clock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hslb/obs/metrics.hpp"
#include "hslb/svc/request.hpp"

namespace hslb::svc {

struct CacheConfig {
  std::size_t capacity = 1024;  ///< total entries across all shards
  std::size_t shards = 8;       ///< independent LRU maps (>= 1)
  double ttl_seconds = 0.0;     ///< entry lifetime; <= 0 means no expiry
  /// Retain expired entries (still counted against capacity, still evicted
  /// by LRU pressure) so get_stale can serve them as degraded answers.
  /// Off by default: the pre-ladder behaviour removes them at lookup.
  bool keep_expired = false;
};

/// Point-in-time tally (monotonic except `size`).
struct CacheStats {
  long long hits = 0;
  long long misses = 0;
  long long evictions = 0;        ///< LRU-capacity removals
  long long expirations = 0;      ///< TTL removals (or first expired sighting)
  long long stale_hits = 0;       ///< expired entries served via get_stale
  long long poison_detected = 0;  ///< checksum-mismatch entries dropped
  std::size_t size = 0;           ///< entries currently resident
};

class SolveCache {
 public:
  using Clock = std::chrono::steady_clock;

  /// `metrics` is optional and borrowed: when set, hit/miss/evict/expire/
  /// stale/poison counters are bumped in the registry (svc.cache.*)
  /// alongside the internal tally.  Instrument pointers are resolved once
  /// here -- the registry hands out stable references -- so the hot path
  /// never takes the registry lock.
  explicit SolveCache(CacheConfig config, obs::Registry* metrics = nullptr);

  /// The cached response, refreshing its LRU position; nullopt on miss, TTL
  /// expiry, or checksum mismatch.  Expired entries are removed unless
  /// keep_expired; poisoned entries are always removed.
  std::optional<AllocationResponse> get(const std::string& key,
                                        Clock::time_point now);

  /// The entry for `key` regardless of TTL -- the stale-serve rung of the
  /// degradation ladder.  Only checksum-valid bytes are ever returned (a
  /// poisoned entry is dropped and reported as nullopt); `stale_seconds`
  /// (optional) receives how far past its TTL the entry is (0 when fresh).
  std::optional<AllocationResponse> get_stale(const std::string& key,
                                              Clock::time_point now,
                                              double* stale_seconds = nullptr);

  /// Insert or overwrite.  Overwriting refreshes both the value and the
  /// insertion time; capacity overflow evicts the shard's LRU tail.  The
  /// entry's checksum is computed here, over the canonical serialization.
  void put(const std::string& key, AllocationResponse response,
           Clock::time_point now);

  /// Chaos hook: garble the stored bytes of `key`'s entry *without*
  /// refreshing its checksum, simulating a poisoned shard.  Returns false
  /// when the key is not resident.  Test/bench machinery only.
  bool poison(const std::string& key);

  CacheStats stats() const;
  std::size_t size() const;

 private:
  struct Entry {
    std::string key;
    AllocationResponse response;
    Clock::time_point inserted;
    std::uint64_t checksum = 0;
    bool expired_counted = false;  ///< expiration tallied once per entry
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  Shard& shard_for(const std::string& key);
  bool expired(const Entry& entry, Clock::time_point now) const;
  void count_poison();

  CacheConfig config_;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
  std::atomic<long long> evictions_{0};
  std::atomic<long long> expirations_{0};
  std::atomic<long long> stale_hits_{0};
  std::atomic<long long> poison_detected_{0};

  obs::Counter* hit_counter_ = nullptr;
  obs::Counter* miss_counter_ = nullptr;
  obs::Counter* evict_counter_ = nullptr;
  obs::Counter* expire_counter_ = nullptr;
  obs::Counter* stale_counter_ = nullptr;
  obs::Counter* poison_counter_ = nullptr;
  obs::Gauge* size_gauge_ = nullptr;
};

}  // namespace hslb::svc
