// The in-process allocation service: solve cache -> in-flight coalescer ->
// bounded worker pool -> HSLB pipeline.
//
//   submit(request)
//     |-- canonical_key(request)
//     |-- SolveCache.get ----------------- hit: ready future, no queueing
//     |-- Coalescer.join ----------------- follower: leader's future
//     |-- adaptive admission ------------- p99 over budget: kOverloaded shed
//     `-- bounded queue -> worker pool --- leader: ladder, cache, fan out
//
// Backpressure is explicit and typed: adaptive admission sheds early when
// the measured request p99 outruns the deadline budget (kOverloaded), a
// full queue sheds at submit time (kQueueFull), a request whose deadline
// expires while queued is shed when dequeued (kDeadlineExceeded), and
// shutdown resolves everything still queued (kShutdown).  Nothing aborts;
// every submitted future resolves.
//
// The solve path is a *degradation ladder*, gated per case by a circuit
// breaker:
//
//   breaker.allow -> exact solve (chaos-wrapped, one hedged retry for
//   leader-death/worker-abort faults) -> stale cache (expired but
//   checksummed, marked degraded) -> heuristic grid search (fits-based
//   requests) -> typed kSolveFailed shed carrying the root cause.
//
// Every brownout answer is flagged (AllocationResponse::served +
// fault_detail); only exact answers enter the cache.  With the default
// ChaosSpec (disabled) and healthy solves the service takes the exact
// pre-ladder code path and outputs stay byte-identical.
//
// The workers run the ordinary pipeline entry points, which are reentrant:
// all state lives in the per-call config/result, and the obs context is
// thread-local, so each worker installs the service's sinks for exactly the
// requests it runs.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "hslb/cesm/configs.hpp"
#include "hslb/obs/obs.hpp"
#include "hslb/scen/scenario.hpp"
#include "hslb/svc/admission.hpp"
#include "hslb/svc/breaker.hpp"
#include "hslb/svc/cache.hpp"
#include "hslb/svc/chaos.hpp"
#include "hslb/svc/coalescer.hpp"
#include "hslb/svc/request.hpp"

namespace hslb::svc {

struct ServiceConfig {
  int workers = 4;
  std::size_t queue_capacity = 256;
  /// Applied when a request carries no deadline of its own; <= 0: none.
  double default_deadline_seconds = 0.0;
  CacheConfig cache;
  /// Deterministic fault injection (default: disabled, guaranteed no-op).
  ChaosSpec chaos;
  /// Per-case circuit breaker over exact-solve outcomes.  Enabled by
  /// default: a closed breaker is invisible (it only changes behaviour
  /// after repeated solve failures).
  BreakerConfig breaker;
  bool breaker_enabled = true;
  /// Brownout rungs below the exact solve (stale cache, heuristic grid
  /// search).  Enabled by default: the rungs only engage when the exact
  /// attempt failed, so healthy traffic never sees them.
  bool ladder_enabled = true;
  /// One extra exact attempt when a chaos fault killed the leader or the
  /// worker (retryable deaths, unlike solver exceptions), budgeted against
  /// the request deadline.
  bool hedged_retry = true;
  /// p99-driven admission (default: disabled -> queue-depth shedding only).
  AdmissionConfig admission;
  /// Borrowed observability sinks, installed on each worker around each
  /// solve (thread-local, so concurrent workers do not interfere).  The
  /// registry also receives the service counters (svc.requests, svc.cache.*,
  /// svc.coalesced, svc.shed.*, svc.solves) and per-solve latency
  /// histograms.  Null: service-level metrics are still tallied in stats().
  obs::Options obs;
  /// Register the two paper cases ("1deg", "eighth") at construction.
  bool register_builtin_cases = true;
};

/// Monotonic service tallies (also mirrored into the obs registry).
struct ServiceStats {
  long long submitted = 0;
  long long cache_hits = 0;
  long long coalesced = 0;   ///< follower requests (no queue entry)
  long long solved = 0;      ///< solver executions completed by workers
  long long shed_queue_full = 0;
  long long shed_deadline = 0;
  long long shed_overload = 0;    ///< adaptive admission sheds (kOverloaded)
  long long shed_breaker = 0;     ///< open-breaker rejections of the solve
  long long failed = 0;      ///< kBadRequest/kUnknownCase/kSolveFailed
  long long served_stale = 0;     ///< stale-cache brownout answers
  long long served_heuristic = 0; ///< grid-search brownout answers
  long long hedged_retries = 0;   ///< extra exact attempts after a death
  long long chaos_injected = 0;   ///< faults the chaos layer fired
};

class AllocationService {
 public:
  /// How submit() disposed of a request -- serving metadata that lives
  /// outside the response payload so cached/coalesced answers stay
  /// byte-identical to cold solves.
  struct Ticket {
    ResponseFuture future;
    std::string key;          ///< canonical request key
    long long request_id = 0; ///< per-service submission sequence number
    bool cache_hit = false;   ///< resolved immediately from the cache
    bool coalesced = false;   ///< attached to an identical in-flight request
  };

  explicit AllocationService(ServiceConfig config);
  ~AllocationService();
  AllocationService(const AllocationService&) = delete;
  AllocationService& operator=(const AllocationService&) = delete;

  /// Add (or replace) a case the catalog serves under `key`.
  void register_case(const std::string& key, cesm::CaseConfig config);

  /// Add (or replace) a scenario case, served under the scenario's name.
  /// Requests naming it solve the generalized N-component model instead of
  /// the fixed CESM layout; they need no timing data (the model lives in
  /// the catalog), and their cache keys incorporate the scenario's
  /// fingerprint so re-registering a changed scenario under the same name
  /// can never serve a stale answer.  Validates; throws InvalidArgument on
  /// a malformed scenario.
  void register_scenario(scen::Scenario scenario);

  /// The registered scenario under `name`, or null.
  std::shared_ptr<const scen::Scenario> find_scenario(
      const std::string& name) const;

  /// Enqueue a request.  Never blocks on solver work; the returned future
  /// always resolves (response, or typed error on shed/shutdown/bad input).
  Ticket submit(const AllocationRequest& request);

  /// submit() + wait: the blocking convenience wrapper.
  SolveOutcome solve(const AllocationRequest& request);

  /// Stop accepting work, resolve everything still queued with kShutdown,
  /// and join the workers.  Idempotent; the destructor calls it.
  void shutdown();

  ServiceStats stats() const;
  CacheStats cache_stats() const { return cache_.stats(); }
  std::size_t queue_depth() const;

  /// The named case's breaker tally (created on first solve attempt);
  /// nullopt when the case has seen no solve traffic.
  std::optional<BreakerStats> breaker_stats(const std::string& case_name) const;

 private:
  struct Job {
    std::string key;
    AllocationRequest request;
    std::shared_ptr<Coalescer::Slot> slot;
    std::chrono::steady_clock::time_point submitted;
    double deadline_seconds = 0.0;  ///< resolved (request or default); <=0 none
    // Request-telemetry context, carried across the thread hop (all zero
    // when tracing is off).  The request span opens on the submitting
    // thread and closes on the worker that resolves it; the queue phase
    // likewise spans the hop, so both are recorded as manual events from
    // these timestamps rather than as RAII spans.
    long long request_id = 0;
    std::uint64_t request_span = 0;  ///< pre-allocated svc.request span id
    double request_start_us = 0.0;   ///< submit() entry (session epoch)
    double queue_start_us = 0.0;     ///< enqueue time
    int submit_tid = 0;              ///< submitting thread's trace id
  };

  /// What the ladder produced for one dequeued job.
  struct ServeResult {
    SolveOutcome outcome;
    const char* label = "ok";  ///< close_request outcome tag
  };

  void worker_loop();
  /// The degradation ladder: breaker gate -> exact attempt (chaos-wrapped,
  /// hedged) -> stale cache -> heuristic -> typed shed.  `waited_seconds`
  /// is the queue wait already spent against the deadline.
  ServeResult serve(const Job& job, double waited_seconds);
  /// One chaos-wrapped exact attempt + optional hedged retry.
  /// `sim_stall_seconds` accumulates simulated stall time charged against
  /// the deadline budget; `last_attempt` reports the final attempt index
  /// (the poison draw's replay axis).
  SolveOutcome attempt_exact(const Job& job, double waited_seconds,
                             double* sim_stall_seconds, int* last_attempt);
  /// Grid-search brownout answer from request-supplied fits; a typed error
  /// when the request carries none (samples-only requests have no curves
  /// to search without a fit pass).
  SolveOutcome heuristic_serve(const Job& job);
  SolveOutcome execute(const Job& job);
  /// Exact solve for a scenario case: lower the scenario onto the MINLP
  /// form and run the same branch-and-bound the classic path uses.
  SolveOutcome execute_scenario(const Job& job,
                                const scen::Scenario& scenario);
  CircuitBreaker& breaker_for(const std::string& case_name);
  /// Next per-key solve-attempt index (the chaos injector's replay axis).
  int next_attempt(const std::string& key);
  void count_chaos(ChaosKind kind);
  std::shared_ptr<const cesm::CaseConfig> find_case(
      const std::string& name) const;

  /// Record a closed phase event under `request_span` (no-op sans trace).
  /// `span_id` 0 allocates a fresh id; pass a pre-allocated id for phases
  /// whose children needed the id before the phase event existed (solve).
  void record_phase(const char* name, std::uint64_t request_span,
                    double start_us, int thread_id,
                    std::uint64_t span_id = 0) const;
  /// Record the svc.request root event and observe svc.request.ms.  The
  /// histogram uses the trace-derived duration when tracing is on and
  /// `fallback_total_ms` otherwise.
  void close_request(std::uint64_t request_span, long long request_id,
                     double start_us, int thread_id, const char* outcome,
                     int followers, double fallback_total_ms) const;
  /// coalescer_.complete + close every follower's coalesce-wait phase and
  /// request span with this outcome.
  void complete_flight(const std::string& key, SolveOutcome outcome,
                       const char* outcome_label);

  ServiceConfig config_;
  SolveCache cache_;
  Coalescer coalescer_;
  std::unique_ptr<ChaosInjector> chaos_;        ///< null when chaos disabled
  std::unique_ptr<AdmissionController> admission_;  ///< null when disabled

  mutable std::mutex catalog_mutex_;
  std::map<std::string, std::shared_ptr<const cesm::CaseConfig>> catalog_;

  /// Scenario cases plus their precomputed fingerprints (mixed into cache
  /// keys at submit time).  Guarded by catalog_mutex_.
  struct ScenarioEntry {
    std::shared_ptr<const scen::Scenario> scenario;
    std::string fingerprint;
  };
  std::map<std::string, ScenarioEntry> scenario_catalog_;
  /// Entry lookup (scenario + fingerprint); nullopt when unregistered.
  std::optional<ScenarioEntry> find_scenario_entry(
      const std::string& name) const;

  mutable std::mutex breaker_mutex_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;

  std::mutex attempt_mutex_;
  std::map<std::string, int> attempts_;  ///< per-key exact-solve attempt count

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  std::atomic<long long> submitted_{0};
  std::atomic<long long> cache_hits_{0};
  std::atomic<long long> coalesced_{0};
  std::atomic<long long> solved_{0};
  std::atomic<long long> shed_queue_full_{0};
  std::atomic<long long> shed_deadline_{0};
  std::atomic<long long> shed_overload_{0};
  std::atomic<long long> shed_breaker_{0};
  std::atomic<long long> failed_{0};
  std::atomic<long long> served_stale_{0};
  std::atomic<long long> served_heuristic_{0};
  std::atomic<long long> hedged_retries_{0};
  std::atomic<long long> chaos_injected_{0};
};

}  // namespace hslb::svc
