// The in-process allocation service: solve cache -> in-flight coalescer ->
// bounded worker pool -> HSLB pipeline.
//
//   submit(request)
//     |-- canonical_key(request)
//     |-- SolveCache.get ----------------- hit: ready future, no queueing
//     |-- Coalescer.join ----------------- follower: leader's future
//     `-- bounded queue -> worker pool --- leader: solve, cache, fan out
//
// Backpressure is explicit and typed: a full queue sheds at submit time
// (kQueueFull), a request whose deadline expires while queued is shed when
// dequeued (kDeadlineExceeded), and shutdown resolves everything still
// queued (kShutdown).  Nothing aborts; every submitted future resolves.
//
// The workers run the ordinary pipeline entry points, which are reentrant:
// all state lives in the per-call config/result, and the obs context is
// thread-local, so each worker installs the service's sinks for exactly the
// requests it runs.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hslb/cesm/configs.hpp"
#include "hslb/obs/obs.hpp"
#include "hslb/svc/cache.hpp"
#include "hslb/svc/coalescer.hpp"
#include "hslb/svc/request.hpp"

namespace hslb::svc {

struct ServiceConfig {
  int workers = 4;
  std::size_t queue_capacity = 256;
  /// Applied when a request carries no deadline of its own; <= 0: none.
  double default_deadline_seconds = 0.0;
  CacheConfig cache;
  /// Borrowed observability sinks, installed on each worker around each
  /// solve (thread-local, so concurrent workers do not interfere).  The
  /// registry also receives the service counters (svc.requests, svc.cache.*,
  /// svc.coalesced, svc.shed.*, svc.solves) and per-solve latency
  /// histograms.  Null: service-level metrics are still tallied in stats().
  obs::Options obs;
  /// Register the two paper cases ("1deg", "eighth") at construction.
  bool register_builtin_cases = true;
};

/// Monotonic service tallies (also mirrored into the obs registry).
struct ServiceStats {
  long long submitted = 0;
  long long cache_hits = 0;
  long long coalesced = 0;   ///< follower requests (no queue entry)
  long long solved = 0;      ///< solver executions completed by workers
  long long shed_queue_full = 0;
  long long shed_deadline = 0;
  long long failed = 0;      ///< kBadRequest/kUnknownCase/kSolveFailed
};

class AllocationService {
 public:
  /// How submit() disposed of a request -- serving metadata that lives
  /// outside the response payload so cached/coalesced answers stay
  /// byte-identical to cold solves.
  struct Ticket {
    ResponseFuture future;
    std::string key;          ///< canonical request key
    long long request_id = 0; ///< per-service submission sequence number
    bool cache_hit = false;   ///< resolved immediately from the cache
    bool coalesced = false;   ///< attached to an identical in-flight request
  };

  explicit AllocationService(ServiceConfig config);
  ~AllocationService();
  AllocationService(const AllocationService&) = delete;
  AllocationService& operator=(const AllocationService&) = delete;

  /// Add (or replace) a case the catalog serves under `key`.
  void register_case(const std::string& key, cesm::CaseConfig config);

  /// Enqueue a request.  Never blocks on solver work; the returned future
  /// always resolves (response, or typed error on shed/shutdown/bad input).
  Ticket submit(const AllocationRequest& request);

  /// submit() + wait: the blocking convenience wrapper.
  SolveOutcome solve(const AllocationRequest& request);

  /// Stop accepting work, resolve everything still queued with kShutdown,
  /// and join the workers.  Idempotent; the destructor calls it.
  void shutdown();

  ServiceStats stats() const;
  CacheStats cache_stats() const { return cache_.stats(); }
  std::size_t queue_depth() const;

 private:
  struct Job {
    std::string key;
    AllocationRequest request;
    std::shared_ptr<Coalescer::Slot> slot;
    std::chrono::steady_clock::time_point submitted;
    double deadline_seconds = 0.0;  ///< resolved (request or default); <=0 none
    // Request-telemetry context, carried across the thread hop (all zero
    // when tracing is off).  The request span opens on the submitting
    // thread and closes on the worker that resolves it; the queue phase
    // likewise spans the hop, so both are recorded as manual events from
    // these timestamps rather than as RAII spans.
    long long request_id = 0;
    std::uint64_t request_span = 0;  ///< pre-allocated svc.request span id
    double request_start_us = 0.0;   ///< submit() entry (session epoch)
    double queue_start_us = 0.0;     ///< enqueue time
    int submit_tid = 0;              ///< submitting thread's trace id
  };

  void worker_loop();
  SolveOutcome execute(const Job& job);
  std::shared_ptr<const cesm::CaseConfig> find_case(
      const std::string& name) const;

  /// Record a closed phase event under `request_span` (no-op sans trace).
  /// `span_id` 0 allocates a fresh id; pass a pre-allocated id for phases
  /// whose children needed the id before the phase event existed (solve).
  void record_phase(const char* name, std::uint64_t request_span,
                    double start_us, int thread_id,
                    std::uint64_t span_id = 0) const;
  /// Record the svc.request root event and observe svc.request.ms.  The
  /// histogram uses the trace-derived duration when tracing is on and
  /// `fallback_total_ms` otherwise.
  void close_request(std::uint64_t request_span, long long request_id,
                     double start_us, int thread_id, const char* outcome,
                     int followers, double fallback_total_ms) const;
  /// coalescer_.complete + close every follower's coalesce-wait phase and
  /// request span with this outcome.
  void complete_flight(const std::string& key, SolveOutcome outcome,
                       const char* outcome_label);

  ServiceConfig config_;
  SolveCache cache_;
  Coalescer coalescer_;

  mutable std::mutex catalog_mutex_;
  std::map<std::string, std::shared_ptr<const cesm::CaseConfig>> catalog_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  std::atomic<long long> submitted_{0};
  std::atomic<long long> cache_hits_{0};
  std::atomic<long long> coalesced_{0};
  std::atomic<long long> solved_{0};
  std::atomic<long long> shed_queue_full_{0};
  std::atomic<long long> shed_deadline_{0};
  std::atomic<long long> failed_{0};
};

}  // namespace hslb::svc
