// Deterministic chaos injection for the allocation service.
//
// The campaign-level FaultInjector (hslb/cesm/fault.hpp) hardens Step 1
// against a flaky machine; this layer does the same for the *request path*:
// a ChaosSpec declares per-attempt probabilities for the failure classes a
// production allocation service meets (solver exceptions, solver stalls,
// cache-shard poison, coalescer leader death, worker-thread aborts), and a
// ChaosInjector turns (request key, attempt) identities into reproducible
// fault draws.
//
// Every draw is a pure function of (spec seed, FNV-1a hash of the canonical
// request key, attempt index), mixed through cesm::mix_fault_key -- the
// same hash the campaign injector draws through -- so a chaos run replays
// exactly regardless of worker count, thread interleaving, or wall clock.
// Stalls are *simulated* against the solver's wall budget (the simulated
// clock idiom of the gather campaign): the injector never sleeps, it
// declares how many seconds the stalled solve would have burned.
//
// A default ChaosSpec is a guaranteed no-op: the service takes the exact
// pre-chaos code path and outputs stay byte-identical.
#pragma once

#include <cstdint>
#include <string>

#include "hslb/cesm/fault.hpp"

namespace hslb::svc {

/// What the injector did to one solve attempt (or cache insert).
enum class ChaosKind {
  kNone,            ///< the attempt proceeds cleanly
  kSolveException,  ///< the solver throws mid-solve
  kSolveStall,      ///< the solver stalls past its wall budget (simulated)
  kCachePoison,     ///< the cached entry's bytes are garbled after insert
  kLeaderDeath,     ///< the coalescer leader dies mid-solve
  kWorkerAbort,     ///< the worker thread aborts and is "respawned"
};

const char* to_string(ChaosKind kind);

/// Per-attempt chaos probabilities.  All default to zero: a default spec is
/// disabled and the service takes the exact pre-chaos code path.
struct ChaosSpec {
  double solve_exception_prob = 0.0;
  double solve_stall_prob = 0.0;
  double cache_poison_prob = 0.0;  ///< drawn per cache insert, not per solve
  double leader_death_prob = 0.0;
  double worker_abort_prob = 0.0;

  /// Simulated seconds a kSolveStall burns (charged against the request's
  /// deadline budget; the injector never sleeps for real).
  double stall_seconds = 30.0;

  std::uint64_t seed = 0xC4A05ull;

  /// Attempts with index < exempt_first_attempts never fault -- lets a
  /// scripted scenario (or a bench warmup round) populate caches cleanly
  /// before the chaos starts.
  int exempt_first_attempts = 0;
  /// Width of the faulting attempt window after the exempt prefix; < 0
  /// means unbounded.  Attempts at index >= exempt_first_attempts +
  /// max_fault_attempts are clean again, so a test can script
  /// "fail once, then recover" deterministically.
  int max_fault_attempts = -1;

  /// True when any fault class can fire.
  bool enabled() const;
  /// Total per-solve probability that some solve-path fault fires
  /// (excludes cache_poison_prob, which draws per insert).
  double solve_rate() const;

  /// A spec whose fault classes sum to `rate` (the "--chaos-rate" flag),
  /// split across the classes in realistic proportions: solver exceptions
  /// and stalls dominate, leader deaths and worker aborts are rarer, and a
  /// matching share of cache inserts is poisoned.
  static ChaosSpec uniform(double rate, std::uint64_t seed = 0xC4A05ull);
};

/// Deterministic chaos oracle.  Stateless between calls: each decision is a
/// pure function of (spec, key hash, attempt), so draws can be made from
/// any thread in any order and a run replays exactly under the same seed.
class ChaosInjector {
 public:
  explicit ChaosInjector(ChaosSpec spec);

  const ChaosSpec& spec() const { return spec_; }

  /// The solve-path fault (or kNone) injected into solve attempt `attempt`
  /// of the request identified by `key_hash`.  Never returns kCachePoison.
  ChaosKind draw_solve(std::uint64_t key_hash, int attempt) const;

  /// Whether the cache insert after solve attempt `attempt` is poisoned.
  bool draw_poison(std::uint64_t key_hash, int attempt) const;

  /// FNV-1a hash of a canonical request key -- the run_key every draw for
  /// that request is salted with.
  static std::uint64_t key_hash(const std::string& key);

 private:
  bool in_fault_window(int attempt) const;

  ChaosSpec spec_;
};

}  // namespace hslb::svc
