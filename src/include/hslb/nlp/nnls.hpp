// Non-negative least squares (Lawson-Hanson active set).
//
// Used by the variable-projection fitter: for a fixed exponent c, the
// Table II model  T(n) = a/n + b n^c + d  is linear in (a, b, d) with the
// paper's positivity constraint a, b, d >= 0 -- exactly an NNLS problem.
#pragma once

#include "hslb/linalg/matrix.hpp"

namespace hslb::nlp {

struct NnlsResult {
  linalg::Vector x;            ///< minimizer, elementwise >= 0
  double residual_norm = 0.0;  ///< ||A x - b||_2
  bool converged = true;       ///< false only if the iteration cap was hit
  int iterations = 0;
};

/// Solve  min ||A x - b||_2  subject to  x >= 0.
[[nodiscard]] NnlsResult solve_nnls(const linalg::Matrix& a,
                                    std::span<const double> b,
                                    int max_iterations = 200);

}  // namespace hslb::nlp
