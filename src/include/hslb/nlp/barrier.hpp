// Primal-dual interior-point solver for smooth inequality-constrained NLPs.
//
// Plays the role filterSQP plays inside MINOTAUR: solving the continuous
// relaxations of the layout MINLPs.  Those relaxations are convex (the
// fitted coefficients a, b, d are nonnegative), so the interior-point
// iteration converges to the global optimum of the relaxation.
//
// Problem form:
//   min  f(x)
//   s.t. g_i(x) <= 0            (smooth, from the expr DSL)
//        lo <= x <= up          (box, entries may be infinite)
//
// Method: infeasible-start primal-dual path following.  Finite box bounds
// are folded into the inequality set; each inequality carries a slack s_i>0
// and multiplier z_i>0, Newton steps solve the perturbed KKT system
//   grad f + J^T z = 0,   g + s = 0,   S Z e = mu e,
// with fraction-to-boundary steps and residual-norm backtracking.  No
// feasible starting point is required.
#pragma once

#include <optional>
#include <vector>

#include "hslb/expr/expr.hpp"
#include "hslb/linalg/matrix.hpp"

namespace hslb::nlp {

struct NlpProblem {
  std::size_t num_vars = 0;
  expr::Expr objective;
  std::vector<expr::Expr> constraints;  ///< each g_i(x) <= 0
  linalg::Vector lower;                 ///< size num_vars; -inf allowed
  linalg::Vector upper;                 ///< size num_vars; +inf allowed
};

enum class NlpStatus {
  kOptimal,        ///< KKT satisfied to tolerance
  kInfeasible,     ///< primal residual would not converge
  kIterationLimit,
};

const char* to_string(NlpStatus status);

struct BarrierOptions {
  double sigma = 0.2;          ///< centering parameter (mu shrink per step)
  double gap_tol = 1e-9;       ///< complementarity target s.z/m
  double residual_tol = 1e-7;  ///< KKT residual tolerance (scaled)
  int max_iterations = 300;
  double interior_margin = 1e-10;  ///< slack floor at initialization
};

struct NlpResult {
  NlpStatus status = NlpStatus::kIterationLimit;
  linalg::Vector x;
  double objective = 0.0;
  int newton_iterations = 0;
};

/// Solve the NLP.  `start` (if given) seeds the primal point; it does not
/// need to be feasible -- the method is infeasible-start.
[[nodiscard]] NlpResult solve_barrier(
    const NlpProblem& problem,
    std::optional<linalg::Vector> start = std::nullopt,
    const BarrierOptions& options = {});

}  // namespace hslb::nlp
