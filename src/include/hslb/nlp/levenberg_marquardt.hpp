// Box-constrained Levenberg-Marquardt for nonlinear least squares.
//
// Solves  min_theta  1/2 ||r(theta)||^2  subject to  lo <= theta <= up.
// Bounds are handled by projection of the trial step; for the well-scaled
// fitting problems of Table II this is robust and fast.  The caller supplies
// residuals and (optionally) an analytic Jacobian; a forward-difference
// Jacobian is used otherwise.
#pragma once

#include <functional>

#include "hslb/linalg/matrix.hpp"

namespace hslb::nlp {

/// Residual callback.  Fill `residuals` (size fixed by the problem) and, if
/// `jacobian` is non-null, the m x n Jacobian d r_i / d theta_j.
using ResidualFn = std::function<void(std::span<const double> theta,
                                      linalg::Vector& residuals,
                                      linalg::Matrix* jacobian)>;

/// Residual loss.  kLeastSquares is the classic 1/2 sum r_i^2; kHuber
/// minimizes sum rho_delta(r_i) via iteratively reweighted least squares
/// (IRLS), bounding the influence of outlier residuals -- the right choice
/// when fitting curves to timing samples that may contain corrupt values.
enum class LmLoss { kLeastSquares, kHuber };

struct LmOptions {
  int max_iterations = 200;
  double gradient_tol = 1e-10;   ///< stop when ||J^T r||_inf below this
  double step_tol = 1e-12;       ///< stop when the step is negligible
  double initial_lambda = 1e-3;  ///< initial damping
  LmLoss loss = LmLoss::kLeastSquares;
  /// Huber transition point: residuals beyond `huber_delta` scale factors
  /// of the residuals' median absolute deviation get down-weighted.  The
  /// threshold adapts to the residual scale each IRLS round.
  double huber_delta = 1.345;
  int irls_rounds = 5;           ///< reweighting rounds for kHuber
};

struct LmResult {
  linalg::Vector theta;   ///< best parameters found
  double cost = 0.0;      ///< 1/2 ||r||^2 at theta
  int iterations = 0;
  bool converged = false;
};

/// Run LM from `theta0` (projected into the box first).
/// `num_residuals` is the length of the residual vector r.
[[nodiscard]] LmResult minimize_lm(const ResidualFn& fn,
                                   std::span<const double> theta0,
                                   std::span<const double> lower,
                                   std::span<const double> upper,
                                   std::size_t num_residuals,
                                   const LmOptions& options = {});

}  // namespace hslb::nlp
