// Deterministic seeded scenario-corpus generator.
//
// Emits graded families -- {small, medium, large} x {homogeneous,
// heterogeneous} x {plain, memcomm} -- of synthetic scenarios, each carrying
// either a known optimum (planted by construction: a separable fully-
// sequential schedule whose optimum is a sum of independent 1-D
// minimizations, computed exactly by integer scan) or a certified
// [bound, incumbent] bracket (resource-relaxation lower bound + greedy
// heuristic upper bound).  Generation is a pure function of the seed: the
// same seed produces a byte-identical corpus on every run and machine,
// regardless of thread counts (the generator is single-threaded by design).
//
// Heterogeneous families model per-device cost curves: each component draws
// a device-class speed factor that scales its curve, the functional-
// performance-model view of a machine with mixed node types.
#pragma once

#include <string>
#include <vector>

#include "hslb/common/expected.hpp"
#include "hslb/report/result_set.hpp"
#include "hslb/scen/scenario.hpp"

namespace hslb::scen {

/// One corpus family (size grade x device mix x constraint mix).
struct Family {
  std::string name;          ///< e.g. "large_hetero_memcomm"
  int size_grade = 0;        ///< 0 small, 1 medium, 2 large
  bool heterogeneous = false;
  bool memcomm = false;      ///< memory footprints + comm edges enabled
};

/// The twelve graded families, in canonical (generation) order.
std::vector<Family> corpus_families();

struct GenerateOptions {
  std::uint64_t seed = 2014;
  int scenarios_per_family = 18;  ///< 18 x 12 families = 216 scenarios
};

/// A generated scenario plus its provenance.
struct GeneratedScenario {
  Scenario scenario;        ///< expectations filled (optimum or bound pair)
  std::string family;
  int index_in_family = 0;
};

/// Generate the full corpus.  Deterministic in `options`.
std::vector<GeneratedScenario> generate_corpus(const GenerateOptions& options);

/// Write the corpus as one canonical .scen file per scenario
/// (scen_<family>_<NNN>.scen) plus corpus.json, a PR 5 schema ResultSet
/// manifest (one series per family; planted/bound/incumbent/size cells, all
/// deterministic, so its fingerprint covers the whole corpus).  Returns
/// false on I/O failure.
bool write_corpus(const std::string& directory,
                  const std::vector<GeneratedScenario>& corpus,
                  const GenerateOptions& options);

/// Build the manifest ResultSet written by write_corpus (exposed so the
/// determinism test can compare manifests without touching the disk).
report::ResultSet corpus_manifest(
    const std::vector<GeneratedScenario>& corpus,
    const GenerateOptions& options);

/// Load every *.scen file under `directory` (sorted by filename, so the
/// order is stable across platforms).  Files that fail to parse report a
/// typed error naming the file.
struct CorpusLoadError {
  std::string path;
  std::string message;
};

common::Expected<std::vector<Scenario>, CorpusLoadError> load_corpus(
    const std::string& directory);

}  // namespace hslb::scen
