// The scenario DSL: a small line-oriented text format with a strict parser
// (typed errors carrying line context, mirroring TimingParseError) and a
// canonical printer (scenario.hpp's print_scenario).
//
//   # comment lines and blank lines are ignored
//   scenario coastal_12
//   machine nodes=256 cores_per_node=8 mem_gb_per_node=64
//   component atm curve=pow a=40000 b=0.001 c=1.2 d=10 mem_gb=480
//   component ocn curve=commpow a=25000 b=0.002 c=1.1 d=20 e=0.004
//   component ice curve=piecewise points=8:900,32:400,128:210 min_nodes=2
//   component lnd curve=pow a=3000 b=0 c=1 d=2 allowed=8,16,32,64
//   comm atm ocn 0.003
//   schedule ocn | (ice | lnd) -> atm
//   expect bound=101.5 incumbent=118.25
//
// Schedule grammar ('|' binds looser than '->'):
//   expr := seq ('|' seq)*
//   seq  := atom ('->' atom)*
//   atom := component-name | '(' expr ')'
#pragma once

#include <string>

#include "hslb/common/expected.hpp"
#include "hslb/scen/scenario.hpp"

namespace hslb::scen {

/// Why a scenario failed to parse, pointing at the offending line (line 0 =
/// whole-document problem, e.g. a component the schedule never mentions).
struct ScenarioParseError {
  std::string message;
  int line = 0;            ///< 1-based line number, 0 when not line-specific
  std::string line_text;   ///< the offending line, verbatim (may be empty)

  std::string to_string() const;
};

template <typename T>
using ScenExpected = common::Expected<T, ScenarioParseError>;

/// Parse one scenario from DSL text.  Malformed input (unknown directives,
/// bad numbers, duplicate components, unbalanced schedule parens, semantic
/// violations caught by Scenario::validate) comes back as a typed error --
/// never an exception.
ScenExpected<Scenario> try_parse_scenario(const std::string& text);

/// Legacy wrapper: same parsing, but throws InvalidArgument on error.
Scenario parse_scenario(const std::string& text);

}  // namespace hslb::scen
