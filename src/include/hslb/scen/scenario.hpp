// Scenario model: the generalization of the paper's fixed 6-component CESM
// layouts to arbitrary component DAGs on arbitrary machines.
//
// A Scenario holds
//   * N named components, each with a scaling-curve family -- the Table II
//     4-parameter fit (pow), a comm-penalized variant adding a linear
//     per-node term (commpow), or a convex piecewise-linear curve sampled
//     from measurements (piecewise),
//   * a series-parallel schedule tree of sequential / concurrent groups
//     (the paper's layouts 1-3 are the three fixed instances of this),
//   * a machine spec (nodes, cores/node, per-node memory cap) whose memory
//     cap turns per-component footprints into allocation floors, and
//   * pairwise communication edges that enter the objective as
//     load-dependent penalty terms  w * (n_a + n_b).
//
// Scenarios round-trip through a small text DSL (parse.hpp) and lower onto
// the existing minlp::Model form (build.hpp), so both solvers, warm starts,
// and the deterministic epoch parallelism work unchanged on N-component
// cases.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hslb/perf/perf_model.hpp"

namespace hslb::scen {

/// Scaling-curve families a component can carry.
enum class CurveKind {
  kPow,        ///< Table II: a/n + b n^c + d
  kCommPow,    ///< pow plus a linear comm term: ... + e n
  kPiecewise,  ///< convex piecewise-linear through measured (n, t) knots
};

const char* to_string(CurveKind kind);

/// One (n, seconds) knot of a piecewise curve.
struct CurvePoint {
  double nodes = 0.0;
  double seconds = 0.0;
};

/// A component's scaling curve.  Evaluation is defined for n > 0; piecewise
/// curves extend linearly beyond their knot range with the boundary slopes
/// (convexity-preserving).
struct CurveSpec {
  CurveKind kind = CurveKind::kPow;
  perf::PerfParams pow;             ///< kPow / kCommPow parameters
  double comm_per_node = 0.0;       ///< kCommPow: the e coefficient
  std::vector<CurvePoint> points;   ///< kPiecewise knots, strictly increasing n

  double operator()(double n) const;
  double deriv(double n) const;

  /// Solver-facing function object (value, derivative, declared curvature,
  /// and -- for the pow families -- the symbolic form used by root NLP
  /// relaxations).  Piecewise curves carry no symbolic form.
  minlp::UnivariateFn as_univariate() const;

  /// True when the curve is convex on (0, inf).  Pow families follow the
  /// PerfModel rule (b == 0 or c >= 1); piecewise curves are convex by
  /// construction (validated: nondecreasing slopes).
  bool is_convex() const;
};

struct ScenComponent {
  std::string name;
  CurveSpec curve;
  int min_nodes = 1;          ///< explicit allocation floor
  double mem_gb = 0.0;        ///< total memory footprint; 0 = no constraint
  std::vector<int> allowed;   ///< explicit allocation set (empty: any count)
};

/// The machine: homogeneous pool of `nodes`; heterogeneity enters through
/// per-component per-device cost curves (the generator scales a component's
/// curve by its device class), matching the Lastovetsky-style functional
/// performance model.
struct ScenMachine {
  int nodes = 0;
  int cores_per_node = 4;
  double mem_gb_per_node = 0.0;  ///< <= 0: memory footprints ignored
};

/// Communication edge: components `a` and `b` exchange boundary data; the
/// objective pays  seconds_per_node * (n_a + n_b)  -- the load-dependent
/// penalty grows with the number of participating nodes.
struct CommEdge {
  int a = 0;
  int b = 0;
  double seconds_per_node = 0.0;
};

/// Series-parallel schedule tree.  A leaf names a component; a kSequential
/// group runs its children one after another on the same node slice (time
/// adds, node requirement is the max); a kConcurrent group runs its
/// children side by side (time is the max, node requirement adds).  The
/// paper's layout 1 is  ocn | ((ice | lnd) -> atm).
struct ScheduleNode {
  enum class Kind { kComponent, kSequential, kConcurrent };
  Kind kind = Kind::kComponent;
  int component = -1;                  ///< kComponent: index into components
  std::vector<ScheduleNode> children;  ///< group kinds: >= 2 children

  static ScheduleNode leaf(int component_index);
  static ScheduleNode sequential(std::vector<ScheduleNode> children);
  static ScheduleNode concurrent(std::vector<ScheduleNode> children);
};

/// Expected-answer annotations the generator plants in corpus files so a
/// consumer can verify a solve without re-deriving the answer:
/// either a known optimum (planted by construction for separable cases) or
/// a certified [bound, incumbent] bracket (relaxation bound + feasible
/// heuristic answer).
struct Expectations {
  std::optional<double> optimum;    ///< exact optimal objective
  std::optional<double> bound;      ///< certified lower bound
  std::optional<double> incumbent;  ///< feasible upper bound (heuristic)
};

/// A scripted regime shift: from `step` onward the component's true cost
/// scale is multiplied by `factor` (on top of the slow drift).
struct DriftShift {
  int step = 0;
  double factor = 1.0;
};

/// Scripted timing drift for one component over a rebalancing horizon
/// (rebal::DriftSimulator consumes these).  The component's true
/// per-step cost scale evolves as
///   scale_t = exp(rate * t) * prod_{shifts with step <= t} factor
/// and observed timings add zero-mean relative noise of amplitude `noise`.
/// Drift lines are optional; scenarios without them print (and therefore
/// fingerprint) exactly as before.
struct DriftSpec {
  int component = -1;              ///< index into Scenario::components
  double rate = 0.0;               ///< per-step exponential drift rate
  double noise = 0.0;              ///< relative observation-noise amplitude
  std::vector<DriftShift> shifts;  ///< strictly increasing step
};

struct Scenario {
  std::string name;
  ScenMachine machine;
  std::vector<ScenComponent> components;
  std::vector<CommEdge> comm;
  ScheduleNode schedule;
  std::vector<DriftSpec> drift;  ///< at most one entry per component
  Expectations expect;

  /// Index of the named component, or -1.
  int component_index(const std::string& component_name) const;

  /// Effective allocation floor for component j: the explicit min_nodes
  /// lifted by the memory footprint (ceil(mem_gb / mem_gb_per_node)).
  int floor_of(int j) const;

  /// Throws InvalidArgument on structural problems: empty/duplicate
  /// components, a schedule that does not reference every component exactly
  /// once, non-convex piecewise knots, infeasible floors (the minimal
  /// allocation already exceeds the machine), bad comm edges.
  void validate() const;
};

/// Canonical DSL text (the printer half of the round-trip contract:
/// parse(print(s)) == s and print is a fixed point).  With
/// `with_expectations` false the expect lines are omitted -- that model-only
/// form is what the fingerprint covers.
std::string print_scenario(const Scenario& scenario,
                           bool with_expectations = true);

/// FNV-1a 64-bit over the model-only canonical print, as 16 hex digits.
/// Stable across whitespace/ordering variations of the source text and
/// independent of the expect annotations; the service mixes this into
/// scenario-case cache keys.
std::string scenario_fingerprint(const Scenario& scenario);

// --- Pure evaluation (shared by the heuristic, the generator's planted
// --- optima, and the gap checks) ------------------------------------------

/// Schedule-combined time for a full integer allocation (nodes[j] for
/// component j): sum over sequential groups, max over concurrent groups.
double schedule_time(const Scenario& scenario, const std::vector<int>& nodes);

/// Peak node requirement of the schedule under the allocation: max over
/// sequential groups, sum over concurrent groups.  Feasible iff
/// <= machine.nodes.
int schedule_requirement(const Scenario& scenario,
                         const std::vector<int>& nodes);

/// Total communication penalty  sum_e w_e (n_a + n_b).
double comm_penalty(const Scenario& scenario, const std::vector<int>& nodes);

/// The full objective: schedule_time + comm_penalty.
double evaluate_objective(const Scenario& scenario,
                          const std::vector<int>& nodes);

/// True when the schedule is one flat sequential group over all components
/// and there are no comm edges: the objective separates per component, so
/// the optimum is a sum of independent one-dimensional minimizations.
bool is_separable(const Scenario& scenario);

/// The admissible node counts for component j: allowed-set members inside
/// [floor_of(j), machine.nodes], or every integer in that range.
std::vector<int> candidate_nodes(const Scenario& scenario, int j);

}  // namespace hslb::scen
