// Lowering a Scenario onto the existing minlp::Model form, generalizing the
// hard-coded 6-component construction in src/hslb/layout_model.cpp.
//
// Decision variables per component j:
//   n_j -- nodes allocated (integer, [floor_of(j), machine.nodes], optional
//          allowed-set restriction branched as SOS1)
//   t_j -- defined time t_j == curve_j(n_j) via a univariate link
// Per internal schedule group g, two auxiliary continuous variables:
//   G_g -- the group's completion time: G >= sum of children (sequential)
//          or G >= each child (concurrent) -- the DAG-driven critical-path
//          objective
//   R_g -- the group's peak node requirement: R >= each child (sequential,
//          node reuse) or R >= sum of children (concurrent, simultaneous
//          occupancy); R_root <= machine.nodes is the machine-capacity
//          constraint
// Objective:  minimize G_root + sum_e w_e (n_a + n_b)   (comm penalties).
//
// The lowered model is an ordinary minlp::Model, so both solvers
// (minlp::solve and minlp::solve_nlp_bb), the warm-started LP re-solves,
// and the deterministic epoch parallelism work unchanged.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hslb/minlp/branch_and_bound.hpp"
#include "hslb/scen/scenario.hpp"

namespace hslb::scen {

struct BuildOptions {
  bool use_sos = true;  ///< SOS1 branching on allowed sets (false: binaries)
};

/// Variable indices of a built scenario model.
struct ScenarioModelVars {
  std::size_t total_time = 0;        ///< G_root (the schedule makespan)
  std::vector<std::size_t> nodes;    ///< n_j per component
  std::vector<std::size_t> times;    ///< t_j per component
};

/// Build the MINLP for a validated scenario.  `vars` receives the indices.
[[nodiscard]] minlp::Model build_scenario_model(
    const Scenario& scenario, ScenarioModelVars* vars,
    const BuildOptions& options = {});

/// A solved scenario allocation.
struct ScenAllocation {
  std::map<std::string, int> nodes;        ///< per component name
  std::map<std::string, double> seconds;   ///< curve time at the allocation
  double schedule_seconds = 0.0;           ///< schedule-combined time
  double comm_penalty_seconds = 0.0;
  double objective = 0.0;                  ///< schedule + comm penalty
};

/// Read an allocation out of a solver result for the built model.
ScenAllocation extract_scenario_allocation(const Scenario& scenario,
                                           const ScenarioModelVars& vars,
                                           const minlp::MinlpResult& result);

/// N-component heuristic allocation (the corpus-case rung of the service's
/// degradation ladder, generalizing core::heuristic_allocation's 4-component
/// grid search): start every component at its floor (snapped into its
/// allowed set) and greedily grant nodes to whichever single-component
/// increase most improves the objective while the schedule still fits the
/// machine.  Deterministic; throws InvalidArgument when even the floor
/// allocation does not fit.
ScenAllocation heuristic_allocation(const Scenario& scenario);

/// True when solve_nlp_bb accepts the lowered model: no allowed sets (the
/// NLP-BB solver rejects SOS1) and every curve convex with a symbolic form
/// (piecewise curves have none).
bool nlp_bb_eligible(const Scenario& scenario);

}  // namespace hslb::scen
