// The HSLB "Fit" step (Table II, line 10):
//
//   min_{a,b,c,d >= 0}  sum_i ( y_i - a/n_i - b n_i^c - d )^2
//
// Two strategies are provided and combined:
//   * Variable projection (VarPro): for a fixed exponent c the model is
//     linear in (a, b, d), so an NNLS solve gives the exact constrained
//     optimum; a golden-section-refined grid search over c picks the best
//     exponent.  Robust, derivative-free in c, and immune to the local
//     minima the paper mentions.
//   * Levenberg-Marquardt polish over all four parameters from the VarPro
//     point (and optionally from multiple random starts).
#pragma once

#include "hslb/common/rng.hpp"
#include "hslb/perf/perf_model.hpp"

namespace hslb::perf {

struct FitOptions {
  /// Minimum allowed exponent.  The default 1.0 keeps the fitted function
  /// convex so the MINLP outer approximation is exact (the paper's fits had
  /// b, c ~ 0 so this does not change the curves materially; set to a
  /// smaller value to reproduce an unconstrained-curvature fit).
  double c_min = 1.0;
  double c_max = 3.0;
  int c_grid = 48;            ///< VarPro grid resolution over [c_min, c_max]
  bool lm_polish = true;      ///< refine with Levenberg-Marquardt
  int multistart = 0;         ///< extra random LM starts (0 = VarPro only)
  std::uint64_t seed = 42;    ///< for multistart
  /// Weight each residual by 1/y_i (minimize *relative* error).  The paper
  /// minimizes the plain sum of squares (Table II line 10), which is the
  /// default here; relative weighting trades accuracy at small node counts
  /// for accuracy across the whole range.
  bool relative_weighting = false;
  /// Robust (Huber/IRLS) loss for the LM polish, bounding the influence of
  /// corrupt samples -- the right setting for fault-injected campaigns and
  /// the noisy CICE curves.  Off by default: plain least squares, exactly
  /// the paper's Table II objective.
  bool robust_loss = false;
  /// Huber transition point in robust-sigma (MAD) units.
  double huber_delta = 1.345;
};

struct FitResult {
  PerfModel model;
  double r_squared = 0.0;
  double rmse = 0.0;          ///< root mean squared residual
  double sse = 0.0;           ///< sum of squared residuals
  bool converged = false;
  /// Gauss-Newton parameter covariance sigma^2 (J^T J)^-1 at the solution
  /// (4x4 over a, b, c, d); empty when the fit is exactly determined or the
  /// Jacobian is rank deficient.
  linalg::Matrix covariance;
  int degrees_of_freedom = 0;  ///< samples minus fitted parameters
};

/// 1-sigma uncertainty of the fitted curve's prediction at node count n
/// (delta method over the parameter covariance).  Returns 0 when no
/// covariance is available.
double prediction_stddev(const FitResult& fit_result, double n);

/// Fit the Table II model to (nodes[i], times[i]) samples.
/// Requires at least 3 samples with distinct positive node counts (the
/// paper recommends > 4).
[[nodiscard]] FitResult fit(std::span<const double> nodes,
                            std::span<const double> times,
                            const FitOptions& options = {});

}  // namespace hslb::perf
