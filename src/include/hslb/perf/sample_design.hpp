// Benchmark sample design (the paper's section III-C recommendations):
// run at the smallest node count memory allows, at the largest available,
// and a few log-spaced points in between to capture the curvature -- so the
// optimizer always interpolates rather than extrapolates.
#pragma once

#include <vector>

namespace hslb::perf {

/// Log-spaced node counts in [min_nodes, max_nodes], endpoints included,
/// deduplicated after rounding to integers.  `count` >= 2.
std::vector<int> design_benchmark_nodes(int min_nodes, int max_nodes,
                                        int count);

/// Snap each designed count to the nearest member of an allowed set
/// (e.g. the hard-coded POP node counts).  Preserves order, deduplicates.
std::vector<int> snap_to_allowed(const std::vector<int>& designed,
                                 const std::vector<int>& allowed);

}  // namespace hslb::perf
