// The paper's performance model (Table II):
//
//   T_j(n) = T^sca(n) + T^nln(n) + T^ser
//          = a_j / n  +  b_j n^c_j  +  d_j,        a, b, c, d >= 0
//
// T^sca is the perfectly scaling part, T^ser the serial floor, and T^nln the
// partially parallel / communication part (increasing on Intrepid).
#pragma once

#include "hslb/expr/expr.hpp"
#include "hslb/minlp/model.hpp"

namespace hslb::perf {

/// Fitted coefficients of the Table II function.
struct PerfParams {
  double a = 0.0;  ///< scalable numerator: T^sca(n) = a / n
  double b = 0.0;  ///< nonlinear scale:    T^nln(n) = b * n^c
  double c = 1.0;  ///< nonlinear exponent
  double d = 0.0;  ///< serial floor:       T^ser    = d
};

/// Evaluatable performance function with term-level introspection.
class PerfModel {
 public:
  PerfModel() = default;
  explicit PerfModel(PerfParams params);

  const PerfParams& params() const { return params_; }

  /// T(n); requires n > 0.
  double operator()(double n) const;

  /// dT/dn.
  double deriv(double n) const;

  /// The three Table II terms at n.
  double scalable_term(double n) const;   ///< a / n
  double nonlinear_term(double n) const;  ///< b n^c
  double serial_term() const;             ///< d

  /// Symbolic form T applied to an expression (for NLP relaxations).
  expr::Expr as_expr(const expr::Expr& n) const;

  /// Solver-facing function object.  The curvature is declared from the
  /// parameters: convex when the nonlinear term is convex (c >= 1) or
  /// negligible; otherwise left to interval auto-detection.
  minlp::UnivariateFn as_univariate() const;

  /// True if T is convex on (0, inf): b == 0 or c >= 1 (a/n and d always are).
  bool is_convex() const;

 private:
  PerfParams params_;
};

/// Coefficient of determination R^2 between observations and predictions.
double r_squared(std::span<const double> observed,
                 std::span<const double> predicted);

}  // namespace hslb::perf
