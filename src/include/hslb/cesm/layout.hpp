// Component layouts (Figure 1 of the paper).
//
// Layout 1 ("hybrid", the common production setup): the atmosphere runs
// sequentially after the concurrent ice+land pair on one processor group
// while the ocean runs concurrently on a disjoint group.  The coupler
// shares the atmosphere's processors and the river model shares the land's.
// Layout 2: ice, land, atmosphere strictly sequential on one group, ocean
// concurrent.  Layout 3: everything sequential across all processors.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "hslb/cesm/component.hpp"

namespace hslb::cesm {

enum class LayoutKind {
  kHybrid = 1,         ///< Figure 1 (1): max(max(ice,lnd)+atm, ocn)
  kSequentialGroup = 2,///< Figure 1 (2): max(ice+lnd+atm, ocn)
  kFullySequential = 3,///< Figure 1 (3): ice+lnd+atm+ocn
};

const char* to_string(LayoutKind kind);

/// A concrete node allocation for the four modeled components.
struct Layout {
  LayoutKind kind = LayoutKind::kHybrid;
  std::map<ComponentKind, int> nodes;

  static Layout hybrid(int ice, int lnd, int atm, int ocn);
  static Layout sequential_group(int ice, int lnd, int atm, int ocn);
  static Layout fully_sequential(int ice, int lnd, int atm, int ocn);

  int at(ComponentKind kind) const;

  /// Check the layout's node-nesting constraints against a machine size
  /// (Table I node constraints).  Returns an explanation on failure.
  std::optional<std::string> invalid_reason(int total_nodes) const;

  /// Total nodes occupied (the concurrent groups' footprint).
  int footprint() const;
};

/// Combine per-component times into the layout's total time (the Table I
/// "Minimize" expressions), excluding coupler overhead.
double combine_times(LayoutKind kind, double ice, double lnd, double atm,
                     double ocn);

}  // namespace hslb::cesm
