// Model grids of the simulated earth system components.
//
// The paper's experiments use the 1 degree finite-volume atmosphere/land
// grid with 1 degree displaced-pole ocean/ice (CESM 1.1.1), and the 1/8
// degree HOMME spectral-element atmosphere with 1/4 degree FV land and
// 1/10 degree tripole ocean/ice (pre-release CESM 1.2).  The simulator only
// needs grid *sizes* (they set workload scale and decomposition evenness),
// not geometry.
#pragma once

#include <cstdint>
#include <string>

namespace hslb::cesm {

enum class GridKind {
  kFiniteVolume,     ///< lat x lon finite volume (CAM-FV, CLM)
  kSpectralElement,  ///< cubed-sphere spectral elements (CAM HOMME-SE)
  kDisplacedPole,    ///< POP/CICE displaced-pole (gx1v6-like)
  kTripole,          ///< POP/CICE tripole (tx0.1-like)
};

const char* to_string(GridKind kind);

/// A 2-D model grid.  For spectral-element grids, nx x ny counts *elements*
/// (6 * ne * ne over the cube faces).
struct Grid {
  GridKind kind = GridKind::kFiniteVolume;
  std::string name;
  int nx = 0;  ///< columns (longitude / elements per band)
  int ny = 0;  ///< rows (latitude / bands)

  std::int64_t cells() const {
    return static_cast<std::int64_t>(nx) * static_cast<std::int64_t>(ny);
  }
};

// --- Factories for the grids used in the paper -----------------------------

Grid fv_one_degree();        ///< CAM-FV 0.9x1.25 ("f09"): 288 x 192
Grid fv_quarter_degree();    ///< CLM 1/4 degree FV: 1152 x 768
Grid se_ne240();             ///< HOMME-SE ne240 (1/8 degree): 345,600 elements
Grid pop_gx1();              ///< POP/CICE displaced pole 1 degree: 320 x 384
Grid pop_tx01();             ///< POP/CICE tripole 1/10 degree: 3600 x 2400

}  // namespace hslb::cesm
