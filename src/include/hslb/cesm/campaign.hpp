// Benchmark campaigns: the HSLB "Gather Data" step.
//
// A campaign runs the coupled model at several total node counts using a
// plausible first-guess layout at each size, and harvests per-component
// (nodes, seconds) samples for the fitting step -- the simulator equivalent
// of the paper's "perform a CESM simulation for the intended layout D times
// using varied numbers of nodes".
#pragma once

#include <span>
#include <vector>

#include "hslb/cesm/driver.hpp"

namespace hslb::cesm {

/// One benchmark observation of one component.
struct BenchmarkSample {
  ComponentKind kind = ComponentKind::kAtm;
  int nodes = 0;
  double seconds = 0.0;
};

struct CampaignResult {
  std::vector<BenchmarkSample> samples;
  std::vector<RunResult> runs;
};

/// A sensible first-guess layout for a machine slice of `total` nodes:
/// ~20% ocean (snapped to the allowed set), the rest atmosphere (snapped to
/// the allowed set), with ice taking ~60% of the atmosphere group and land
/// the remainder -- the "typical setup" described in section II.
Layout reference_layout(const CaseConfig& config, LayoutKind kind, int total);

/// Run the campaign at each total in `totals`.  Runs are independent and
/// execute in parallel (OpenMP) when available; results are deterministic
/// in (config, totals, seed) regardless of thread count.
CampaignResult gather_benchmarks(const CaseConfig& config, LayoutKind kind,
                                 std::span<const int> totals,
                                 std::uint64_t seed);

/// Extract the (nodes, seconds) series of one component from the samples.
struct Series {
  std::vector<double> nodes;
  std::vector<double> seconds;
};
Series series_for(const std::vector<BenchmarkSample>& samples,
                  ComponentKind kind);

/// Persist samples as CSV ("component,nodes,seconds" with a header row) and
/// read them back -- the interchange format for feeding HSLB from archived
/// benchmark data, per the paper's note that the gather step "can be
/// avoided altogether if reliable benchmarks are already available".
std::string samples_to_csv(const std::vector<BenchmarkSample>& samples);
std::vector<BenchmarkSample> samples_from_csv(const std::string& csv);

}  // namespace hslb::cesm
