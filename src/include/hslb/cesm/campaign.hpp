// Benchmark campaigns: the HSLB "Gather Data" step.
//
// A campaign runs the coupled model at several total node counts using a
// plausible first-guess layout at each size, and harvests per-component
// (nodes, seconds) samples for the fitting step -- the simulator equivalent
// of the paper's "perform a CESM simulation for the intended layout D times
// using varied numbers of nodes".
//
// On a real machine some of those runs fail to launch, hang, land on
// straggler nodes, or write corrupt timing files.  gather_benchmarks can
// therefore run under a FaultSpec (fault.hpp): each benchmark gets a
// bounded retry budget with exponential backoff against the simulated
// clock, corrupted timing files are re-requested, and everything that
// happened is tallied in a CampaignFaultReport (and the obs registry).
#pragma once

#include <span>
#include <vector>

#include "hslb/cesm/driver.hpp"
#include "hslb/cesm/fault.hpp"
#include "hslb/common/retry.hpp"

namespace hslb::cesm {

/// One benchmark observation of one component.
struct BenchmarkSample {
  ComponentKind kind = ComponentKind::kAtm;
  int nodes = 0;
  double seconds = 0.0;
};

/// What fault handling did to one benchmark run.
struct RunFaultLog {
  int total_nodes = 0;  ///< the campaign size this run benchmarks
  int attempts = 0;     ///< attempts consumed (1 = clean first try)
  bool succeeded = true;
  std::vector<FaultKind> faults;  ///< per-attempt injected fault (kNone ok)
  double sim_seconds_lost = 0.0;  ///< backoff + timeout simulated seconds
};

/// Campaign-wide fault tally.  Empty/zero when faults were disabled.
struct CampaignFaultReport {
  std::vector<RunFaultLog> runs;
  int launch_failures = 0;
  int hangs = 0;
  int stragglers = 0;
  int corrupt_files = 0;
  int truncated_files = 0;
  int noise_spikes = 0;
  int retries = 0;  ///< attempts beyond the first, across all runs
  int giveups = 0;  ///< runs that exhausted their retry budget
  double sim_seconds_lost = 0.0;

  bool any_faults() const {
    return launch_failures + hangs + stragglers + corrupt_files +
               truncated_files + noise_spikes >
           0;
  }
};

struct CampaignResult {
  std::vector<BenchmarkSample> samples;
  /// Completed runs (every total when fault-free; gives-ups are dropped).
  std::vector<RunResult> runs;
  CampaignFaultReport fault_report;
};

/// Campaign fault handling knobs.  The default (disabled faults) makes
/// gather_benchmarks take the exact fault-free code path.
struct GatherOptions {
  FaultSpec faults;
  common::RetryPolicy retry;
};

/// Result of snapping to an allowed set: `fits` is false when no member of
/// the set was <= the limit and `value` is the set's minimum -- which
/// *exceeds* the limit.  Callers must check `fits` (or validate the layout
/// against the machine) before trusting the value.
struct SnapResult {
  int value = 0;
  bool fits = true;
};

/// Largest member of `allowed` that is <= limit; falls back explicitly to
/// the smallest member (fits = false) when none is.
SnapResult snap_down(const std::vector<int>& allowed, int limit);

/// Member of `allowed` nearest to target (ties: smaller).
int snap_nearest(const std::vector<int>& allowed, int target);

/// A sensible first-guess layout for a machine slice of `total` nodes:
/// ~20% ocean (snapped to the allowed set), the rest atmosphere (snapped to
/// the allowed set), with ice taking ~60% of the atmosphere group and land
/// the remainder -- the "typical setup" described in section II.
Layout reference_layout(const CaseConfig& config, LayoutKind kind, int total);

/// Run the campaign at each total in `totals`.  Runs are independent and
/// execute in parallel (OpenMP) when available; results are deterministic
/// in (config, totals, seed) regardless of thread count.
CampaignResult gather_benchmarks(const CaseConfig& config, LayoutKind kind,
                                 std::span<const int> totals,
                                 std::uint64_t seed);

/// As above, under fault injection: each run retries with exponential
/// backoff on launch failures, hangs, and unparseable timing files;
/// straggler and spike samples pass through (downstream outlier rejection
/// handles them); runs that exhaust the budget are dropped and reported.
/// Deterministic in (config, totals, seed, options).  With
/// options.faults disabled this is byte-identical to the overload above.
CampaignResult gather_benchmarks(const CaseConfig& config, LayoutKind kind,
                                 std::span<const int> totals,
                                 std::uint64_t seed,
                                 const GatherOptions& options);

/// Extract the (nodes, seconds) series of one component from the samples.
struct Series {
  std::vector<double> nodes;
  std::vector<double> seconds;
};
Series series_for(const std::vector<BenchmarkSample>& samples,
                  ComponentKind kind);

/// Persist samples as CSV ("component,nodes,seconds" with a header row) and
/// read them back -- the interchange format for feeding HSLB from archived
/// benchmark data, per the paper's note that the gather step "can be
/// avoided altogether if reliable benchmarks are already available".
std::string samples_to_csv(const std::vector<BenchmarkSample>& samples);
std::vector<BenchmarkSample> samples_from_csv(const std::string& csv);

}  // namespace hslb::cesm
