// Domain decomposition rules and "sweet spot" generators.
//
// Each CESM component accepts only certain processor counts, or performs
// best at counts that decompose its grid evenly (section III-A).  These
// helpers generate the allowed/preferred count sets the MINLP models use as
// special ordered sets, and model CICE's seven decomposition strategies
// whose default choice injects noise into the sea-ice scaling curve
// (section IV-A).
#pragma once

#include <functional>
#include <vector>

#include "hslb/cesm/grid.hpp"

namespace hslb::cesm {

/// Node counts (1..max_nodes) whose busiest-rank load exceeds the average by
/// at most `imbalance_tol` when `cells` grid cells are distributed over
/// `cores_per_node * n` cores in contiguous chunks.
std::vector<int> even_decomposition_counts(std::int64_t cells, int max_nodes,
                                           int cores_per_node,
                                           double imbalance_tol = 0.02);

/// The paper's 1-degree CAM-FV atmosphere allocation set:
/// A = {1, 2, ..., 1638, 1664}, truncated to max_nodes.
std::vector<int> atm_allowed_one_degree(int max_nodes);

/// Synthetic 1/8-degree HOMME-SE allocation set: multiples of 4 nodes from
/// 16 up to max_nodes (quasi-dense, as the paper describes a "large number
/// of discrete choices for the atmospheric partition").
std::vector<int> atm_allowed_eighth_degree(int max_nodes);

/// The paper's 1-degree POP ocean set: O = {2, 4, ..., 480, 768},
/// truncated to max_nodes.
std::vector<int> ocn_allowed_one_degree(int max_nodes);

/// The paper's hard-coded 1/10-degree POP node counts:
/// {480, 512, 2356, 3136, 4564, 6124, 19460}, truncated to max_nodes.
std::vector<int> ocn_allowed_eighth_degree(int max_nodes);

/// CICE supports seven decomposition strategies (section IV-A).  The default
/// choice for a given node count is a deterministic but irregular function
/// of the count -- which is what made the paper's sea-ice curve noisy.
enum class IceDecomposition {
  kCartesian,
  kSlenderX1,
  kSlenderX2,
  kRoundRobin,
  kSectRobin,
  kSpaceCurve,
  kBlkRobin,
};
constexpr int kNumIceDecompositions = 7;

/// The default decomposition CICE would pick for `nodes` (deterministic).
IceDecomposition default_ice_decomposition(int nodes);

/// A pluggable strategy-selection policy (node count -> decomposition);
/// the ML tuner produces one, the driver consumes it.
using IceDecompositionPolicy = std::function<IceDecomposition(int nodes)>;

/// Relative efficiency in (0, 1] of a decomposition at a node count;
/// multiplies the sea-ice run time by 1/efficiency.
double ice_decomposition_efficiency(IceDecomposition decomposition,
                                    int nodes);

}  // namespace hslb::cesm
