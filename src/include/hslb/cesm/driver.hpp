// The coupled-model driver: executes a layout day by day, the simulator
// stand-in for "submit CESM to the Intrepid queue and read the timing file".
//
// Each simulated day every component advances one day of model time on its
// node group; the coupler synchronizes the groups according to the layout's
// sequencing (Figure 1).  Per-day noise means intra-component imbalance is
// reflected in the component timers, exactly as the paper describes for the
// real timers.  The river model shares the land group and the coupler the
// atmosphere group; both are excluded from the HSLB-comparable time but are
// present in the full run time.
#pragma once

#include <map>

#include "hslb/cesm/configs.hpp"
#include "hslb/cesm/layout.hpp"

namespace hslb::cesm {

struct RunResult {
  Layout layout;
  /// Component timer values (sum of that component's own busy time over all
  /// days), keyed by component -- what the "timing file" reports.
  std::map<ComponentKind, double> component_seconds;
  /// Layout-combined time over the four modeled components (comparable to
  /// the HSLB model's T).
  double model_seconds = 0.0;
  /// Full run wall clock including coupler and river overhead.
  double total_seconds = 0.0;
};

/// Environment-level perturbation of one run, as injected by a fault
/// campaign (fault.hpp): a straggler node group slows every timer by the
/// same factor.  The default (1.0) is exactly the unperturbed run.
struct RunPerturbation {
  double slowdown = 1.0;  ///< multiplies every component's busy time (>= 1)
};

/// Execute one benchmark run of `days` simulated days (defaults to the
/// case's setting).  Deterministic in (config, layout, seed).
RunResult run_case(const CaseConfig& config, const Layout& layout,
                   std::uint64_t seed);

/// As above, under an injected perturbation.  A default-constructed
/// perturbation reproduces run_case(config, layout, seed) bit for bit.
RunResult run_case(const CaseConfig& config, const Layout& layout,
                   std::uint64_t seed, const RunPerturbation& perturbation);

/// Render a CESM-style timing summary for a run.
std::string render_timing_file(const CaseConfig& config,
                               const RunResult& result);

}  // namespace hslb::cesm
