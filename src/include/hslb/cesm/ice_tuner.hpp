// Machine-learning-based sea-ice decomposition tuning.
//
// The paper's section IV-A traces the noisy CICE scaling curve to the
// default choice among seven decomposition strategies, and points to a
// companion machine-learning effort (Balaprakash et al., reference [10]) as
// the fix.  This module implements that companion idea:
//   * benchmark the ice component under *every* strategy at a handful of
//     node counts (the training set),
//   * learn a per-strategy predictor of run time vs node count
//     (k-nearest-neighbor interpolation in log space, backed by a fitted
//     Table II curve for extrapolation),
//   * at any node count, pick the strategy with the smallest prediction.
// Feeding the learned policy back into the driver smooths the ice scaling
// curve, which tightens the Table II fit and the MINLP's predictions.
#pragma once

#include <vector>

#include "hslb/cesm/component.hpp"
#include "hslb/cesm/decomposition.hpp"
#include "hslb/perf/fit.hpp"

namespace hslb::cesm {

/// One training observation.
struct IceTrainingSample {
  int nodes = 0;
  IceDecomposition decomposition = IceDecomposition::kCartesian;
  double seconds = 0.0;
};

struct IceTunerOptions {
  int min_nodes = 8;
  int max_nodes = 2048;
  int counts = 8;            ///< log-spaced node counts to benchmark
  int repeats = 2;           ///< benchmark repetitions per (count, strategy)
  int knn = 2;               ///< neighbors for the log-space interpolation
  std::uint64_t seed = 2014;
};

/// Benchmark `ice` under every strategy over the configured design.
std::vector<IceTrainingSample> gather_ice_training(
    const Component& ice, const IceTunerOptions& options);

/// Per-strategy run-time predictor + strategy selector.
class IceDecompositionTuner {
 public:
  /// Train from samples (every strategy must appear at >= 2 node counts).
  IceDecompositionTuner(std::vector<IceTrainingSample> samples, int knn = 2);

  /// Predicted seconds for running on `nodes` with `decomposition`.
  double predicted_seconds(int nodes, IceDecomposition decomposition) const;

  /// The strategy with the best prediction at this count.
  IceDecomposition best_for(int nodes) const;

  /// Predicted seconds under the learned policy (= the best strategy).
  double tuned_seconds(int nodes) const;

  /// The learned policy as a callable (plugs into CaseConfig).
  IceDecompositionPolicy policy() const;

  /// The smooth Table II fit of the per-strategy curve (for reporting).
  const perf::FitResult& strategy_fit(IceDecomposition decomposition) const;

 private:
  struct StrategyModel {
    std::vector<double> log_nodes;   // sorted
    std::vector<double> log_seconds; // averaged per count
    perf::FitResult fit;             // smooth backup / extrapolation
  };
  StrategyModel models_[kNumIceDecompositions];
  int knn_ = 2;
};

}  // namespace hslb::cesm
