// Component performance oracles.
//
// Each simulated component carries a hidden ground-truth timing law -- the
// stand-in for running the real CESM component on Intrepid.  The law is a
// Table II curve (calibrated to the paper's measured timings) composed with
//   * a "preferred count" penalty: POP at 1/10 degree only performs well at
//     its hard-coded node counts; arbitrary counts pay up to ~28% (this is
//     what made the paper's unconstrained-ocean prediction optimistic),
//   * CICE's decomposition-strategy efficiency (deterministic scatter), and
//   * multiplicative lognormal measurement noise on each benchmark run.
// HSLB never sees these laws; it only sees measured run times.
#pragma once

#include <string>
#include <vector>

#include "hslb/common/rng.hpp"
#include "hslb/perf/perf_model.hpp"

namespace hslb::cesm {

enum class ComponentKind { kAtm, kOcn, kIce, kLnd, kRof, kCpl };

const char* to_string(ComponentKind kind);
const char* long_name(ComponentKind kind);

/// The four components HSLB optimizes (runoff and coupler are excluded from
/// the models in the paper because their cost is small).
inline constexpr ComponentKind kModeledComponents[] = {
    ComponentKind::kLnd, ComponentKind::kIce, ComponentKind::kAtm,
    ComponentKind::kOcn};

/// Hidden truth for one component.
struct TruthParams {
  perf::PerfParams base;            ///< 5-day wall-clock law (seconds)
  double noise_cv = 0.015;          ///< per-run lognormal measurement noise
  std::vector<int> preferred_counts;  ///< counts with full efficiency
  double off_preferred_penalty = 0.0; ///< max relative slowdown elsewhere
  bool decomposition_noise = false;   ///< CICE default-decomposition scatter
};

class Component {
 public:
  Component() = default;
  Component(ComponentKind kind, TruthParams truth);

  ComponentKind kind() const { return kind_; }
  const TruthParams& truth() const { return truth_; }

  /// Deterministic ground-truth wall-clock seconds for a 5-day run on
  /// `nodes` nodes (penalties and decomposition effects included, noise not).
  double true_time(int nodes) const;

  /// One measured benchmark run: true time with measurement noise.
  double measured_time(int nodes, common::Rng& rng) const;

  /// The slowdown factor (>= 1) paid at this count relative to the smooth
  /// Table II law (preferred-count penalty x decomposition inefficiency).
  double penalty_factor(int nodes) const;

  /// Ground-truth / measured time under an explicitly chosen decomposition
  /// strategy (only meaningful for components with decomposition_noise,
  /// i.e. the sea ice model; others ignore the choice).
  double true_time_with(int nodes, int decomposition) const;
  double measured_time_with(int nodes, int decomposition,
                            common::Rng& rng) const;

 private:
  ComponentKind kind_ = ComponentKind::kAtm;
  TruthParams truth_;
  perf::PerfModel base_;
};

}  // namespace hslb::cesm
