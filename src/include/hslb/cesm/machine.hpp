// Machine model.  The paper allocates *nodes* (Intrepid: 4 cores per node,
// run as 1 MPI task x 4 OpenMP threads per node); the allocation unit here
// is the node for the same reason.
#pragma once

#include <string>

namespace hslb::cesm {

struct Machine {
  std::string name;
  int total_nodes = 0;
  int cores_per_node = 4;
  int mpi_tasks_per_node = 1;
  int threads_per_task = 4;

  int total_cores() const { return total_nodes * cores_per_node; }
  int cores(int nodes) const { return nodes * cores_per_node; }
};

/// Intrepid, the ALCF IBM Blue Gene/P: 40,960 quad-core nodes.
Machine intrepid();

}  // namespace hslb::cesm
