// Experiment configurations: the two CESM setups the paper evaluates.
#pragma once

#include <map>
#include <vector>

#include "hslb/cesm/component.hpp"
#include "hslb/cesm/decomposition.hpp"
#include "hslb/cesm/grid.hpp"
#include "hslb/cesm/machine.hpp"

namespace hslb::cesm {

/// A fully specified simulated CESM case: machine, grids, component truth
/// laws, allowed allocation sets, and per-component memory floors.
struct CaseConfig {
  std::string name;
  Machine machine;
  Grid atm_grid, lnd_grid, ocn_grid, ice_grid;
  std::map<ComponentKind, Component> components;
  std::vector<int> atm_allowed;  ///< SOS set A for the atmosphere
  std::vector<int> ocn_allowed;  ///< SOS set O for the ocean
  std::map<ComponentKind, int> min_nodes;  ///< memory floor per component
  int simulated_days = 5;        ///< benchmark run length (the paper uses 5)
  /// Coupling exchanges per simulated day inside the atmosphere group (the
  /// real CESM couples atm/lnd/ice every ~30 model minutes = 48/day; the
  /// ocean always couples once per day).  More exchanges mean more
  /// synchronization points, so per-step noise turns into wait time.
  int coupling_steps_per_day = 1;
  /// Optional learned sea-ice decomposition policy (see ice_tuner.hpp);
  /// when unset the driver uses CICE's defaults, which is what made the
  /// paper's ice curve noisy.
  IceDecompositionPolicy ice_decomposition_policy;

  const Component& component(ComponentKind kind) const;
  int min_nodes_for(ComponentKind kind) const;
};

/// CESM 1.1.1 at 1 degree: FV atmosphere/land, gx1 ocean/ice.
/// Truth laws calibrated so that timings land near the paper's Table III.
CaseConfig one_degree_case();

/// Pre-release CESM 1.2 at 1/8 degree: HOMME-SE ne240 atmosphere,
/// 1/4 degree FV land, tx0.1 ocean/ice.  The ocean pays a penalty away from
/// its hard-coded preferred counts (section IV-B's unconstrained-ocean
/// story).
CaseConfig eighth_degree_case();

/// A hypothetical successor machine (the paper's section IV-C: "prediction
/// of CESM scaling on new hardware, e.g. exascale supercomputers"): every
/// component runs `node_speedup` times faster per node, with the given node
/// count and cores per node.  Truth laws are scaled accordingly; allowed
/// allocation sets and memory floors carry over (truncated to the machine).
CaseConfig scaled_hardware_case(const CaseConfig& base, std::string name,
                                double node_speedup, int total_nodes,
                                int cores_per_node);

}  // namespace hslb::cesm
