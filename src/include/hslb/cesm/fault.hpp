// Deterministic fault injection for benchmark campaigns.
//
// The paper's Step 1 gathers 5-day timings on a real machine where jobs fail
// to launch, hang in the queue, land on straggler nodes, or write truncated
// timing files.  The simulator reproduces that noise here so the rest of the
// pipeline can be hardened against it: a FaultSpec declares per-attempt
// probabilities for each fault class, and a FaultInjector turns (run, attempt)
// identities into reproducible fault draws.  Every draw is keyed by a hash of
// (spec seed, run key, attempt), so campaigns stay deterministic in the seed
// regardless of thread count or retry order.
#pragma once

#include <cstdint>
#include <string>

#include "hslb/common/rng.hpp"

namespace hslb::cesm {

/// What the injector did to one benchmark attempt.
enum class FaultKind {
  kNone,             ///< the attempt proceeds cleanly
  kLaunchFailure,    ///< the job never starts (fails fast)
  kHang,             ///< the job hangs and is killed at the timeout
  kStraggler,        ///< the run completes but every timer is inflated
  kCorruptOutput,    ///< the timing file is garbled
  kTruncatedOutput,  ///< the timing file is cut short
  kNoiseSpike,       ///< one component's timer spikes (bad sample)
};

const char* to_string(FaultKind kind);

/// Per-attempt fault probabilities.  All default to zero: a default
/// FaultSpec is a guaranteed no-op and the campaign code takes the exact
/// pre-fault-injection path (bit-identical results).
struct FaultSpec {
  double launch_failure_prob = 0.0;
  double hang_prob = 0.0;
  double straggler_prob = 0.0;
  double corrupt_prob = 0.0;
  double truncate_prob = 0.0;
  double spike_prob = 0.0;

  /// Slowdown multiplier applied to a straggler run's timers (>= 1).
  double straggler_multiplier = 3.0;
  /// Multiplier applied to the spiked component's timer (>= 1).
  double spike_multiplier = 8.0;

  std::uint64_t seed = 0xFA117ull;

  /// True when any fault class can fire.
  bool enabled() const;
  /// Total per-attempt probability that *some* fault fires.
  double total_rate() const;

  /// A spec whose fault classes sum to `rate` (the campaign-level
  /// "--fault-rate"), split across the classes in realistic proportions:
  /// launch failures and stragglers dominate, corruption and hangs are rare.
  static FaultSpec uniform(double rate, std::uint64_t seed = 0xFA117ull);
};

/// SplitMix64-style mix of a (seed, run_key, salt) identity triple into one
/// 64-bit stream seed.  This is the hash every deterministic fault oracle in
/// the repo draws through -- the campaign-level FaultInjector below and the
/// service-level svc::ChaosInjector both key their draws off it, so a fault
/// schedule is a pure function of identities, never of thread order.
std::uint64_t mix_fault_key(std::uint64_t seed, std::uint64_t run_key,
                            std::uint64_t salt);

/// Deterministic fault oracle.  Stateless between calls: each decision is a
/// pure function of (spec, run_key, attempt), so draws can be made from any
/// thread in any order.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);

  const FaultSpec& spec() const { return spec_; }

  /// The fault (or kNone) injected into attempt `attempt` of the run
  /// identified by `run_key`.
  FaultKind draw(std::uint64_t run_key, int attempt) const;

  /// Index in [0, choices) picking which component a kNoiseSpike hits.
  int spike_target(std::uint64_t run_key, int attempt, int choices) const;

  /// Deterministic sub-seed for text corruption/truncation of this attempt.
  std::uint64_t text_seed(std::uint64_t run_key, int attempt) const;

 private:
  FaultSpec spec_;
};

/// Garble a timing-file-like text: overwrite a few random spans with binary
/// junk and shuffle some digits, deterministically in `seed`.  The result
/// usually fails to parse; occasionally it parses into absurd values, which
/// is exactly the bad-sample case downstream outlier rejection must catch.
std::string corrupt_text(const std::string& text, std::uint64_t seed);

/// Cut the text at a random fraction (10-90%) of its length -- the
/// half-written timing file of a job killed mid-output.
std::string truncate_text(const std::string& text, std::uint64_t seed);

}  // namespace hslb::cesm
