// CESM-style timing file parsing.
//
// The production HSLB consumed the timing summaries CESM writes after every
// run.  This module closes that loop for the simulator: the driver renders
// a timing file (render_timing_file), and this parser reads one back --
// so the fitting pipeline can be fed from persisted files exactly the way
// the paper's automated pipeline was.
//
// On the real machine those files are sometimes truncated or garbled (the
// job died mid-write, the filesystem hiccuped), so parsing reports failures
// through a typed Expected error carrying line context; the legacy throwing
// entry points remain as thin wrappers for callers that want the abort.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hslb/cesm/campaign.hpp"
#include "hslb/common/expected.hpp"

namespace hslb::cesm {

/// A parsed timing summary.
struct ParsedTimingFile {
  std::string case_name;
  std::string machine;
  std::string layout;
  int simulated_days = 0;

  struct Row {
    std::string component;
    int nodes = 0;
    int cores = 0;
    double seconds = 0.0;
    double seconds_per_day = 0.0;
  };
  std::vector<Row> rows;

  double model_seconds = 0.0;
  double total_seconds = 0.0;

  /// Row for a component name ("atm", "ocn", ...), if present.
  std::optional<Row> find(const std::string& component) const;
};

/// Why a timing file failed to parse, with the offending line when one can
/// be pointed at (line 0 = whole-document problem, e.g. missing header).
struct TimingParseError {
  std::string message;
  int line = 0;            ///< 1-based line number, 0 when not line-specific
  std::string line_text;   ///< the offending line, verbatim (may be empty)

  std::string to_string() const;
};

template <typename T>
using TimingExpected = common::Expected<T, TimingParseError>;

/// Parse a timing summary produced by render_timing_file.  Malformed or
/// truncated input (missing header, bad numbers, no component rows, absent
/// run length) comes back as a TimingParseError -- never an exception.
TimingExpected<ParsedTimingFile> try_parse_timing_file(
    const std::string& text);

/// Extract fitting samples (the four modeled components) from parsed files.
/// Files missing a modeled component or carrying non-positive values report
/// a typed error instead of aborting.
TimingExpected<std::vector<BenchmarkSample>> try_samples_from_timing(
    const std::vector<ParsedTimingFile>& files);

/// Legacy wrappers: same parsing, but throw InvalidArgument on error.
ParsedTimingFile parse_timing_file(const std::string& text);
std::vector<BenchmarkSample> samples_from_timing(
    const std::vector<ParsedTimingFile>& files);

}  // namespace hslb::cesm
