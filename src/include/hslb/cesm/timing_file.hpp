// CESM-style timing file parsing.
//
// The production HSLB consumed the timing summaries CESM writes after every
// run.  This module closes that loop for the simulator: the driver renders
// a timing file (render_timing_file), and this parser reads one back --
// so the fitting pipeline can be fed from persisted files exactly the way
// the paper's automated pipeline was.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hslb/cesm/campaign.hpp"

namespace hslb::cesm {

/// A parsed timing summary.
struct ParsedTimingFile {
  std::string case_name;
  std::string machine;
  std::string layout;
  int simulated_days = 0;

  struct Row {
    std::string component;
    int nodes = 0;
    int cores = 0;
    double seconds = 0.0;
    double seconds_per_day = 0.0;
  };
  std::vector<Row> rows;

  double model_seconds = 0.0;
  double total_seconds = 0.0;

  /// Row for a component name ("atm", "ocn", ...), if present.
  std::optional<Row> find(const std::string& component) const;
};

/// Parse a timing summary produced by render_timing_file.
/// Throws InvalidArgument on malformed input.
ParsedTimingFile parse_timing_file(const std::string& text);

/// Extract fitting samples (the four modeled components) from parsed files.
std::vector<BenchmarkSample> samples_from_timing(
    const std::vector<ParsedTimingFile>& files);

}  // namespace hslb::cesm
