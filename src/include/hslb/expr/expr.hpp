// Expression DSL with automatic differentiation.
//
// This module plays the role AMPL plays in the paper: optimization models
// are written as algebraic expressions over decision variables, and exact
// first and second derivatives are produced automatically for the NLP and
// MINLP solvers.
//
// Expressions are immutable DAGs of shared nodes.  Building is cheap
// (constant folding happens at construction), evaluation memoizes per-node
// results so shared subexpressions are evaluated once.
//
//   using namespace hslb::expr;
//   Expr n = variable(0, "n");
//   Expr t = 27000.0 / n + 0.001 * pow(n, 1.1) + 45.0;   // Table II model
//   double v = eval(t, {128.0});
//
// Variables are identified by a dense index into the evaluation point.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hslb/linalg/matrix.hpp"

namespace hslb::expr {

/// Node operation kinds.  `pow` with a non-constant exponent is rewritten to
/// exp(v * log(u)) at construction, so kPow always has a constant exponent.
enum class Op {
  kConst,
  kVar,
  kAdd,   // n-ary sum
  kMul,   // binary product
  kDiv,   // binary quotient
  kPow,   // base^exponent, exponent constant
  kNeg,
  kLog,
  kExp,
};

class Expr;  // fwd

/// Immutable expression node.  Never constructed directly; use the factory
/// functions and operators below.
struct Node {
  Op op = Op::kConst;
  double value = 0.0;            // kConst payload, or kPow exponent
  std::size_t var_index = 0;     // kVar payload
  std::string var_name;          // kVar payload (for printing)
  std::vector<std::shared_ptr<const Node>> children;
};

/// Structural linearity classification.
enum class Linearity { kConstant, kLinear, kNonlinear };

/// Value-semantic handle to an immutable expression DAG.
class Expr {
 public:
  /// Default: the constant 0.
  Expr();

  /// Implicit from double: the constant `c` (lets `x + 1.0` just work).
  Expr(double c);  // NOLINT(google-explicit-constructor)

  explicit Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  const Node& node() const { return *node_; }
  const std::shared_ptr<const Node>& ptr() const { return node_; }

  /// True if this expression is the constant node (after folding).
  bool is_constant() const { return node_->op == Op::kConst; }

  /// The constant value; requires is_constant().
  double constant_value() const;

  /// Structural linearity in the decision variables.
  Linearity linearity() const;

 private:
  std::shared_ptr<const Node> node_;
};

// --- Factories --------------------------------------------------------------

/// The decision variable with the given index (and optional display name).
Expr variable(std::size_t index, std::string name = {});

/// The constant `c` (also available implicitly).
Expr constant(double c);

// --- Operators (all constant-fold when every operand is constant) -----------

Expr operator+(const Expr& a, const Expr& b);
Expr operator-(const Expr& a, const Expr& b);
Expr operator*(const Expr& a, const Expr& b);
Expr operator/(const Expr& a, const Expr& b);
Expr operator-(const Expr& a);

Expr& operator+=(Expr& a, const Expr& b);
Expr& operator-=(Expr& a, const Expr& b);

/// base^exponent.  A non-constant exponent is rewritten as exp(e * log(b)),
/// which requires base > 0 at evaluation points.
Expr pow(const Expr& base, const Expr& exponent);

/// Natural logarithm (evaluation requires a positive argument).
Expr log(const Expr& x);

/// Exponential.
Expr exp(const Expr& x);

/// Sum of a list of expressions (flattened n-ary add).
Expr sum(std::span<const Expr> terms);

// --- Evaluation --------------------------------------------------------------

/// Evaluate at point x (x[i] is the value of variable i).
double eval(const Expr& e, std::span<const double> x);

/// Value and gradient with respect to variables 0..nvars-1.
struct ValGrad {
  double value = 0.0;
  linalg::Vector grad;
};
ValGrad eval_grad(const Expr& e, std::span<const double> x, std::size_t nvars);

/// Value, gradient, and dense Hessian.
struct ValGradHess {
  double value = 0.0;
  linalg::Vector grad;
  linalg::Matrix hess;
};
ValGradHess eval_hess(const Expr& e, std::span<const double> x,
                      std::size_t nvars);

/// If the expression is structurally affine, extract it as
/// constant + sum_i coeff[i] * x_i.  Returns nullopt for nonlinear exprs.
struct AffineForm {
  double constant = 0.0;
  linalg::Vector coeffs;  // size nvars
};
std::optional<AffineForm> as_affine(const Expr& e, std::size_t nvars);

/// Largest variable index referenced, or nullopt for a constant expression.
std::optional<std::size_t> max_var_index(const Expr& e);

/// Sorted, deduplicated indices of every variable referenced.
std::vector<std::size_t> variables_of(const Expr& e);

/// Rebuild the expression with each variable i replaced by variable
/// mapping[i] (names preserved).  Every referenced index must be mapped.
Expr remap_variables(const Expr& e, std::span<const std::size_t> mapping);

/// Rebuild the expression with variable `index` replaced by `replacement`
/// (other variables untouched).
Expr substitute(const Expr& e, std::size_t index, const Expr& replacement);

// --- Printing ----------------------------------------------------------------

/// Render in infix AMPL-like notation, e.g. "27000 / n + 45".
std::string to_string(const Expr& e);

}  // namespace hslb::expr
