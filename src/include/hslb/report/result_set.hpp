// The structured bench-artifact schema: every bench/* binary records the
// numbers it prints into a ResultSet and writes it as versioned JSON next
// to its stdout.  EXPERIMENTS.md is rendered from these files (tools/
// hslb_report), and CI diffs fresh artifacts against the checked-in goldens
// under tests/golden/ -- so a number can only appear in the docs if a
// recorded run backs it, and it cannot drift silently.
//
// Shape: a ResultSet holds named Series; a Series holds Points keyed by a
// single numeric x (machine size, Tsync tolerance, benchmark-point count D
// -- whatever the bench sweeps; scalar series use the single point x = 0);
// a Point holds metric Cells.  Cells are either *deterministic* (pure
// functions of the seeded simulation: times predicted/simulated, node
// counts, R^2, B&B statistics) or *timing* (host wall-clock measurements).
// Only deterministic cells enter the fingerprint, the rendered docs, and
// the strict drift gate; timing cells ride along for trend tracking.
#pragma once

#include <string>
#include <vector>

#include "hslb/common/expected.hpp"
#include "hslb/report/json.hpp"

namespace hslb::report {

/// Bumped whenever the JSON layout changes incompatibly.  Readers reject
/// versions they do not know instead of guessing.
inline constexpr int kSchemaVersion = 1;

enum class Stability {
  kDeterministic,  ///< seeded-simulation output: must reproduce exactly
  kTiming,         ///< host wall-clock: machine-dependent, informational
};

const char* to_string(Stability stability);

struct Cell {
  std::string metric;  ///< e.g. "actual_total_s"
  double value = 0.0;
  std::string unit;    ///< "s", "ms", "nodes", "%", "" (dimensionless)
  Stability stability = Stability::kDeterministic;
};

struct Point {
  double x = 0.0;           ///< sweep coordinate; 0 for scalar series
  std::vector<Cell> cells;  ///< sorted by metric after canonicalize()
};

struct Series {
  std::string name;     ///< e.g. "manual", "hslb", "minmax"
  std::string x_label;  ///< e.g. "total_nodes"; "" for scalar series
  std::vector<Point> points;
};

struct ResultSet {
  int version = kSchemaVersion;
  std::string bench;      ///< binary id, e.g. "table3_1deg"
  std::string title;      ///< the banner line
  std::string reference;  ///< the paper table/figure this reproduces
  std::vector<Series> series;

  /// Append `metric` at (`series_name`, `x`), creating series and point as
  /// needed.  `x_label` applies on series creation only.
  void add(const std::string& series_name, double x,
           const std::string& metric, double value, const std::string& unit,
           Stability stability = Stability::kDeterministic,
           const std::string& x_label = "");

  /// Scalar convenience: one point at x = 0.
  void add_scalar(const std::string& series_name, const std::string& metric,
                  double value, const std::string& unit,
                  Stability stability = Stability::kDeterministic);

  const Series* find_series(const std::string& series_name) const;
  const Point* find_point(const std::string& series_name, double x) const;
  /// nullptr when series, point, or metric is absent.
  const Cell* find(const std::string& series_name, double x,
                   const std::string& metric) const;
  /// Lookup that treats a missing cell as a hard error (the docs generator
  /// must fail loudly, not render a blank).
  double value(const std::string& series_name, double x,
               const std::string& metric) const;

  /// Sort series by name, points by x, cells by metric.  Emission order in
  /// the bench binaries then cannot change the canonical bytes.
  void canonicalize();

  /// FNV-1a 64-bit over the canonical serialization of the *deterministic*
  /// cells (metric names, units, and shortest-round-trip values).  Stable
  /// across emission order, timing jitter, and pretty-printing.
  std::string fingerprint() const;
};

/// Versioned JSON round-trip.  `to_json` canonicalizes a copy first; the
/// output embeds the fingerprint so readers can verify file integrity.
std::string to_json(const ResultSet& set, int indent = 1);

struct ResultSetParseError {
  std::string message;
};

/// Strict parse: wrong schema version, malformed JSON, or a fingerprint
/// field that does not match the recomputed one are all errors.
common::Expected<ResultSet, ResultSetParseError> from_json(
    const std::string& text);

/// File helpers.  `write_file` returns false on I/O failure.
bool write_file(const ResultSet& set, const std::string& path);
common::Expected<ResultSet, ResultSetParseError> read_file(
    const std::string& path);

}  // namespace hslb::report
