// A minimal JSON document model for the results pipeline: enough to parse
// and re-emit the bench artifact schema (report/result_set.hpp) and the
// checked-in paper-reference file, nothing more.
//
// Writing is canonical: object keys keep insertion order (the schema fixes
// the order), numbers use common::shortest_double, and there is no
// whitespace beyond optional pretty-print indentation.  Canonical bytes are
// what the artifact fingerprints and the byte-identical EXPERIMENTS.md
// regeneration contract are built on.
//
// Parsing is strict UTF-8-agnostic RFC-8259 minus the corners the schema
// never produces: no \u escapes beyond ASCII, no scientific-notation
// writing (reading accepts it).  Failure is an expected data condition
// (somebody hand-edited an artifact), so the parser returns
// common::Expected rather than throwing.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hslb/common/expected.hpp"

namespace hslb::report {

class Json;

/// Parse failure with enough context to point at the offending byte.
struct JsonParseError {
  std::string message;
  std::size_t offset = 0;  ///< byte offset into the input
  std::size_t line = 1;    ///< 1-based line of `offset`
};

/// One JSON value.  A tagged union kept deliberately simple: objects
/// preserve insertion order (vector of pairs) because canonical output
/// order is part of the artifact contract.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  static Json null();
  static Json boolean(bool value);
  static Json number(double value);
  static Json integer(long long value);
  static Json string(std::string value);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access.
  std::size_t size() const;
  const Json& at(std::size_t index) const;
  void push_back(Json value);

  /// Object access.  `find` returns nullptr when the key is absent.
  const Json* find(const std::string& key) const;
  const Json& at(const std::string& key) const;
  void set(std::string key, Json value);
  const std::vector<std::pair<std::string, Json>>& items() const;

  /// Canonical serialization.  `indent` 0 gives the single-line canonical
  /// form used for fingerprints; > 0 pretty-prints for humans (artifact
  /// files use 1 so diffs stay reviewable).
  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Strict parse of a complete JSON document (trailing garbage is an error).
common::Expected<Json, JsonParseError> parse_json(const std::string& text);

/// Escape a string for embedding in a JSON document (adds the quotes).
std::string json_quote(const std::string& text);

}  // namespace hslb::report
