// The numeric drift gate: compare a freshly produced ResultSet against the
// golden one under tests/golden/ and classify every difference.
//
// Tolerance policy (DESIGN.md section 10):
//   * deterministic cells default to a tight relative tolerance (1e-9) --
//     they are pure functions of the seeded simulation, but cross-platform
//     libm differences may wiggle the last bits;
//   * integer-like cells (units "nodes", "count") compare exactly;
//   * timing cells are skipped by the gate unless `check_timing` is set
//     (then `timing_default` applies -- useful for trend alarms on a
//     dedicated perf host, never in shared CI);
//   * structural differences (missing series/point/metric, unit or
//     stability changes) are always failures: a metric that vanishes is
//     drift in its most dishonest form.
//
// NaN semantics: NaN golden vs NaN fresh is agreement (the recorded value
// reproduced); NaN on exactly one side is a drift.  A zero baseline makes
// relative error undefined, so the absolute tolerance alone decides.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hslb/report/result_set.hpp"

namespace hslb::report {

struct Tolerance {
  double rel = 0.0;  ///< |fresh - golden| <= rel * |golden| passes
  double abs = 0.0;  ///< ... or |fresh - golden| <= abs passes
};

struct TolerancePolicy {
  Tolerance deterministic_default{1e-9, 1e-12};
  Tolerance timing_default{0.5, 1e-3};
  bool check_timing = false;
  /// Overrides, most specific wins: "bench.series.metric", "bench.metric",
  /// then "metric".
  std::map<std::string, Tolerance> per_metric;

  Tolerance for_cell(const std::string& bench, const std::string& series,
                     const Cell& cell) const;
};

enum class DriftKind {
  kValue,          ///< numeric difference beyond tolerance
  kMissingSeries,  ///< golden series absent from fresh
  kMissingPoint,
  kMissingMetric,
  kExtraSeries,    ///< fresh grew content the golden never recorded
  kExtraPoint,
  kExtraMetric,
  kUnitChanged,
  kStabilityChanged,
  kBenchMismatch,  ///< the two sets are not even the same bench
};

const char* to_string(DriftKind kind);

struct Drift {
  DriftKind kind = DriftKind::kValue;
  std::string bench;
  std::string series;
  double x = 0.0;
  std::string metric;
  double golden = 0.0;
  double fresh = 0.0;
  double rel_error = 0.0;  ///< 0 when undefined (zero baseline, structural)
  std::string message;     ///< one human-readable line
};

struct DiffResult {
  std::vector<Drift> drifts;
  int cells_compared = 0;
  int cells_skipped_timing = 0;
  bool ok() const { return drifts.empty(); }
};

/// Compare fresh against golden under the policy.  Golden is authoritative:
/// everything it records must be present and within tolerance; anything
/// extra in fresh is also flagged (an unexplained new number is a schema
/// change that should come with a golden refresh).
DiffResult diff(const ResultSet& golden, const ResultSet& fresh,
                const TolerancePolicy& policy = {});

/// One line per drift plus a summary tail; "" when clean.
std::string render_drift_report(const DiffResult& result);

}  // namespace hslb::report
