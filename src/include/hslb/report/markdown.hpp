// Markdown rendering helpers for the generated docs: a GitHub pipe-table
// builder and the paper-reference lookup (docs/paper_reference.json, the
// checked-in transcription of Alexeev et al.'s published numbers).
//
// Formatting rule: every number in a generated doc goes through
// format_fixed with an explicit precision, never through shortest-double --
// docs round for humans, artifacts keep every bit.  Rounded rendering also
// makes the byte-identical regeneration contract robust to sub-tolerance
// floating-point wiggle between hosts.
#pragma once

#include <string>
#include <vector>

#include "hslb/common/expected.hpp"
#include "hslb/report/json.hpp"

namespace hslb::report {

/// GitHub-flavored pipe table.  Cells are escaped ('|' -> '\|'); column
/// counts are enforced so a half-filled row cannot silently render.
class MarkdownTable {
 public:
  explicit MarkdownTable(std::vector<std::string> header);

  MarkdownTable& row(std::vector<std::string> cells);
  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// The paper's published values, loaded from docs/paper_reference.json:
///   { "paper": "...citation...",
///     "values":  { "table3_1deg.manual_total_s@128": 416.0, ... },
///     "strings": { "table3_eighth.ocn_pick@8192": "2356", ... } }
/// Lookups are hard errors when the key is missing: a doc anchored to a
/// paper number must fail to build rather than render a blank.
struct PaperRefError {
  std::string message;
};

class PaperRef {
 public:
  static common::Expected<PaperRef, PaperRefError> load(
      const std::string& path);

  double number(const std::string& key) const;
  std::string text(const std::string& key) const;
  const std::string& citation() const { return citation_; }

 private:
  Json values_ = Json::object();
  Json strings_ = Json::object();
  std::string citation_;
};

}  // namespace hslb::report
