// Householder-QR linear least squares, used by the Levenberg-Marquardt
// inner step and by linear calibration utilities.
#pragma once

#include "hslb/linalg/matrix.hpp"

namespace hslb::linalg {

/// Result of an unconstrained linear least-squares solve min ||Ax - b||^2.
struct LeastSquaresResult {
  Vector x;            ///< minimizer
  double residual_norm = 0.0;  ///< ||A x - b||
  bool full_rank = true;       ///< false if A was rank-deficient (minimum-norm-ish fallback used)
};

/// Solve min ||A x - b||_2 via Householder QR with column norm checks.
/// Requires rows >= cols.  On rank deficiency, small pivots are regularized
/// and `full_rank` is cleared.
LeastSquaresResult solve_least_squares(const Matrix& a,
                                       std::span<const double> b);

}  // namespace hslb::linalg
