// Sparse basis factorization for the revised simplex.
//
// The LP constraint matrices in this library are sparse (chord rows carry
// two or three structural entries, cut rows a handful) and the simplex
// basis changes by one column per pivot, so refactorizing a dense B every
// iteration -- what the legacy engine does -- wastes almost all of its
// work.  This module provides the three pieces the revised simplex needs:
//
//  * SparseColumns -- compressed column storage (CSC), append-only.
//  * SparseLu      -- LU of a sparse basis with Markowitz pivoting: each
//                     elimination step picks the admissible entry with the
//                     smallest (r_i-1)(c_j-1) fill bound, subject to a
//                     relative column-magnitude threshold for stability.
//                     The stored L and U columns serve all four triangular
//                     solves, so one factorization answers both FTRAN
//                     (B x = b) and BTRAN (B^T y = c).
//  * EtaFile       -- product-form rank-1 updates: replacing basis column
//                     r by a column with FTRAN image w multiplies B by an
//                     elementary matrix E (identity except column r = w),
//                     and B_new^{-1} = E^{-1} B^{-1}.  Applying an eta
//                     costs O(nnz(w)); a solve through base factor + eta
//                     file replaces a refactorization per pivot.
//
// Everything here is deterministic: pivot ties break on the smallest
// (markowitz, column, row) tuple, eta entries are gathered in index order,
// and no randomized or timing-dependent choices exist.  Two runs on the
// same inputs produce bit-identical factors and solves on any thread.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hslb::linalg {

/// Append-only compressed-column (CSC) matrix.  Columns are added once via
/// add_entry()/finish_column() and then read through spans; reset() recycles
/// the storage for the next build.
class SparseColumns {
 public:
  SparseColumns() = default;
  explicit SparseColumns(int rows) { reset(rows); }

  void reset(int rows) {
    rows_ = rows;
    start_.assign(1, 0);
    index_.clear();
    value_.clear();
  }

  /// Append an entry to the column currently under construction.  Zeros are
  /// skipped so callers can feed dense rows without pre-filtering.
  void add_entry(int row, double value) {
    if (value != 0.0) {
      index_.push_back(row);
      value_.push_back(value);
    }
  }

  /// Close the column under construction (every column must be closed, even
  /// when empty).
  void finish_column() { start_.push_back(static_cast<int>(index_.size())); }

  int rows() const { return rows_; }
  int cols() const { return static_cast<int>(start_.size()) - 1; }
  std::size_t nnz() const { return index_.size(); }

  std::span<const int> col_index(int j) const {
    return std::span<const int>(index_)
        .subspan(static_cast<std::size_t>(start_[j]),
                 static_cast<std::size_t>(start_[j + 1] - start_[j]));
  }
  std::span<const double> col_value(int j) const {
    return std::span<const double>(value_)
        .subspan(static_cast<std::size_t>(start_[j]),
                 static_cast<std::size_t>(start_[j + 1] - start_[j]));
  }

 private:
  int rows_ = 0;
  std::vector<int> start_{0};  // size cols+1
  std::vector<int> index_;
  std::vector<double> value_;
};

struct SparseLuOptions {
  /// A pivot must reach this fraction of its column's largest active
  /// magnitude (the classic threshold-pivoting compromise between fill and
  /// stability).
  double rel_pivot_tol = 0.1;
  /// Below this absolute magnitude a candidate is treated as zero; if no
  /// column offers any admissible pivot the matrix is declared singular.
  double abs_pivot_tol = 1e-12;
};

/// Sparse LU with Markowitz pivoting.  factorize() consumes a square CSC
/// matrix (column k = basis position k); ftran()/btran() then solve against
/// B and B^T from the same stored factors.
class SparseLu {
 public:
  /// Factorize the m x m matrix `b`.  Returns false when singular under the
  /// pivot thresholds; the factor is then unusable.
  bool factorize(const SparseColumns& b, const SparseLuOptions& opts = {});

  int size() const { return m_; }
  bool valid() const { return valid_; }
  /// Entries stored in L and U together (the fill measure the simplex uses
  /// to budget eta growth).
  long factor_nnz() const {
    return static_cast<long>(l_index_.size() + u_index_.size()) + m_;
  }

  /// Solve B x = rhs.  `rhs` is indexed by row, `out` by basis position
  /// (the convention the simplex ratio test wants).  `work` must hold m
  /// doubles.  Aliasing rhs/out is allowed.
  void ftran(std::span<const double> rhs, std::span<double> out,
             std::span<double> work) const;

  /// Solve B^T y = rhs.  `rhs` is indexed by basis position, `out` by row
  /// (the pricing convention).  `work` must hold m doubles.
  void btran(std::span<const double> rhs, std::span<double> out,
             std::span<double> work) const;

 private:
  int m_ = 0;
  bool valid_ = false;
  // Column-compressed L (unit diagonal implicit, entries strictly below it)
  // and U (entries strictly above, diagonal separate), both in pivot-order
  // coordinates.
  std::vector<int> l_start_, u_start_;
  std::vector<int> l_index_, u_index_;
  std::vector<double> l_value_, u_value_;
  std::vector<double> u_diag_;
  std::vector<int> row_at_;  // pivot position k -> original row
  std::vector<int> col_at_;  // pivot position k -> original column
};

/// Product-form eta file.  Each record remembers the pivot position r and
/// the FTRAN image w of the entering column; solves stream through the
/// records after (FTRAN) or before (BTRAN, transposed, in reverse) the base
/// factor.  Storage is two flat pools, so clear() recycles capacity and a
/// long solve sequence performs no per-eta allocation in steady state.
class EtaFile {
 public:
  void clear() {
    recs_.clear();
    index_.clear();
    value_.clear();
  }

  int count() const { return static_cast<int>(recs_.size()); }
  long nnz() const { return static_cast<long>(index_.size()); }

  /// Append an update: basis position r replaced by a column whose FTRAN
  /// image (through base factor + existing etas) is the dense vector `w`.
  /// Returns false -- file unchanged -- when |w[r]| falls below
  /// `stability_tol * max(1, ||w||_inf)`: such an eta would amplify error
  /// on every later solve, and the caller must refactorize instead.
  bool append(std::span<const double> w, int r, double stability_tol);

  /// Apply every eta in order: x := E_k^{-1} ... E_1^{-1} x.
  void apply_ftran(std::span<double> x) const;

  /// Apply every eta transposed in reverse order (the BTRAN prologue).
  void apply_btran(std::span<double> y) const;

 private:
  struct Rec {
    int start = 0;  // into index_/value_
    int len = 0;
    int r = 0;      // pivot position
    double wr = 0;  // w[r]
  };
  std::vector<Rec> recs_;
  std::vector<int> index_;
  std::vector<double> value_;
};

}  // namespace hslb::linalg
