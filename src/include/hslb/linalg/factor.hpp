// Dense factorizations: LU with partial pivoting and a modified-Cholesky
// (LDL^T with diagonal regularization) used by the Newton steps of the
// barrier NLP solver.
#pragma once

#include <optional>

#include "hslb/linalg/matrix.hpp"

namespace hslb::linalg {

/// LU factorization with partial pivoting of a square matrix.
class LuFactor {
 public:
  /// Factor `a`; returns std::nullopt if the matrix is numerically singular.
  static std::optional<LuFactor> compute(const Matrix& a);

  /// Solve A x = b.
  Vector solve(std::span<const double> b) const;

  /// Solve A^T y = b from the same factorization (A^T = U^T L^T P).  A and
  /// A^T are singular together, so callers that need both orientations get
  /// one consistent verdict instead of two factorizations that can disagree
  /// on badly row-scaled matrices.
  Vector solve_transposed(std::span<const double> b) const;

  /// Determinant of A (product of pivots with sign).
  double determinant() const;

  std::size_t dim() const { return lu_.rows(); }

 private:
  LuFactor() = default;
  Matrix lu_;                  // combined L (unit diagonal) and U
  std::vector<std::size_t> perm_;  // row permutation
  int perm_sign_ = 1;
};

/// Modified Cholesky: factors A + tau*I = L L^T for the smallest tau >= 0
/// (from a geometric schedule) that makes the shifted matrix positive
/// definite.  Returns the shift actually applied; Newton methods use it to
/// detect indefiniteness.
class CholeskyFactor {
 public:
  /// Factor the symmetric matrix `a` (only the lower triangle is read).
  /// `max_shift` bounds the regularization; beyond it, returns nullopt.
  static std::optional<CholeskyFactor> compute(const Matrix& a,
                                               double initial_shift = 0.0,
                                               double max_shift = 1e10);

  /// Solve (A + tau I) x = b via forward/back substitution.
  Vector solve(std::span<const double> b) const;

  /// The diagonal shift tau that was applied (0 if A was already SPD).
  double shift() const { return shift_; }

  std::size_t dim() const { return l_.rows(); }

 private:
  CholeskyFactor() = default;
  Matrix l_;  // lower-triangular factor
  double shift_ = 0.0;
};

}  // namespace hslb::linalg
