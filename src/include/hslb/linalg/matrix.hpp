// Dense linear algebra primitives.
//
// The optimization problems in this library are tiny (tens of variables,
// tens of constraints), so everything is dense, row-major, and written for
// clarity and numerical robustness rather than BLAS-level throughput.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hslb::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized (or filled with `value`).
  Matrix(std::size_t rows, std::size_t cols, double value = 0.0);

  /// Build from nested initializer data; every row must have equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// View of row r.
  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// Transposed copy.
  Matrix transposed() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator*=(double scale);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// --- Vector operations (free functions over std::vector<double>) ---------

/// Dot product; sizes must match.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double norm2(std::span<const double> v);

/// Infinity norm.
double norm_inf(std::span<const double> v);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Elementwise a - b.
Vector subtract(std::span<const double> a, std::span<const double> b);

/// Elementwise a + b.
Vector add(std::span<const double> a, std::span<const double> b);

/// alpha * v.
Vector scale(double alpha, std::span<const double> v);

// --- Matrix operations ----------------------------------------------------

/// Matrix-vector product A*x.
Vector matvec(const Matrix& a, std::span<const double> x);

/// Transposed matrix-vector product A^T*x.
Vector matvec_t(const Matrix& a, std::span<const double> x);

/// Matrix-matrix product A*B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// A^T * A (Gram matrix), exploiting symmetry.
Matrix gram(const Matrix& a);

}  // namespace hslb::linalg
