// The four-step HSLB pipeline (section III-F):
//   1. Gather -- benchmark the coupled model at several node counts.
//   2. Fit    -- four least-squares problems, one per component (Table II).
//   3. Solve  -- the Table I MINLP for the target machine size.
//   4. Execute-- run the model at the optimal allocation and compare.
#pragma once

#include "hslb/cesm/campaign.hpp"
#include "hslb/hslb/layout_model.hpp"
#include "hslb/hslb/resilience.hpp"
#include "hslb/obs/obs.hpp"
#include "hslb/perf/fit.hpp"

namespace hslb::core {

struct PipelineConfig {
  cesm::CaseConfig case_config;
  cesm::LayoutKind layout = cesm::LayoutKind::kHybrid;
  int total_nodes = 0;            ///< target machine slice N
  std::vector<int> gather_totals; ///< campaign sizes (step 1)
  perf::FitOptions fit_options;   ///< step 2 options
  double tsync = -1.0;  ///< ice/land sync tolerance (s); < 0: auto (5% of
                        ///< the fitted ice time at the target size)
  bool constrain_ocean = true;  ///< use the case's allowed ocean set
  bool constrain_atm = true;    ///< use the case's allowed atm set
  bool use_sos = true;
  Objective objective = Objective::kMinMax;
  minlp::SolverOptions solver;
  std::uint64_t seed = 2014;
  /// Learn a sea-ice decomposition policy (the reference-[10] companion
  /// method) before gathering, and run every benchmark and the final
  /// execution under it.  Smooths the ice curve and tightens the fit.
  bool tune_ice_decomposition = false;
  /// Fault injection for the gather step (disabled by default: the campaign
  /// takes the exact fault-free code path).  Enabling faults implicitly
  /// engages the resilience layer below.
  cesm::FaultSpec faults;
  /// Resilience knobs: outlier rejection, robust fits, targeted
  /// re-sampling, fallback fits/allocations.  Engaged whenever faults are
  /// injected, or explicitly via resilience.enabled for archived noisy
  /// samples.
  ResilienceOptions resilience;
  /// Observability wiring: borrowed trace-session/metrics-registry pointers
  /// installed (obs::Install) for the duration of the run.  The pipeline
  /// emits one span per phase (gather/fit/solve/execute) with nested
  /// solver/fitter/driver spans; metrics accumulate in the registry for
  /// core::render_metrics_block.  Null members leave the current context
  /// untouched.
  obs::Options obs;
};

/// Outcome for one component: planned nodes, model-predicted time, and the
/// time measured in the execute step.
struct ComponentOutcome {
  int nodes = 0;
  double predicted_seconds = 0.0;
  double actual_seconds = 0.0;
};

struct HslbResult {
  std::map<cesm::ComponentKind, perf::FitResult> fits;
  std::vector<cesm::BenchmarkSample> samples;
  Allocation allocation;
  std::map<cesm::ComponentKind, ComponentOutcome> components;
  double predicted_total = 0.0;  ///< model-predicted layout-combined time
  double actual_total = 0.0;     ///< measured layout-combined time
  double tsync_used = 0.0;
  minlp::MinlpResult solver_result;
  cesm::RunResult run;
  /// What the resilience layer did (empty when it never engaged).
  ResilienceReport resilience;
  /// True when any result component is degraded: a fallback interpolant
  /// replaced a proper fit, or a heuristic allocation replaced the MINLP
  /// solve.  Degraded results are usable but carry wider error bars.
  bool degraded = false;
};

/// Run all four steps.  Deterministic in the config (including seed).
[[nodiscard]] HslbResult run_hslb(const PipelineConfig& config);

/// Steps 2-3 only, from existing samples (the paper notes step 1 can be
/// skipped when benchmarks already exist).  No execute step.
[[nodiscard]] HslbResult run_hslb_from_samples(
    const PipelineConfig& config,
    const std::vector<cesm::BenchmarkSample>& samples);

/// Step 3 only, from already-fitted performance functions -- the path the
/// allocation service takes when a client ships precomputed fit curves.
/// Requires a fit for every modeled component.  No gather/fit/execute steps;
/// the returned FitResults wrap the given models verbatim.
///
/// Reentrancy contract: this function (like the two above) keeps all state
/// on the stack and in the result -- no shared mutable globals -- so any
/// number of calls may run concurrently on different threads, each with its
/// own config (including per-call obs sinks and solver event sinks).
[[nodiscard]] HslbResult run_hslb_from_fits(
    const PipelineConfig& config,
    const std::map<cesm::ComponentKind, perf::PerfModel>& fits);

/// Default campaign sizes for a target machine slice: five log-spaced totals
/// from max(32, N/16) to N (the paper benchmarks at about five core counts).
std::vector<int> default_gather_totals(int total_nodes);

}  // namespace hslb::core
