// The resilience layer of the HSLB pipeline: what happens between a noisy,
// fault-injected gather step and the fit/solve steps that assume clean data.
//
//   * MAD-based outlier rejection: corrupt or spiked samples are identified
//     by their modified z-score against a robust (Huber) pre-fit and dropped
//     before the final fit.
//   * Graceful degradation: a component left with too few clean samples is
//     re-sampled within a retry budget; if that fails too, its curve falls
//     back to a monotone nonneg-least-squares interpolant (a/n + d) and the
//     result is flagged `degraded` rather than aborting the pipeline.
//   * Heuristic allocation: when the MINLP solve exhausts its budget without
//     an incumbent, a direct grid search over the allowed sets produces a
//     feasible (if suboptimal) allocation from the fitted curves.
#pragma once

#include <map>

#include "hslb/cesm/campaign.hpp"
#include "hslb/hslb/layout_model.hpp"
#include "hslb/perf/fit.hpp"

namespace hslb::core {

/// Knobs for the resilience layer.  Engaged when PipelineConfig::faults is
/// enabled or `enabled` is set explicitly (for archived noisy samples).
struct ResilienceOptions {
  bool enabled = false;  ///< force resilience even without injected faults
  common::RetryPolicy retry;      ///< per-benchmark retry/backoff budget
  double outlier_threshold = 3.5; ///< modified z-score cutoff (MAD units)
  int min_clean_samples = 3;      ///< fewer clean samples => degrade
  int max_resample_rounds = 2;    ///< targeted re-sampling budget
  bool robust_fit = true;         ///< Huber loss in the final fits
};

/// Outlier-rejection outcome for one component's series.
struct FilteredSeries {
  cesm::Series series;   ///< the clean samples
  int rejected = 0;      ///< samples dropped as outliers
};

/// Reject outliers from a (nodes, seconds) series: fit a robust Huber curve,
/// compute relative residuals, and drop samples whose modified z-score
/// (0.6745 |r - median| / MAD) exceeds `threshold`.  Series with fewer than
/// four samples are passed through unchanged (MAD needs a quorum).
FilteredSeries reject_outliers(const cesm::Series& series, double threshold,
                               const perf::FitOptions& fit_options);

/// Monotone fallback curve for a component with too few clean samples: the
/// nonnegative least-squares fit of a/n + d through whatever points remain
/// (monotone non-increasing by construction).  Requires >= 1 sample.
perf::FitResult fallback_fit(const cesm::Series& series);

/// Direct grid-search allocation from fitted curves, used when the MINLP
/// solver returns no usable incumbent within its budget.  Honors the
/// allowed sets and memory floors; ignores the sync tolerance (this is a
/// degraded-mode answer, flagged as such by the pipeline).
Allocation heuristic_allocation(const LayoutModelSpec& spec);

/// Per-component resilience outcome, reported in HslbResult.
struct ComponentResilience {
  int samples_used = 0;      ///< clean samples the fit consumed
  int samples_rejected = 0;  ///< dropped as outliers
  int resample_runs = 0;     ///< targeted re-sampling campaign runs
  bool degraded_fit = false; ///< fallback interpolant used instead of fit
};

/// Pipeline-wide resilience outcome.
struct ResilienceReport {
  std::map<cesm::ComponentKind, ComponentResilience> components;
  bool solver_fallback = false;  ///< heuristic allocation replaced the MINLP
  cesm::CampaignFaultReport campaign;

  /// True when anything had to degrade (fallback fit or heuristic solve).
  bool degraded() const;
};

}  // namespace hslb::core
