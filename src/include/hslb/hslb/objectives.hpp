// Allocation quality metrics, used to compare the objective choices of
// section III-D (equations (1)-(3)) and to report load balance.
#pragma once

#include "hslb/hslb/layout_model.hpp"

namespace hslb::core {

/// Balance diagnostics of an allocation under a set of performance models.
struct BalanceMetrics {
  double combined_total = 0.0;   ///< layout-combined wall clock
  double max_component = 0.0;    ///< slowest component
  double min_component = 0.0;    ///< fastest component
  double sum_components = 0.0;   ///< total component CPU-time
  double imbalance = 0.0;        ///< max/min - 1
  double node_seconds = 0.0;     ///< cost proxy: footprint * combined_total
  double icelnd_gap = 0.0;       ///< |T_ice - T_lnd| (layout-1 sync quality)
};

/// Evaluate an allocation against per-component performance models (pass
/// the fitted models for predicted metrics, or the case's truth laws via
/// predicted-time maps for actual metrics).
BalanceMetrics evaluate_balance(
    cesm::LayoutKind layout,
    const std::map<cesm::ComponentKind, int>& nodes,
    const std::map<cesm::ComponentKind, double>& seconds);

/// Simulated-years-per-day throughput for a run of `days` simulated days
/// that took `seconds` of wall clock: the CESM community's headline metric.
double simulated_years_per_day(int days, double seconds);

}  // namespace hslb::core
