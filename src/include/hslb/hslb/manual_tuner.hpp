// The "manual" baseline: a codified version of the expert tuning procedure
// the paper compares against (section II / IV):
//   * run the model at about five node counts and plot per-component scaling,
//   * read times off the plotted curves (log-log interpolation between the
//     sampled points -- an expert does not have the fitted law),
//   * iterate a handful of candidate layouts by hand, preferring round
//     numbers and known component sweet spots,
//   * submit the best-looking candidate.
#pragma once

#include "hslb/cesm/campaign.hpp"
#include "hslb/hslb/layout_model.hpp"

namespace hslb::core {

struct ManualTunerConfig {
  cesm::LayoutKind layout = cesm::LayoutKind::kHybrid;
  int total_nodes = 0;
  bool constrain_ocean = true;   ///< restrict to the case's allowed set
  int candidate_rounds = 8;      ///< layouts the expert is willing to try
  int rounding = 8;              ///< humans pick multiples of this
  std::uint64_t seed = 77;
};

struct ManualResult {
  std::map<cesm::ComponentKind, int> nodes;
  std::map<cesm::ComponentKind, double> estimated_seconds;  ///< off the plots
  std::map<cesm::ComponentKind, double> actual_seconds;     ///< measured
  double estimated_total = 0.0;
  double actual_total = 0.0;
  cesm::RunResult run;
};

/// Tune by hand from existing scaling runs, then execute the chosen layout.
[[nodiscard]] ManualResult run_manual(
    const cesm::CaseConfig& case_config, const ManualTunerConfig& config,
    const std::vector<cesm::BenchmarkSample>& samples);

/// Piecewise log-log interpolation through (nodes, seconds) samples, the
/// way an expert reads a scaling plot.  Extrapolates with the end slopes.
class ScalingCurve {
 public:
  ScalingCurve(std::vector<double> nodes, std::vector<double> seconds);

  double operator()(double nodes) const;

 private:
  std::vector<double> log_n_;
  std::vector<double> log_t_;
};

}  // namespace hslb::core
