// Table I: the MINLP allocation models for layouts (1)-(3).
//
// Decision variables (per component j in {ice, lnd, atm, ocn}):
//   n_j  -- nodes allocated (positive integer, memory floor .. machine size)
//   t_j  -- defined time t_j == T_j(n_j) via a univariate link
//   T    -- total wall-clock time; T_icelnd -- the ice/land phase (layout 1)
//
// Layout 1 (Table I lines 14-21):
//   T_icelnd >= t_i,  T_icelnd >= t_l,  T >= T_icelnd + t_a,  T >= t_o,
//   t_l >= t_i - Tsync,  t_l <= t_i + Tsync,
//   n_a + n_o <= N,  n_i + n_l <= n_a
// Layout 2 (lines 22-26):  T >= t_i + t_l + t_a,  T >= t_o,
//   n_i <= N - n_o,  n_l <= N - n_o,  n_a <= N - n_o
// Layout 3 (lines 27-28):  T >= t_i + t_l + t_a + t_o,  n_j <= N
// All layouts (lines 29-31): the ocean and atmosphere allocations may be
// restricted to explicit sets O and A via binary selections z_k, branched as
// special ordered sets.
#pragma once

#include <map>
#include <vector>

#include "hslb/cesm/component.hpp"
#include "hslb/cesm/layout.hpp"
#include "hslb/minlp/branch_and_bound.hpp"
#include "hslb/perf/perf_model.hpp"

namespace hslb::core {

/// Objective choices of section III-D, equations (1)-(3).
enum class Objective {
  kMinMax,  ///< minimize the layout-combined total time (the paper's choice)
  kMaxMin,  ///< maximize the minimum component time
  kMinSum,  ///< minimize the sum of component times
};

const char* to_string(Objective objective);

struct LayoutModelSpec {
  cesm::LayoutKind layout = cesm::LayoutKind::kHybrid;
  int total_nodes = 0;  ///< N
  std::map<cesm::ComponentKind, perf::PerfModel> perf;  ///< fitted T_j
  std::vector<int> atm_allowed;  ///< set A (empty: any integer count)
  std::vector<int> ocn_allowed;  ///< set O (empty: any integer count)
  std::map<cesm::ComponentKind, int> min_nodes;  ///< memory floors
  double tsync = lp::kInf;  ///< ice/land sync tolerance; inf disables
  Objective objective = Objective::kMinMax;
  bool use_sos = true;  ///< SOS1 branching on the allocation sets
};

/// Variable indices of a built layout model.
struct LayoutModelVars {
  std::size_t total_time = 0;    ///< T
  std::size_t icelnd_time = 0;   ///< T_icelnd (layout 1 only; == total_time otherwise)
  std::map<cesm::ComponentKind, std::size_t> nodes;  ///< n_j
  std::map<cesm::ComponentKind, std::size_t> times;  ///< t_j
};

/// Build the MINLP of Table I for the spec.  `vars` receives the indices.
[[nodiscard]] minlp::Model build_layout_model(const LayoutModelSpec& spec,
                                              LayoutModelVars* vars);

/// A solved node allocation with model-predicted component times.
struct Allocation {
  std::map<cesm::ComponentKind, int> nodes;
  std::map<cesm::ComponentKind, double> predicted_seconds;
  double predicted_total = 0.0;  ///< layout-combined predicted time

  cesm::Layout as_layout(cesm::LayoutKind kind) const;
};

/// Read an allocation out of a solver result.
Allocation extract_allocation(const LayoutModelSpec& spec,
                              const LayoutModelVars& vars,
                              const minlp::MinlpResult& result);

}  // namespace hslb::core
