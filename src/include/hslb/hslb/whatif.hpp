// What-if studies (section IV-C): once the mathematical model exists, HSLB
// can answer questions beyond "tune this machine slice":
//   * the cost of allocation-set constraints and sweet spots,
//   * which layout scales better,
//   * the effect of swapping one component implementation for another,
//   * predicted scaling at machine sizes never benchmarked (e.g. the next
//     machine), and
//   * the optimal number of nodes for a job under a cost-efficiency goal.
#pragma once

#include "hslb/hslb/layout_model.hpp"

namespace hslb::core {

/// Effect of the discrete allocation sets (Table I lines 29-31).
struct ConstraintEffect {
  Allocation constrained;
  Allocation unconstrained;
  double constrained_total = 0.0;
  double unconstrained_total = 0.0;
  /// Fractional slowdown caused by the sets: constrained/unconstrained - 1.
  double relative_cost = 0.0;
};

/// Solve the spec with and without its allocation sets.
ConstraintEffect constraint_effect(const LayoutModelSpec& spec,
                                   const minlp::SolverOptions& options = {});

/// One point of a predicted scaling curve.
struct ScalingPoint {
  int total_nodes = 0;
  double predicted_total = 0.0;
  Allocation allocation;
  /// Parallel efficiency relative to the first (smallest) swept size.
  double efficiency = 1.0;
};

/// Predicted optimal time at each machine size (spec.total_nodes ignored).
std::vector<ScalingPoint> scaling_forecast(
    const LayoutModelSpec& spec, std::span<const int> sizes,
    const minlp::SolverOptions& options = {});

/// Re-solve with one component's performance model replaced ("how replacing
/// one component with another will affect scaling").  Returns the new
/// allocation; `new_total` receives the predicted total.
Allocation swap_component(const LayoutModelSpec& spec,
                          cesm::ComponentKind kind,
                          const perf::PerfModel& replacement,
                          double* new_total,
                          const minlp::SolverOptions& options = {});

/// Node-count recommendation under a parallel-efficiency floor.
struct SizeRecommendation {
  int cost_efficient_nodes = 0;   ///< largest size above the floor
  double cost_efficient_total = 0.0;
  int fastest_nodes = 0;          ///< global minimum of predicted time
  double fastest_total = 0.0;
  std::vector<ScalingPoint> sweep;
};

SizeRecommendation recommend_size(const LayoutModelSpec& spec,
                                  std::span<const int> sizes,
                                  double efficiency_floor = 0.6,
                                  const minlp::SolverOptions& options = {});

}  // namespace hslb::core
