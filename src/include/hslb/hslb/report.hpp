// Report rendering: Table III blocks, Figure 1 layout diagrams, and scaling
// curve series, in the same shape the paper presents them.
#pragma once

#include <string>

#include "hslb/common/table.hpp"
#include "hslb/hslb/manual_tuner.hpp"
#include "hslb/hslb/pipeline.hpp"

namespace hslb::core {

/// One Table III block: per-component manual vs HSLB (predicted + actual)
/// node counts and timings, plus the total-time row.
common::Table render_table3_block(const ManualResult& manual,
                                  const HslbResult& hslb);

/// Variant without a manual baseline (the unconstrained-ocean blocks report
/// predicted vs tuned-actual only).
common::Table render_table3_block(const HslbResult& hslb);

/// Figure 1-style ASCII area diagram of a layout: component width is the
/// node share, height is the time share.
std::string render_layout_ascii(const cesm::Layout& layout,
                                const std::map<cesm::ComponentKind, double>&
                                    seconds,
                                int width = 60, int height = 12);

/// Per-component fitted-parameter summary (the Figure 2 inset).
common::Table render_fit_summary(
    const std::map<cesm::ComponentKind, perf::FitResult>& fits);

/// Observability block printed next to the Table III output: solver/fitter
/// counters and gauges followed by the histogram table.  Empty registry
/// renders headers only.
std::string render_metrics_block(const obs::Registry& registry);

/// Resilience block: the campaign fault tally, per-component outlier /
/// re-sampling / fallback outcomes, and the solver-fallback flag.  Returns
/// an empty string when nothing happened (no faults, nothing degraded), so
/// fault-free reports stay exactly as before.
std::string render_resilience_block(const HslbResult& hslb);

}  // namespace hslb::core
