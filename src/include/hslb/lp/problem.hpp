// Linear program container.
//
// The LP layer plays the role of CLP inside MINOTAUR: it solves the MILP /
// LP relaxations produced by the outer-approximation branch-and-bound.
// Problems are stored dense (rows are full coefficient vectors) -- every LP
// in this library has at most a few dozen rows and a couple thousand
// columns, so density is the simple and fast choice.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "hslb/linalg/matrix.hpp"

namespace hslb::lp {

/// +infinity sentinel for unbounded row/column limits.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// A linear constraint: lower <= coeffs . x <= upper.
struct Row {
  linalg::Vector coeffs;
  double lower = -kInf;
  double upper = kInf;
  std::string name;
};

/// Minimization LP:  min c.x + offset  s.t.  row bounds and column bounds.
class LpProblem {
 public:
  LpProblem() = default;

  /// Add a variable; returns its column index.
  std::size_t add_variable(double lower, double upper, double cost,
                           std::string name = {});

  /// Add a constraint row; `coeffs` must have one entry per variable
  /// (add all variables first).  Returns the row index.
  std::size_t add_row(linalg::Vector coeffs, double lower, double upper,
                      std::string name = {});

  std::size_t num_vars() const { return cost_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  const linalg::Vector& cost() const { return cost_; }
  double objective_offset() const { return offset_; }
  void set_objective_offset(double offset) { offset_ = offset; }
  void set_cost(std::size_t var, double cost);

  const linalg::Vector& col_lower() const { return col_lower_; }
  const linalg::Vector& col_upper() const { return col_upper_; }
  void set_col_bounds(std::size_t var, double lower, double upper);

  const std::vector<Row>& rows() const { return rows_; }
  const std::string& var_name(std::size_t var) const { return names_[var]; }

 private:
  linalg::Vector cost_;
  linalg::Vector col_lower_;
  linalg::Vector col_upper_;
  std::vector<std::string> names_;
  std::vector<Row> rows_;
  double offset_ = 0.0;
};

}  // namespace hslb::lp
