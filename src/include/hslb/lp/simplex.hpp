// Bounded-variable primal simplex.
//
// Two-phase dense revised simplex with implicit handling of variable bounds
// (nonbasic variables rest at a finite bound and may "bound flip" without a
// basis change) and artificial variables for Phase I.  Dantzig pricing with
// a Bland's-rule fallback guarantees termination.
//
// Warm starts: a solve may capture its optimal Basis (statuses of the
// structural columns and the row slacks), and resolve_from_basis() restarts
// a *related* problem from it -- same columns, rows added/removed/reordered
// by the caller via map_basis().  A complete, factorizable warm basis skips
// Phase I entirely: directly when it is still primal feasible, and through
// a dual-simplex repair phase when the new problem cuts the old optimum off
// (the branch-and-bound norm -- tightened bounds and fresh cuts exist
// precisely to exclude the parent's vertex).  The repair needs no dual
// feasibility to be correct: any valid pivot sequence ending primal
// feasible is a legitimate Phase-II start, and its iteration cap falls back
// to the ordinary cold start.  Either way Phase II runs the ordinary pivot
// rules afterwards, so a warm solve is exactly as correct as a cold one
// (property-tested).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hslb/lp/problem.hpp"

namespace hslb::lp {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

const char* to_string(LpStatus status);

/// Status of one column (or row slack) in a captured simplex basis.
enum class BasisStatus : unsigned char {
  kUnset,    ///< no information; the solver uses its default resting point
  kBasic,
  kAtLower,
  kAtUpper,
  kFree,
  kFixed,
};

/// A captured simplex basis: one status per structural column and one per
/// row slack.  `cols` is indexed like the problem's variables; `row_slacks`
/// like its rows.  Empty vectors mean "no basis" (cold solve).
struct Basis {
  std::vector<BasisStatus> cols;
  std::vector<BasisStatus> row_slacks;

  bool empty() const { return cols.empty() && row_slacks.empty(); }
};

/// Remap a captured basis onto a problem whose rows moved.  `from_keys[i]`
/// names row i of the problem the basis was captured on; `to_keys[i]` names
/// row i of the new problem (any caller-chosen stable identifiers).  Rows of
/// the new problem with no match get a BASIC slack (the textbook basis
/// extension: if the new row holds at the warm point, the extended basis is
/// still primal feasible and Phase I is skipped); rows that vanished simply
/// drop out, which leaves the basis short and forces the cold fallback.
/// Column statuses pass through unchanged (the column set must be identical
/// between the two problems).
[[nodiscard]] Basis map_basis(const Basis& from,
                              std::span<const std::uint64_t> from_keys,
                              std::span<const std::uint64_t> to_keys);

struct SimplexOptions {
  double feasibility_tol = 1e-7;   ///< bound/row violation tolerance
  double optimality_tol = 1e-8;    ///< reduced-cost tolerance
  int max_iterations = 50000;      ///< across both phases
  /// Capture the final basis into LpSolution::basis on optimal termination
  /// (for warm-starting a related re-solve).  Off by default: capturing
  /// copies two status vectors per solve.
  bool capture_basis = false;
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;       ///< includes the problem's objective offset
  linalg::Vector x;             ///< primal point (structural variables only)
  int iterations = 0;           ///< simplex pivots performed
  int phase1_iterations = 0;    ///< pivots spent in Phase I (0: skipped)
  /// True when the warm basis was actually reused; false when the solve
  /// fell back to the cold all-artificial start.
  bool warm_used = false;
  /// True when basis reuse skipped Phase I -- either the warm basis was
  /// still primal feasible, or the dual repair phase restored feasibility.
  bool warm_phase1_skipped = false;
  /// Final basis (only when SimplexOptions::capture_basis and optimal;
  /// empty when an artificial remained basic -- such a basis is not
  /// reusable).
  Basis basis;
};

/// Solve the LP by two-phase bounded-variable primal simplex.
[[nodiscard]] LpSolution solve(const LpProblem& problem,
                               const SimplexOptions& options = {});

/// Solve starting from a previously captured (and caller-remapped) basis.
/// Falls back to the cold path when the basis is empty or unusable; the
/// result is identical to solve() up to degenerate vertex choice.
[[nodiscard]] LpSolution resolve_from_basis(const LpProblem& problem,
                                            const Basis& warm,
                                            const SimplexOptions& options = {});

}  // namespace hslb::lp
