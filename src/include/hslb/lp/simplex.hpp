// Bounded-variable primal simplex.
//
// Two-phase dense revised simplex with implicit handling of variable bounds
// (nonbasic variables rest at a finite bound and may "bound flip" without a
// basis change) and artificial variables for Phase I.  Dantzig pricing with
// a Bland's-rule fallback guarantees termination.
#pragma once

#include "hslb/lp/problem.hpp"

namespace hslb::lp {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

const char* to_string(LpStatus status);

struct SimplexOptions {
  double feasibility_tol = 1e-7;   ///< bound/row violation tolerance
  double optimality_tol = 1e-8;    ///< reduced-cost tolerance
  int max_iterations = 50000;      ///< across both phases
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;       ///< includes the problem's objective offset
  linalg::Vector x;             ///< primal point (structural variables only)
  int iterations = 0;           ///< simplex pivots performed
};

/// Solve the LP by two-phase bounded-variable primal simplex.
[[nodiscard]] LpSolution solve(const LpProblem& problem,
                               const SimplexOptions& options = {});

}  // namespace hslb::lp
