// Bounded-variable primal simplex.
//
// Two-phase revised simplex with implicit handling of variable bounds
// (nonbasic variables rest at a finite bound and may "bound flip" without a
// basis change) and artificial variables for Phase I.  Dantzig pricing with
// a Bland's-rule fallback guarantees termination.
//
// Two engines share these rules.  The default sparse engine stores the
// constraint matrix in CSC form, factorizes the basis once per (re)start
// with a Markowitz-pivoting sparse LU, and applies product-form eta updates
// on each pivot -- pricing runs through BTRAN/FTRAN on the maintained
// factor, and a deterministic trigger (eta count / fill / pivot stability)
// forces a refactorization when the eta file degrades.  The legacy dense
// engine refactorizes every pivot; it survives as the comparison baseline
// and a bit-stable reference (see DESIGN.md section 15).
//
// Warm starts: a solve may capture its optimal Basis (statuses of the
// structural columns and the row slacks), and resolve_from_basis() restarts
// a *related* problem from it -- same columns, rows added/removed/reordered
// by the caller via map_basis().  A complete, factorizable warm basis skips
// Phase I entirely: directly when it is still primal feasible, and through
// a dual-simplex repair phase when the new problem cuts the old optimum off
// (the branch-and-bound norm -- tightened bounds and fresh cuts exist
// precisely to exclude the parent's vertex).  The repair needs no dual
// feasibility to be correct: any valid pivot sequence ending primal
// feasible is a legitimate Phase-II start, and its iteration cap falls back
// to the ordinary cold start.  Either way Phase II runs the ordinary pivot
// rules afterwards, so a warm solve is exactly as correct as a cold one
// (property-tested).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "hslb/lp/problem.hpp"

namespace hslb::lp {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

const char* to_string(LpStatus status);

/// Status of one column (or row slack) in a captured simplex basis.
enum class BasisStatus : unsigned char {
  kUnset,    ///< no information; the solver uses its default resting point
  kBasic,
  kAtLower,
  kAtUpper,
  kFree,
  kFixed,
};

/// A captured simplex basis: one status per structural column and one per
/// row slack.  `cols` is indexed like the problem's variables; `row_slacks`
/// like its rows.  Empty vectors mean "no basis" (cold solve).
struct Basis {
  std::vector<BasisStatus> cols;
  std::vector<BasisStatus> row_slacks;

  bool empty() const { return cols.empty() && row_slacks.empty(); }
};

/// Remap a captured basis onto a problem whose rows moved.  `from_keys[i]`
/// names row i of the problem the basis was captured on; `to_keys[i]` names
/// row i of the new problem (any caller-chosen stable identifiers).  Rows of
/// the new problem with no match get a BASIC slack (the textbook basis
/// extension: if the new row holds at the warm point, the extended basis is
/// still primal feasible and Phase I is skipped); rows that vanished simply
/// drop out, which leaves the basis short and forces the cold fallback.
/// Column statuses pass through unchanged (the column set must be identical
/// between the two problems).
[[nodiscard]] Basis map_basis(const Basis& from,
                              std::span<const std::uint64_t> from_keys,
                              std::span<const std::uint64_t> to_keys);

/// Which simplex implementation runs the pivot rules.
enum class LpEngine : unsigned char {
  kSparse = 0,  ///< maintained sparse LU + eta updates (the default)
  kDense,       ///< legacy dense LU refactorized every pivot
};

/// Opaque maintained-factorization snapshot captured by the sparse engine
/// (basis LU + eta file + row identity, immutable and safely shared across
/// threads).  Produced via SimplexOptions::capture_factor, consumed via
/// WarmFactor so a child node's re-solve starts from its parent's updated
/// factor instead of a cold factorization.
class FactorSnapshot;
using FactorRef = std::shared_ptr<const FactorSnapshot>;

/// Factor handoff input for resolve_from_basis().  `row_keys` names the
/// rows of the problem being solved (same caller-chosen identifiers as
/// map_basis) -- required for capturing a snapshot and for validating an
/// inherited one; `snapshot` is the parent's capture (may be null).  The
/// engine accepts the snapshot only when every snapshot row still exists
/// with byte-identical coefficients and the warm basis matches the
/// snapshot's basic set; anything else falls back to a fresh
/// factorization, so a handoff can change speed but never the trajectory's
/// correctness.
struct WarmFactor {
  FactorRef snapshot;
  std::span<const std::uint64_t> row_keys;
};

struct SimplexOptions {
  double feasibility_tol = 1e-7;   ///< bound/row violation tolerance
  double optimality_tol = 1e-8;    ///< reduced-cost tolerance
  int max_iterations = 50000;      ///< across both phases
  /// Capture the final basis into LpSolution::basis on optimal termination
  /// (for warm-starting a related re-solve).  Off by default: capturing
  /// copies two status vectors per solve.
  bool capture_basis = false;
  /// Engine selection; kSparse unless a caller explicitly wants the dense
  /// baseline (benchmarks, regression comparison).
  LpEngine engine = LpEngine::kSparse;
  /// Sparse engine: refactorize once this many eta updates accumulate
  /// across the whole factor stack (inherited + live).
  int refactor_interval = 64;
  /// Sparse engine: refactorize when the eta file's entries exceed this
  /// multiple of the base factor's fill (plus a small per-row allowance).
  double eta_fill_factor = 4.0;
  /// Sparse engine: refuse an eta whose pivot |w_r| falls below this
  /// fraction of max(1, ||w||_inf) and refactorize instead.
  double eta_stability_tol = 1e-8;
  /// Sparse engine: maximum depth of inherited factor levels (parent
  /// snapshots + borders) before a handoff is declined in favor of a fresh
  /// factorization.
  int max_factor_levels = 4;
  /// Capture a FactorSnapshot into LpSolution::factor on optimal
  /// termination (sparse engine only; requires WarmFactor::row_keys).
  bool capture_factor = false;
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;       ///< includes the problem's objective offset
  linalg::Vector x;             ///< primal point (structural variables only)
  int iterations = 0;           ///< simplex pivots performed
  int phase1_iterations = 0;    ///< pivots spent in Phase I (0: skipped)
  /// True when the warm basis was actually reused; false when the solve
  /// fell back to the cold all-artificial start.
  bool warm_used = false;
  /// True when basis reuse skipped Phase I -- either the warm basis was
  /// still primal feasible, or the dual repair phase restored feasibility.
  bool warm_phase1_skipped = false;
  /// Final basis (only when SimplexOptions::capture_basis and optimal;
  /// empty when an artificial remained basic -- such a basis is not
  /// reusable).
  Basis basis;

  // --- factorization accounting (all deterministic) ---
  long factorizations = 0;    ///< fresh basis LUs built (both engines)
  long refactorizations = 0;  ///< LUs forced by an eta trigger mid-solve
  long eta_updates = 0;       ///< product-form updates appended
  long bound_flips = 0;       ///< pivots resolved without a basis change
  /// Dense engine only: pricing solves where the absolute pivot threshold
  /// rejected the B^T factorization and the system was solved through the
  /// factorization of B instead (see LuFactor::solve_transposed).
  long bt_fallbacks = 0;
  /// True when an inherited FactorSnapshot was accepted and this solve
  /// started from the parent's maintained factor.
  bool factor_inherited = false;

  // --- phase timing (wall clock; excluded from fingerprints) ---
  double factor_seconds = 0.0;  ///< building LU factorizations
  double update_seconds = 0.0;  ///< appending eta updates
  double pivot_seconds = 0.0;   ///< everything else in the pivot loops

  /// Maintained-factor snapshot (only when SimplexOptions::capture_factor,
  /// sparse engine, optimal, and row keys were supplied).
  FactorRef factor;
};

/// Solve the LP by two-phase bounded-variable primal simplex.
[[nodiscard]] LpSolution solve(const LpProblem& problem,
                               const SimplexOptions& options = {});

/// Solve starting from a previously captured (and caller-remapped) basis.
/// Falls back to the cold path when the basis is empty or unusable; the
/// result is identical to solve() up to degenerate vertex choice.
[[nodiscard]] LpSolution resolve_from_basis(const LpProblem& problem,
                                            const Basis& warm,
                                            const SimplexOptions& options = {});

/// Warm re-solve with an optional maintained-factor handoff: `factor` names
/// this problem's rows and may carry the parent solve's FactorSnapshot.
/// With a valid snapshot the dual-repair/Phase-II start prices through the
/// parent's updated factor (extended by a bordered block for rows the
/// parent did not have) instead of a cold LU.  Row keys are also what lets
/// this solve capture its own snapshot for the next generation.
[[nodiscard]] LpSolution resolve_from_basis(const LpProblem& problem,
                                            const Basis& warm,
                                            const WarmFactor& factor,
                                            const SimplexOptions& options = {});

}  // namespace hslb::lp
