#include "hslb/linalg/least_squares.hpp"

#include <cmath>

#include "hslb/common/error.hpp"

namespace hslb::linalg {

LeastSquaresResult solve_least_squares(const Matrix& a,
                                       std::span<const double> b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  HSLB_REQUIRE(m >= n, "least squares needs rows >= cols");
  HSLB_REQUIRE(b.size() == m, "least squares rhs size mismatch");

  Matrix r = a;              // becomes R in the upper triangle
  Vector qtb(b.begin(), b.end());  // becomes Q^T b

  LeastSquaresResult out;
  out.full_rank = true;

  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    double alpha = 0.0;
    for (std::size_t i = k; i < m; ++i) {
      alpha += r(i, k) * r(i, k);
    }
    alpha = std::sqrt(alpha);
    if (alpha < 1e-300) {
      out.full_rank = false;
      r(k, k) = 1e-150;  // regularize a dead column; its solution entry ~ 0
      continue;
    }
    if (r(k, k) > 0.0) {
      alpha = -alpha;
    }
    Vector v(m - k);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) {
      v[i - k] = r(i, k);
    }
    const double vnorm2 = dot(v, v);
    if (vnorm2 < 1e-300) {
      r(k, k) = alpha;
      continue;
    }
    // Apply H = I - 2 v v^T / (v^T v) to trailing columns and to qtb.
    for (std::size_t c = k; c < n; ++c) {
      double proj = 0.0;
      for (std::size_t i = k; i < m; ++i) {
        proj += v[i - k] * r(i, c);
      }
      proj = 2.0 * proj / vnorm2;
      for (std::size_t i = k; i < m; ++i) {
        r(i, c) -= proj * v[i - k];
      }
    }
    double proj = 0.0;
    for (std::size_t i = k; i < m; ++i) {
      proj += v[i - k] * qtb[i];
    }
    proj = 2.0 * proj / vnorm2;
    for (std::size_t i = k; i < m; ++i) {
      qtb[i] -= proj * v[i - k];
    }
  }

  // Back substitution on the n x n upper triangle.
  out.x.assign(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = qtb[ii];
    for (std::size_t j = ii + 1; j < n; ++j) {
      sum -= r(ii, j) * out.x[j];
    }
    const double diag = r(ii, ii);
    if (std::fabs(diag) < 1e-140) {
      out.x[ii] = 0.0;
      out.full_rank = false;
    } else {
      out.x[ii] = sum / diag;
    }
  }

  const Vector resid = subtract(matvec(a, out.x), b);
  out.residual_norm = norm2(resid);
  return out;
}

}  // namespace hslb::linalg
