#include "hslb/linalg/matrix.hpp"

#include <cmath>

#include "hslb/common/error.hpp"

namespace hslb::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  HSLB_REQUIRE(!rows.empty(), "from_rows needs at least one row");
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    HSLB_REQUIRE(rows[r].size() == m.cols_, "ragged rows in from_rows");
    for (std::size_t c = 0; c < m.cols_; ++c) {
      m(r, c) = rows[r][c];
    }
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (double v : data_) {
    sum += v * v;
  }
  return std::sqrt(sum);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  HSLB_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "matrix += shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
  return *this;
}

Matrix& Matrix::operator*=(double scalefactor) {
  for (double& v : data_) {
    v *= scalefactor;
  }
  return *this;
}

double dot(std::span<const double> a, std::span<const double> b) {
  HSLB_REQUIRE(a.size() == b.size(), "dot size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

double norm2(std::span<const double> v) {
  return std::sqrt(dot(v, v));
}

double norm_inf(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) {
    m = std::max(m, std::fabs(x));
  }
  return m;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  HSLB_REQUIRE(x.size() == y.size(), "axpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

Vector subtract(std::span<const double> a, std::span<const double> b) {
  HSLB_REQUIRE(a.size() == b.size(), "subtract size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] - b[i];
  }
  return out;
}

Vector add(std::span<const double> a, std::span<const double> b) {
  HSLB_REQUIRE(a.size() == b.size(), "add size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] + b[i];
  }
  return out;
}

Vector scale(double alpha, std::span<const double> v) {
  Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = alpha * v[i];
  }
  return out;
}

Vector matvec(const Matrix& a, std::span<const double> x) {
  HSLB_REQUIRE(a.cols() == x.size(), "matvec size mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    y[r] = dot(a.row(r), x);
  }
  return y;
}

Vector matvec_t(const Matrix& a, std::span<const double> x) {
  HSLB_REQUIRE(a.rows() == x.size(), "matvec_t size mismatch");
  Vector y(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    axpy(x[r], a.row(r), y);
  }
  return y;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  HSLB_REQUIRE(a.cols() == b.rows(), "matmul size mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) {
        continue;
      }
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

Matrix gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      if (row[i] == 0.0) {
        continue;
      }
      for (std::size_t j = i; j < a.cols(); ++j) {
        g(i, j) += row[i] * row[j];
      }
    }
  }
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      g(i, j) = g(j, i);
    }
  }
  return g;
}

}  // namespace hslb::linalg
