// Markowitz-pivoting sparse LU and the product-form eta file.
//
// The factorization is a right-looking elimination over compacted column
// lists.  Per step it rescans the active submatrix for counts and column
// maxima -- O(nnz) per step, quadratic-ish overall -- which is deliberately
// simple: basis sizes here are tens to a few hundred rows, factorizations
// are the *rare* event the eta file exists to amortize, and the rescan
// keeps the pivot choice a pure function of the matrix (no priority-queue
// state to order-depend on).
#include "hslb/linalg/sparse.hpp"

#include <cmath>
#include <utility>

#include "hslb/common/error.hpp"

namespace hslb::linalg {

bool SparseLu::factorize(const SparseColumns& b, const SparseLuOptions& opts) {
  const int m = b.rows();
  HSLB_ASSERT(b.cols() == m, "SparseLu requires a square matrix");
  m_ = m;
  valid_ = false;
  l_start_.assign(1, 0);
  u_start_.clear();
  l_index_.clear();
  l_value_.clear();
  u_index_.clear();
  u_value_.clear();
  u_diag_.assign(static_cast<std::size_t>(m), 0.0);
  row_at_.assign(static_cast<std::size_t>(m), 0);
  col_at_.assign(static_cast<std::size_t>(m), 0);
  if (m == 0) {
    valid_ = true;
    return true;
  }

  // Active working columns, compacted as rows are eliminated.
  std::vector<std::vector<std::pair<int, double>>> cols(
      static_cast<std::size_t>(m));
  for (int j = 0; j < m; ++j) {
    const auto idx = b.col_index(j);
    const auto val = b.col_value(j);
    cols[static_cast<std::size_t>(j)].reserve(idx.size());
    for (std::size_t t = 0; t < idx.size(); ++t) {
      cols[static_cast<std::size_t>(j)].emplace_back(idx[t], val[t]);
    }
  }

  std::vector<char> row_done(static_cast<std::size_t>(m), 0);
  std::vector<char> col_done(static_cast<std::size_t>(m), 0);
  std::vector<int> row_count(static_cast<std::size_t>(m), 0);
  std::vector<int> col_count(static_cast<std::size_t>(m), 0);
  std::vector<double> col_max(static_cast<std::size_t>(m), 0.0);
  std::vector<int> pos_of_row(static_cast<std::size_t>(m), -1);
  std::vector<int> pos_of_col(static_cast<std::size_t>(m), -1);
  std::vector<int> mark(static_cast<std::size_t>(m), -1);
  // U entries recorded as (pivot step, original column, value); converted
  // to column-compressed form once the permutation is complete.
  std::vector<int> u_step, u_col;
  std::vector<double> u_val;
  std::vector<std::pair<int, double>> scratch;

  for (int k = 0; k < m; ++k) {
    // Exact active counts and column maxima (rescanned, see header note).
    std::fill(row_count.begin(), row_count.end(), 0);
    for (int j = 0; j < m; ++j) {
      if (col_done[static_cast<std::size_t>(j)]) {
        continue;
      }
      int cc = 0;
      double cm = 0.0;
      for (const auto& [i, v] : cols[static_cast<std::size_t>(j)]) {
        if (row_done[static_cast<std::size_t>(i)]) {
          continue;
        }
        ++cc;
        ++row_count[static_cast<std::size_t>(i)];
        const double av = std::fabs(v);
        if (av > cm) {
          cm = av;
        }
      }
      col_count[static_cast<std::size_t>(j)] = cc;
      col_max[static_cast<std::size_t>(j)] = cm;
    }

    // Markowitz choice: smallest (fill bound, column, row) among entries
    // passing the threshold test -- a total order independent of storage
    // order, so the factorization is deterministic.
    int piv_row = -1;
    int piv_col = -1;
    long piv_score = 0;
    double piv_value = 0.0;
    for (int j = 0; j < m; ++j) {
      if (col_done[static_cast<std::size_t>(j)]) {
        continue;
      }
      const double thresh = std::max(
          opts.abs_pivot_tol,
          opts.rel_pivot_tol * col_max[static_cast<std::size_t>(j)]);
      for (const auto& [i, v] : cols[static_cast<std::size_t>(j)]) {
        if (row_done[static_cast<std::size_t>(i)] || std::fabs(v) < thresh) {
          continue;
        }
        const long score =
            static_cast<long>(row_count[static_cast<std::size_t>(i)] - 1) *
            static_cast<long>(col_count[static_cast<std::size_t>(j)] - 1);
        if (piv_row < 0 || score < piv_score ||
            (score == piv_score &&
             (j < piv_col || (j == piv_col && i < piv_row)))) {
          piv_row = i;
          piv_col = j;
          piv_score = score;
          piv_value = v;
        }
      }
    }
    if (piv_row < 0) {
      return false;  // no admissible pivot anywhere: numerically singular
    }

    row_at_[static_cast<std::size_t>(k)] = piv_row;
    col_at_[static_cast<std::size_t>(k)] = piv_col;
    pos_of_row[static_cast<std::size_t>(piv_row)] = k;
    pos_of_col[static_cast<std::size_t>(piv_col)] = k;
    row_done[static_cast<std::size_t>(piv_row)] = 1;
    col_done[static_cast<std::size_t>(piv_col)] = 1;
    u_diag_[static_cast<std::size_t>(k)] = piv_value;

    // L column k: the pivot column's remaining active entries, scaled.
    const std::size_t l_begin = l_index_.size();
    for (const auto& [i, v] : cols[static_cast<std::size_t>(piv_col)]) {
      if (!row_done[static_cast<std::size_t>(i)]) {
        l_index_.push_back(i);  // original row id; remapped below
        l_value_.push_back(v / piv_value);
      }
    }
    l_start_.push_back(static_cast<int>(l_index_.size()));

    // Eliminate the pivot row from every other active column, compacting
    // dead rows out of each touched column as we go.
    for (int j = 0; j < m; ++j) {
      if (col_done[static_cast<std::size_t>(j)]) {
        continue;
      }
      auto& cj = cols[static_cast<std::size_t>(j)];
      double u = 0.0;
      for (const auto& [i, v] : cj) {
        if (i == piv_row) {
          u = v;
          break;
        }
      }
      if (u == 0.0) {
        continue;
      }
      u_step.push_back(k);
      u_col.push_back(j);
      u_val.push_back(u);
      scratch.clear();
      for (const auto& [i, v] : cj) {
        if (row_done[static_cast<std::size_t>(i)]) {
          continue;
        }
        mark[static_cast<std::size_t>(i)] = static_cast<int>(scratch.size());
        scratch.emplace_back(i, v);
      }
      for (std::size_t t = l_begin; t < l_index_.size(); ++t) {
        const int i = l_index_[t];
        const double contrib = l_value_[t] * u;
        const int at = mark[static_cast<std::size_t>(i)];
        if (at >= 0) {
          scratch[static_cast<std::size_t>(at)].second -= contrib;
        } else {
          scratch.emplace_back(i, -contrib);  // fill-in
        }
      }
      for (const auto& [i, v] : scratch) {
        mark[static_cast<std::size_t>(i)] = -1;
        (void)v;
      }
      cj.swap(scratch);
    }
  }

  // Remap L's original row ids into pivot positions (all strictly below the
  // diagonal: a row active at step k is eliminated at a later step).
  for (int& i : l_index_) {
    i = pos_of_row[static_cast<std::size_t>(i)];
  }
  // Build column-compressed U from the (step, column, value) triples.  The
  // triples were generated in step order, so each U column's entries land
  // sorted by row position -- a fixed accumulation order for the solves.
  u_start_.assign(static_cast<std::size_t>(m) + 1, 0);
  for (const int j : u_col) {
    ++u_start_[static_cast<std::size_t>(
                   pos_of_col[static_cast<std::size_t>(j)]) +
               1];
  }
  for (int k = 0; k < m; ++k) {
    u_start_[static_cast<std::size_t>(k) + 1] +=
        u_start_[static_cast<std::size_t>(k)];
  }
  std::vector<int> fill_at(u_start_.begin(), u_start_.end() - 1);
  u_index_.resize(u_step.size());
  u_value_.resize(u_step.size());
  for (std::size_t t = 0; t < u_step.size(); ++t) {
    const int c = pos_of_col[static_cast<std::size_t>(u_col[t])];
    const int at = fill_at[static_cast<std::size_t>(c)]++;
    u_index_[static_cast<std::size_t>(at)] = u_step[t];
    u_value_[static_cast<std::size_t>(at)] = u_val[t];
  }

  valid_ = true;
  return true;
}

void SparseLu::ftran(std::span<const double> rhs, std::span<double> out,
                     std::span<double> work) const {
  HSLB_ASSERT(valid_, "ftran on an invalid factor");
  const int m = m_;
  for (int k = 0; k < m; ++k) {
    work[static_cast<std::size_t>(k)] =
        rhs[static_cast<std::size_t>(row_at_[static_cast<std::size_t>(k)])];
  }
  for (int k = 0; k < m; ++k) {  // L z = Pb, forward
    const double z = work[static_cast<std::size_t>(k)];
    if (z != 0.0) {
      for (int t = l_start_[static_cast<std::size_t>(k)];
           t < l_start_[static_cast<std::size_t>(k) + 1]; ++t) {
        work[static_cast<std::size_t>(l_index_[static_cast<std::size_t>(t)])] -=
            l_value_[static_cast<std::size_t>(t)] * z;
      }
    }
  }
  for (int k = m - 1; k >= 0; --k) {  // U x' = z, backward
    const double z =
        work[static_cast<std::size_t>(k)] / u_diag_[static_cast<std::size_t>(k)];
    work[static_cast<std::size_t>(k)] = z;
    if (z != 0.0) {
      for (int t = u_start_[static_cast<std::size_t>(k)];
           t < u_start_[static_cast<std::size_t>(k) + 1]; ++t) {
        work[static_cast<std::size_t>(u_index_[static_cast<std::size_t>(t)])] -=
            u_value_[static_cast<std::size_t>(t)] * z;
      }
    }
  }
  for (int k = 0; k < m; ++k) {
    out[static_cast<std::size_t>(col_at_[static_cast<std::size_t>(k)])] =
        work[static_cast<std::size_t>(k)];
  }
}

void SparseLu::btran(std::span<const double> rhs, std::span<double> out,
                     std::span<double> work) const {
  HSLB_ASSERT(valid_, "btran on an invalid factor");
  const int m = m_;
  for (int k = 0; k < m; ++k) {
    work[static_cast<std::size_t>(k)] =
        rhs[static_cast<std::size_t>(col_at_[static_cast<std::size_t>(k)])];
  }
  for (int k = 0; k < m; ++k) {  // U^T z = c', forward
    double s = work[static_cast<std::size_t>(k)];
    for (int t = u_start_[static_cast<std::size_t>(k)];
         t < u_start_[static_cast<std::size_t>(k) + 1]; ++t) {
      s -= u_value_[static_cast<std::size_t>(t)] *
           work[static_cast<std::size_t>(u_index_[static_cast<std::size_t>(t)])];
    }
    work[static_cast<std::size_t>(k)] =
        s / u_diag_[static_cast<std::size_t>(k)];
  }
  for (int k = m - 1; k >= 0; --k) {  // L^T w = z, backward
    double s = work[static_cast<std::size_t>(k)];
    for (int t = l_start_[static_cast<std::size_t>(k)];
         t < l_start_[static_cast<std::size_t>(k) + 1]; ++t) {
      s -= l_value_[static_cast<std::size_t>(t)] *
           work[static_cast<std::size_t>(l_index_[static_cast<std::size_t>(t)])];
    }
    work[static_cast<std::size_t>(k)] = s;
  }
  for (int k = 0; k < m; ++k) {
    out[static_cast<std::size_t>(row_at_[static_cast<std::size_t>(k)])] =
        work[static_cast<std::size_t>(k)];
  }
}

bool EtaFile::append(std::span<const double> w, int r, double stability_tol) {
  double winf = 0.0;
  for (const double v : w) {
    const double av = std::fabs(v);
    if (av > winf) {
      winf = av;
    }
  }
  const double wr = w[static_cast<std::size_t>(r)];
  if (std::fabs(wr) < stability_tol * std::max(1.0, winf)) {
    return false;
  }
  Rec rec;
  rec.start = static_cast<int>(index_.size());
  rec.r = r;
  rec.wr = wr;
  for (int i = 0; i < static_cast<int>(w.size()); ++i) {
    const double v = w[static_cast<std::size_t>(i)];
    if (i != r && v != 0.0) {
      index_.push_back(i);
      value_.push_back(v);
    }
  }
  rec.len = static_cast<int>(index_.size()) - rec.start;
  recs_.push_back(rec);
  return true;
}

void EtaFile::apply_ftran(std::span<double> x) const {
  for (const Rec& rec : recs_) {
    const double xr = x[static_cast<std::size_t>(rec.r)] / rec.wr;
    for (int t = rec.start; t < rec.start + rec.len; ++t) {
      x[static_cast<std::size_t>(index_[static_cast<std::size_t>(t)])] -=
          value_[static_cast<std::size_t>(t)] * xr;
    }
    x[static_cast<std::size_t>(rec.r)] = xr;
  }
}

void EtaFile::apply_btran(std::span<double> y) const {
  for (auto it = recs_.rbegin(); it != recs_.rend(); ++it) {
    const Rec& rec = *it;
    double s = y[static_cast<std::size_t>(rec.r)];
    for (int t = rec.start; t < rec.start + rec.len; ++t) {
      s -= value_[static_cast<std::size_t>(t)] *
           y[static_cast<std::size_t>(index_[static_cast<std::size_t>(t)])];
    }
    y[static_cast<std::size_t>(rec.r)] = s / rec.wr;
  }
}

}  // namespace hslb::linalg
