#include "hslb/linalg/factor.hpp"

#include <cmath>
#include <numeric>

#include "hslb/common/error.hpp"

namespace hslb::linalg {

std::optional<LuFactor> LuFactor::compute(const Matrix& a) {
  HSLB_REQUIRE(a.rows() == a.cols(), "LU needs a square matrix");
  const std::size_t n = a.rows();
  LuFactor f;
  f.lu_ = a;
  f.perm_.resize(n);
  std::iota(f.perm_.begin(), f.perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude entry in column k.
    std::size_t pivot = k;
    double best = std::fabs(f.lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::fabs(f.lu_(r, k));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-14) {
      return std::nullopt;  // numerically singular
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(f.lu_(k, c), f.lu_(pivot, c));
      }
      std::swap(f.perm_[k], f.perm_[pivot]);
      f.perm_sign_ = -f.perm_sign_;
    }
    const double inv_pivot = 1.0 / f.lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mult = f.lu_(r, k) * inv_pivot;
      f.lu_(r, k) = mult;
      if (mult == 0.0) {
        continue;
      }
      for (std::size_t c = k + 1; c < n; ++c) {
        f.lu_(r, c) -= mult * f.lu_(k, c);
      }
    }
  }
  return f;
}

Vector LuFactor::solve(std::span<const double> b) const {
  const std::size_t n = dim();
  HSLB_REQUIRE(b.size() == n, "LU solve rhs size mismatch");
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = b[perm_[i]];
  }
  // Forward substitution with unit-lower L.
  for (std::size_t i = 1; i < n; ++i) {
    double sum = x[i];
    for (std::size_t j = 0; j < i; ++j) {
      sum -= lu_(i, j) * x[j];
    }
    x[i] = sum;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) {
      sum -= lu_(ii, j) * x[j];
    }
    x[ii] = sum / lu_(ii, ii);
  }
  return x;
}

Vector LuFactor::solve_transposed(std::span<const double> b) const {
  const std::size_t n = dim();
  HSLB_REQUIRE(b.size() == n, "LU solve rhs size mismatch");
  // P A = L U, so A^T y = b becomes U^T L^T (P y) = b.
  Vector z(n);
  // Forward substitution with U^T (lower triangular, diagonal from U).
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t j = 0; j < i; ++j) {
      sum -= lu_(j, i) * z[j];
    }
    z[i] = sum / lu_(i, i);
  }
  // Back substitution with L^T (unit upper triangular), in place.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = z[ii];
    for (std::size_t j = ii + 1; j < n; ++j) {
      sum -= lu_(j, ii) * z[j];
    }
    z[ii] = sum;
  }
  // Undo the row permutation: y = P^T z.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[perm_[i]] = z[i];
  }
  return y;
}

double LuFactor::determinant() const {
  double det = perm_sign_;
  for (std::size_t i = 0; i < dim(); ++i) {
    det *= lu_(i, i);
  }
  return det;
}

std::optional<CholeskyFactor> CholeskyFactor::compute(const Matrix& a,
                                                      double initial_shift,
                                                      double max_shift) {
  HSLB_REQUIRE(a.rows() == a.cols(), "Cholesky needs a square matrix");
  const std::size_t n = a.rows();

  double shift = initial_shift;
  for (;;) {
    CholeskyFactor f;
    f.l_ = Matrix(n, n);
    f.shift_ = shift;
    bool ok = true;
    for (std::size_t j = 0; j < n && ok; ++j) {
      double diag = a(j, j) + shift;
      for (std::size_t k = 0; k < j; ++k) {
        diag -= f.l_(j, k) * f.l_(j, k);
      }
      if (diag <= 1e-14) {
        ok = false;
        break;
      }
      f.l_(j, j) = std::sqrt(diag);
      for (std::size_t i = j + 1; i < n; ++i) {
        double sum = a(i, j);
        for (std::size_t k = 0; k < j; ++k) {
          sum -= f.l_(i, k) * f.l_(j, k);
        }
        f.l_(i, j) = sum / f.l_(j, j);
      }
    }
    if (ok) {
      return f;
    }
    // Escalate the regularization geometrically from a floor scaled to A.
    const double floor = 1e-10 * std::max(1.0, a.frobenius_norm());
    shift = shift == 0.0 ? floor : shift * 10.0;
    if (shift > max_shift) {
      return std::nullopt;
    }
  }
}

Vector CholeskyFactor::solve(std::span<const double> b) const {
  const std::size_t n = dim();
  HSLB_REQUIRE(b.size() == n, "Cholesky solve rhs size mismatch");
  Vector x(b.begin(), b.end());
  // L y = b
  for (std::size_t i = 0; i < n; ++i) {
    double sum = x[i];
    for (std::size_t j = 0; j < i; ++j) {
      sum -= l_(i, j) * x[j];
    }
    x[i] = sum / l_(i, i);
  }
  // L^T x = y
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) {
      sum -= l_(j, ii) * x[j];
    }
    x[ii] = sum / l_(ii, ii);
  }
  return x;
}

}  // namespace hslb::linalg
